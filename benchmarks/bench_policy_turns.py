"""E2 — Data-aware vs static vs random slot selection (Section 4 eval).

Paper claim: "The speedup (in terms of interaction turns) compared to a
random strategy can be up to 80 % for large tables with many dimensions
to join.  When large amounts of data similar to the production entries
are already available at training time, the static strategy can reach a
similar performance as our data-aware policy."

This bench sweeps table size x number of joinable dimension tables and
reports mean identification turns per policy plus the data-aware
speedup over random.  Expected shape: data-aware <= static << random,
with the speedup growing with scale.
"""

from __future__ import annotations

import sys

from repro.datasets import MovieConfig, build_movie_database
from repro.eval import ResultTable

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from helpers import run_policy_comparison  # noqa: E402

SWEEP = [
    # (label, n_screenings, n_movies, extra_dimensions)
    ("small/0dims", 100, 25, 0),
    ("small/4dims", 100, 25, 4),
    ("large/0dims", 800, 120, 0),
    ("large/4dims", 800, 120, 4),
    ("large/8dims", 800, 120, 8),
]

EPISODES = 25


def test_policy_turns_sweep(benchmark):
    table = ResultTable(
        "E2: mean identification turns (screening entity), 25 episodes/cell",
        ["config", "data_aware", "static", "random", "speedup_vs_random"],
    )
    rows = {}
    for label, n_screenings, n_movies, dims in SWEEP:
        config = MovieConfig(
            seed=3,
            n_customers=100,
            n_movies=n_movies,
            n_screenings=n_screenings,
            n_reservations=50,
            n_actors=80,
            extra_dimensions=dims,
            n_days=30,
        )
        database, annotations = build_movie_database(config)
        summaries = run_policy_comparison(
            database, annotations, n_episodes=EPISODES
        )
        speedup = summaries["data_aware"].speedup_vs(summaries["random"])
        table.add_row(
            label,
            summaries["data_aware"].mean_turns,
            summaries["static"].mean_turns,
            summaries["random"].mean_turns,
            f"{speedup:.0%}",
        )
        rows[label] = {
            "data_aware": summaries["data_aware"].mean_turns,
            "static": summaries["static"].mean_turns,
            "random": summaries["random"].mean_turns,
            "speedup": speedup,
        }
    table.show()

    # Shape assertions mirroring the paper's claims.
    for label, cell in rows.items():
        assert cell["data_aware"] <= cell["random"], label
    largest = rows["large/8dims"]
    assert largest["speedup"] >= 0.4, (
        f"expected a large speedup vs random at scale, got "
        f"{largest['speedup']:.0%}"
    )

    # Timed portion: one full comparison on the small config.
    small, annotations = build_movie_database(
        MovieConfig(n_screenings=100, n_movies=25, extra_dimensions=2)
    )
    result = benchmark(
        run_policy_comparison, small, annotations, 10
    )
    benchmark.extra_info["sweep"] = rows
