"""Shared helpers for the experiment benchmarks.

Every bench prints a paper-style result table (run pytest with ``-s`` to
see it live) and stores the headline numbers in ``benchmark.extra_info``
so they survive in the pytest-benchmark JSON output.
"""

from __future__ import annotations

from repro.annotation import EntityLookup, SchemaAnnotations, TaskExtractor
from repro.dataaware import (
    DataAwarePolicy,
    RandomPolicy,
    StaticPolicy,
    UserAwarenessModel,
)
from repro.db import Catalog, Database, StatisticsCatalog
from repro.eval import PolicyExperiment


def screening_lookup(database: Database, annotations: SchemaAnnotations):
    """The ticket_reservation screening lookup plus its catalog."""
    catalog = Catalog(database)
    extractor = TaskExtractor(catalog, annotations)
    task = extractor.extract(database.procedures.get("ticket_reservation"))
    return catalog, task.lookup_for("screening_id")


def make_policies(
    database: Database,
    catalog: Catalog,
    annotations: SchemaAnnotations,
    lookup: EntityLookup,
    seed: int = 11,
):
    """The three policies of the Section 4 comparison."""
    awareness = UserAwarenessModel(annotations)
    return {
        "data_aware": DataAwarePolicy(
            lookup, awareness, StatisticsCatalog(database)
        ),
        "static": StaticPolicy.train(lookup, database, catalog, annotations),
        "random": RandomPolicy(lookup, seed=seed),
    }


def run_policy_comparison(
    database: Database,
    annotations: SchemaAnnotations,
    n_episodes: int = 25,
    seed: int = 17,
):
    """Mean turns for the three policies on screening identification."""
    catalog, lookup = screening_lookup(database, annotations)
    experiment = PolicyExperiment(
        database, catalog, annotations, lookup, seed=seed
    )
    policies = make_policies(database, catalog, annotations, lookup)
    summaries = {}
    for name, policy in policies.items():
        summary, __ = experiment.run(policy, n_episodes=n_episodes)
        summaries[name] = summary
    return summaries
