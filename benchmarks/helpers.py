"""Shared helpers for the experiment benchmarks.

Every bench prints a paper-style result table (run pytest with ``-s`` to
see it live) and stores the headline numbers in ``benchmark.extra_info``
so they survive in the pytest-benchmark JSON output.
"""

from __future__ import annotations

import math
import statistics

from repro.annotation import EntityLookup, SchemaAnnotations, TaskExtractor
from repro.dataaware import (
    DataAwarePolicy,
    RandomPolicy,
    StaticPolicy,
    UserAwarenessModel,
)
from repro.db import Catalog, Database, StatisticsCatalog
from repro.eval import PolicyExperiment


def percentile(samples: list[float], q: float) -> float | None:
    """The ``q``-th percentile (0..100) by nearest rank.

    Degenerate samples degrade instead of raising: an empty sample has
    no percentile (``None``), a singleton *is* its every percentile.
    """
    if not samples:
        return None
    ordered = sorted(samples)
    rank = math.ceil(q / 100.0 * len(ordered)) - 1
    return ordered[max(0, min(len(ordered) - 1, rank))]


def latency_summary(samples: list[float]) -> dict[str, float | None]:
    """p50/p95/p99/mean of per-turn latencies, seconds in, ms out.

    Tolerates empty samples (a bench arm that recorded nothing): every
    figure comes back ``None`` rather than raising mid-report.
    """

    def _ms(seconds: float | None) -> float | None:
        return None if seconds is None else round(seconds * 1000.0, 3)

    return {
        "p50_ms": _ms(percentile(samples, 50)),
        "p95_ms": _ms(percentile(samples, 95)),
        "p99_ms": _ms(percentile(samples, 99)),
        "mean_ms": _ms(statistics.fmean(samples) if samples else None),
    }


def screening_lookup(database: Database, annotations: SchemaAnnotations):
    """The ticket_reservation screening lookup plus its catalog."""
    catalog = Catalog(database)
    extractor = TaskExtractor(catalog, annotations)
    task = extractor.extract(database.procedures.get("ticket_reservation"))
    return catalog, task.lookup_for("screening_id")


def make_policies(
    database: Database,
    catalog: Catalog,
    annotations: SchemaAnnotations,
    lookup: EntityLookup,
    seed: int = 11,
):
    """The three policies of the Section 4 comparison."""
    awareness = UserAwarenessModel(annotations)
    return {
        "data_aware": DataAwarePolicy(
            lookup, awareness, StatisticsCatalog(database)
        ),
        "static": StaticPolicy.train(lookup, database, catalog, annotations),
        "random": RandomPolicy(lookup, seed=seed),
    }


def run_policy_comparison(
    database: Database,
    annotations: SchemaAnnotations,
    n_episodes: int = 25,
    seed: int = 17,
):
    """Mean turns for the three policies on screening identification."""
    catalog, lookup = screening_lookup(database, annotations)
    experiment = PolicyExperiment(
        database, catalog, annotations, lookup, seed=seed
    )
    policies = make_policies(database, catalog, annotations, lookup)
    summaries = {}
    for name, policy in policies.items():
        summary, __ = experiment.run(policy, n_episodes=n_episodes)
        summaries[name] = summary
    return summaries
