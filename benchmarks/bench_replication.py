"""HTAP replication benchmark: analytic reads off the OLTP path.

Three sections, mirroring the replication tier's contract:

* **Writer interference** (gated): a sustained booking-commit writer
  (ticket_reservation / cancel_reservation through the stored-procedure
  registry) runs against the primary while an analytic battery (grouped
  sums and counts over the reservation fact table, whole-table counts)
  is timed twice — once directly on the contended primary, once routed
  through ``ReplicaManager.read()`` to a log-shipped replica that
  applies commits in batches and compacts immediately.  The gate is on
  analytic p95: the replica arm must beat the primary arm by the floor
  (``--require-interference X``), because the primary pays per-commit
  statistics invalidation and delta growth that the batched, sealed
  replica never sees.
* **Staleness-bound correctness** (always enforced): after a commit
  burst, ``wait_for(lsn)`` then every battery query must come back
  byte-identical (canonical JSON) from the replica and the primary.
* **Kill / re-attach** (always enforced): killing a replica mid-stream
  must not fail a single primary commit; re-attach catches up from the
  ring, and a deliberately tiny ring forces the snapshot-resync path.

Run standalone (CI runs the smoke profile and archives the JSON):

    PYTHONPATH=src python benchmarks/bench_replication.py --smoke \
        --output BENCH_replication.json
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import threading
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from helpers import latency_summary, percentile  # noqa: E402

from repro.datasets import MovieConfig, build_movie_database  # noqa: E402
from repro.db import api  # noqa: E402
from repro.db.aggregation import count, sum_  # noqa: E402
from repro.errors import ProcedureError  # noqa: E402
from repro.replication import ReplicaManager  # noqa: E402

#: p95 interference floor CI applies in the smoke profile; the full
#: profile records ≥2x (see BENCH_replication.json).
DEFAULT_FLOOR = 1.5


def _make_config(smoke: bool) -> MovieConfig:
    return MovieConfig(
        n_screenings=600 if smoke else 2000,
        n_movies=80 if smoke else 200,
        n_customers=300 if smoke else 800,
        n_reservations=4000 if smoke else 16000,
        extra_dimensions=4,
        n_days=30 if smoke else 60,
    )


def _battery() -> list[tuple[str, api.SelectStatement]]:
    """The analytic statements both arms (and the differential) run.

    All are replica-classified shapes: grouped/ungrouped aggregates
    over the reservation fact table and a whole-table count.
    """
    return [
        (
            "booked_by_screening",
            api.aggregate(
                "reservation", booked=sum_("no_tickets"), n=count()
            ).group_by("screening_id"),
        ),
        (
            "tickets_by_customer",
            api.aggregate(
                "reservation", tickets=sum_("no_tickets")
            ).group_by("customer_id"),
        ),
        (
            "total_tickets",
            api.aggregate("reservation", total=sum_("no_tickets")),
        ),
        ("reservation_count", api.select("reservation").count()),
    ]


class BookingWriter(threading.Thread):
    """Sustained booking commits against the primary.

    Books random screenings through ``ticket_reservation`` and, when a
    screening is full, cancels an earlier booking — a steady stream of
    committed OLTP transactions for as long as the arm runs.  Any
    exception that is not a capacity rejection counts as a *failure*;
    the kill/re-attach section requires that counter to stay at zero.
    """

    def __init__(self, database, seed: int) -> None:
        super().__init__(name="bench-booking-writer", daemon=True)
        self._database = database
        self._rng = random.Random(seed)
        self._halt = threading.Event()
        self._screenings = [
            row["screening_id"] for row in database.rows("screening")
        ]
        self._booked: list[int] = []
        self.commits = 0
        self.rejections = 0
        self.failures = 0

    def run(self) -> None:
        connection = self._database.default_connection
        while not self._halt.is_set():
            try:
                if self._booked and self._rng.random() < 0.3:
                    reservation_id = self._booked.pop(
                        self._rng.randrange(len(self._booked))
                    )
                    connection.call(
                        "cancel_reservation", reservation_id=reservation_id
                    )
                else:
                    outcome = connection.call(
                        "ticket_reservation",
                        customer_id=self._rng.randint(1, 50),
                        screening_id=self._rng.choice(self._screenings),
                        ticket_amount=self._rng.randint(1, 3),
                    ).value
                    self._booked.append(outcome["reservation_id"])
                self.commits += 1
            except ProcedureError:
                self.rejections += 1
            except BaseException:  # noqa: BLE001 - the gate counts these
                self.failures += 1

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=10.0)


def _time_battery(connection_for, seconds: float) -> list[float]:
    """Per-query latencies of the battery, round-robin, for ``seconds``.

    ``connection_for`` maps a statement to the connection it should run
    on — the contended primary in one arm, ``manager.read()`` in the
    other.
    """
    battery = _battery()
    samples: list[float] = []
    deadline = time.monotonic() + seconds
    index = 0
    while time.monotonic() < deadline:
        __, statement = battery[index % len(battery)]
        index += 1
        connection = connection_for(statement)
        started = time.perf_counter()
        # reading() pins a consistent snapshot for the scope — the
        # contract concurrent reads run under (a bare read racing a
        # compaction may observe banks mid-swap).
        with connection.reading():
            connection.prepare(statement).execute().all()
        samples.append(time.perf_counter() - started)
    return samples


def measure_interference(smoke: bool) -> dict:
    config = _make_config(smoke)
    seconds = 1.5 if smoke else 5.0
    arms: dict[str, dict] = {}

    # Contended-primary arm: analytic battery on the same banks the
    # writer commits into.
    database, __ = build_movie_database(config)
    database.compact()
    writer = BookingWriter(database, seed=23)
    writer.start()
    try:
        primary_conn = database.default_connection
        samples = _time_battery(lambda s: primary_conn, seconds)
    finally:
        writer.stop()
    arms["primary"] = {
        "latency": latency_summary(samples),
        "queries": len(samples),
        "writer_commits": writer.commits,
        "writer_failures": writer.failures,
    }
    primary_p95 = percentile(samples, 95)

    # Replica arm: identical writer stream, battery routed through the
    # manager at the default staleness bound.
    database, __ = build_movie_database(config)
    database.compact()
    # Half-second apply cadence: far inside the 5 s staleness bound,
    # and only ~0.2% of timed queries land on a freshly bumped replica
    # generation (cold memos) instead of the sealed steady state.
    manager = ReplicaManager(
        database, replicas=1, batch_size=256, apply_interval_s=0.5
    )
    writer = BookingWriter(database, seed=23)
    writer.start()
    try:
        samples = _time_battery(lambda s: manager.read(), seconds)
    finally:
        writer.stop()
    status = manager.status()
    manager.stop()
    arms["replica"] = {
        "latency": latency_summary(samples),
        "queries": len(samples),
        "writer_commits": writer.commits,
        "writer_failures": writer.failures,
        "replica_routes": status["replica_routes"],
        "primary_fallbacks": status["primary_fallbacks"],
        "records_applied": status["replicas"][0]["records_applied"],
        "batches_applied": status["replicas"][0]["batches_applied"],
    }
    replica_p95 = percentile(samples, 95)

    speedup = None
    if primary_p95 and replica_p95:
        speedup = round(primary_p95 / replica_p95, 2)
    return {
        "seconds_per_arm": seconds,
        "arms": arms,
        "primary_p95_ms": (
            None if primary_p95 is None else round(primary_p95 * 1000, 4)
        ),
        "replica_p95_ms": (
            None if replica_p95 is None else round(replica_p95 * 1000, 4)
        ),
        "p95_speedup": speedup,
    }


def _canonical(connection, statement) -> str:
    with connection.reading():
        rows = connection.prepare(statement).execute().all()
    return json.dumps(rows, default=str, sort_keys=True)


def measure_differential(smoke: bool) -> dict:
    """Replica reads at ``wait_for(lsn)`` vs primary reads at that LSN."""
    config = _make_config(smoke)
    database, __ = build_movie_database(config)
    database.compact()
    manager = ReplicaManager(database, replicas=1, batch_size=32)
    writer = BookingWriter(database, seed=41)
    writer.start()
    time.sleep(0.4 if smoke else 1.0)
    writer.stop()
    lsn = database.data_version
    caught_up = manager.wait_for(lsn, timeout=30.0)

    battery = _battery() + [
        (
            "reservations_ordered",
            api.select("reservation").order_by("reservation_id"),
        ),
        (
            "screening_rows",
            api.select("screening").order_by("screening_id"),
        ),
    ]
    replica_conn = manager.read(max_staleness=0.0)
    primary_conn = database.default_connection
    mismatches = []
    for name, statement in battery:
        if _canonical(replica_conn, statement) != _canonical(
            primary_conn, statement
        ):
            mismatches.append(name)
    routed_to_replica = replica_conn.database is not database
    manager.stop()
    return {
        "lsn": lsn,
        "caught_up": caught_up,
        "writer_commits": writer.commits,
        "queries": len(battery),
        "routed_to_replica": routed_to_replica,
        "identical": caught_up and routed_to_replica and not mismatches,
        "mismatches": mismatches,
    }


def measure_recovery(smoke: bool) -> dict:
    """Kill / re-attach under write load, plus the forced-resync path."""
    config = _make_config(smoke)
    database, __ = build_movie_database(config)
    database.compact()
    # A ring this small guarantees the second kill overruns it, forcing
    # re-attach through the snapshot-resync path rather than catch-up.
    manager = ReplicaManager(
        database, replicas=1, batch_size=16, ring_capacity=8
    )
    writer = BookingWriter(database, seed=59)
    writer.start()
    time.sleep(0.2)

    # Kill mid-stream; the writer must not notice.
    before_kill = writer.commits
    manager.kill_replica(0)
    time.sleep(0.4 if smoke else 1.0)
    commits_while_dead = writer.commits - before_kill
    writer.stop()

    replica = manager.reattach_replica(0)
    lsn = database.data_version
    caught_up = manager.wait_for(lsn, timeout=30.0)
    primary_count = database.count("reservation")
    replica_count = manager.replica_database(0).count("reservation")
    status = manager.status()
    manager.stop()
    return {
        "commits_while_dead": commits_while_dead,
        "writer_failures": writer.failures,
        "resyncs": status["replicas"][0]["resyncs"],
        "caught_up": caught_up,
        "primary_reservations": primary_count,
        "replica_reservations": replica_count,
        "recovered": (
            writer.failures == 0
            and commits_while_dead > 0
            and caught_up
            and primary_count == replica_count
        ),
    }


def run_benchmark(smoke: bool) -> dict:
    config = _make_config(smoke)
    return {
        "benchmark": "replication",
        "profile": "smoke" if smoke else "full",
        "config": {
            "n_screenings": config.n_screenings,
            "n_customers": config.n_customers,
            "n_reservations": config.n_reservations,
        },
        "interference": measure_interference(smoke),
        "differential": measure_differential(smoke),
        "recovery": measure_recovery(smoke),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small, CI-sized database and time budget")
    parser.add_argument("--output", default="BENCH_replication.json",
                        metavar="PATH", help="where to write the JSON record")
    parser.add_argument(
        "--require-interference", type=float, nargs="?",
        const=DEFAULT_FLOOR, default=None, metavar="X",
        help="fail unless analytic p95 under concurrent booking commits "
        f"is at least X times better on the replica (default {DEFAULT_FLOOR})",
    )
    args = parser.parse_args(argv)

    results = run_benchmark(smoke=args.smoke)
    interference = results["interference"]
    differential = results["differential"]
    recovery = results["recovery"]
    print(f"replication benchmark ({results['profile']}):")
    for arm in ("primary", "replica"):
        row = interference["arms"][arm]
        latency = row["latency"]
        print(
            f"   {arm:8s} p50 {latency['p50_ms']:9.3f} ms   "
            f"p95 {latency['p95_ms']:9.3f} ms   "
            f"({row['queries']} analytic queries vs "
            f"{row['writer_commits']} commits)"
        )
    print(
        f"   p95 interference speedup: {interference['p95_speedup']}x  "
        f"(routes {interference['arms']['replica']['replica_routes']} "
        f"replica / "
        f"{interference['arms']['replica']['primary_fallbacks']} primary)"
    )
    print(
        f"   differential @ lsn {differential['lsn']}: "
        f"{'identical' if differential['identical'] else 'MISMATCH'} "
        f"({differential['queries']} queries after "
        f"{differential['writer_commits']} commits)"
    )
    print(
        f"   kill/re-attach: "
        f"{'recovered' if recovery['recovered'] else 'FAILED'} "
        f"({recovery['commits_while_dead']} commits while dead, "
        f"{recovery['writer_failures']} failures, "
        f"{recovery['resyncs']} snapshot resync)"
    )
    with open(args.output, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")

    failed = []
    if not differential["identical"]:
        failed.append(
            f"differential mismatch: {differential['mismatches'] or 'stale'}"
        )
    if not recovery["recovered"]:
        failed.append("kill/re-attach did not recover cleanly")
    if args.require_interference is not None:
        speedup = interference["p95_speedup"]
        if speedup is None or speedup < args.require_interference:
            failed.append(
                f"p95 interference speedup {speedup}x < "
                f"{args.require_interference}x"
            )
    if failed:
        print(f"FAIL: {failed}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
