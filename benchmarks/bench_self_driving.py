"""Self-driving loop benchmark: auto-indexing, retirement, respecialisation.

The self-driving policy's claim is that an operator-free deployment
converges to the physical design a DBA would have picked — and keeps
converging when the workload shifts.  This benchmark starts from a
database with NO secondary indexes and replays two workload phases
against an autotuned arm and a frozen (``autotune`` disabled) baseline:

* **Phase A** is range-heavy (date/price windows over ``screening``).
  The policy must create the ordered indexes on its own, off the index
  advisor's miss stream, with no operator input.
* **Phase B** shifts to join-heavy turns (movie probe joined to its
  reservations) with a steady screening insert trickle.  The policy
  must create the join-side hash indexes AND retire the now-idle
  phase-A ordered indexes, whose decayed hit mass no longer pays for
  the per-insert maintenance they charge.

The CI gate applies to the phase-B steady state (auto vs baseline) and
to convergence itself: no phase-A creation, no phase-B creation or no
retirement fails the run when a gate is requested.

A third section exercises MCV-aware plan re-specialisation: a prepared
statement planned under a heavily-skewed hot constant is re-bound with
rare constants.  With respecialisation on, the plan cache detects the
per-bucket selectivity divergence, replans, and forks a
bucket-specialised template; the gate requires the rare-binding
latency to beat the frozen-template arm.  Before timing, the two arms
are differential-checked on randomised bindings (byte-identical rows).

Run standalone (CI runs the smoke profile and archives the JSON):

    PYTHONPATH=src python benchmarks/bench_self_driving.py --smoke \
        --output BENCH_self_driving.json
"""

from __future__ import annotations

import argparse
import datetime as dt
import json
import random
import statistics as stats
import sys
import time

from repro.datasets import MovieConfig, build_movie_database
from repro.db import (
    Column,
    Database,
    DatabaseSchema,
    DataType,
    Param,
    TableSchema,
    select,
)
from repro.db.query import and_, eq, ge, le


# ---------------------------------------------------------------------------
# Workload arms
# ---------------------------------------------------------------------------

def build_arms(config: MovieConfig):
    """(auto, baseline) databases: identical data, no secondary indexes.

    The baseline arm freezes its policy (``autotuner.enabled = False``)
    — it is the "nobody ever ran CREATE INDEX" deployment the
    self-driving loop exists to replace.
    """
    auto, __ = build_movie_database(config)
    base, __ = build_movie_database(config)
    base.autotuner.enabled = False
    return auto, base


def tune_for_bench(database: Database, half_life: float) -> None:
    """Compress the policy's timescales to benchmark wall-clock.

    Production defaults react over minutes; the bench replays a day's
    workload shift in seconds, so the miss floors, decay half-life and
    tick ages shrink proportionally.  Nothing else is touched — the
    decision rules themselves run stock.
    """
    database.autotuner.configure(
        min_misses=6.0,
        min_rows_scanned=4096.0,
        min_table_rows=256,
        decay_half_life=half_life,
        retire_after_ticks=4,
        cooldown_ticks=4,
    )


def make_phase_a(connection, config: MovieConfig):
    """Range-heavy turns: a day's screenings and a top-price band.

    Prepared once, bound per turn — the serving tier's statement shape.
    """
    day0 = config.start_date
    day_window = connection.prepare(
        select("screening").where(
            and_(ge("date", Param("lo")), le("date", Param("hi")))
        )
    )
    price_band = connection.prepare(
        select("screening").where(ge("price", Param("floor")))
    )

    def run(turn: int):
        lo = day0 + dt.timedelta(days=turn % config.n_days)
        day_window.execute(lo=lo, hi=lo).all()
        price_band.execute(floor=15.0 + (turn % 3) * 0.5).all()

    return run


def make_phase_b(connection, config: MovieConfig):
    """Join-heavy turns: one movie's screenings joined to reservations."""
    probe = connection.prepare(
        select("screening")
        .where(eq("movie_id", Param("m")))
        .join("screening_id", "reservation", "screening_id")
    )

    def run(turn: int):
        probe.execute(m=1 + turn % config.n_movies).all()

    return run


def pinned(connection, fn):
    """Wrap each turn in a pinned snapshot scope, the way a serving
    turn runs — the pin drain at scope exit is exactly the idle signal
    the policy ticks off.  Convergence loops drive this shape; the
    steady-state timing measures the bare statements."""

    def run(turn: int):
        with connection.reading():
            fn(turn)

    return run


def make_insert_trickle(databases, config: MovieConfig):
    """Screening inserts applied to EVERY arm (equal row counts keep
    the steady-state comparison honest); on the auto arm each insert
    charges maintenance to the phase-A ordered indexes."""
    rng = random.Random(929)
    next_id = [config.n_screenings + 1]
    rooms = [f"room {chr(ord('A') + i)}" for i in range(config.n_rooms)]

    def run():
        row = {
            "screening_id": next_id[0],
            "movie_id": rng.randint(1, config.n_movies),
            "date": config.start_date
            + dt.timedelta(days=rng.randrange(config.n_days)),
            "start_time": dt.time(20, 0),
            "room": rng.choice(rooms),
            "price": round(rng.uniform(7.0, 16.0) * 2) / 2,
            "capacity": 80,
        }
        next_id[0] += 1
        for database in databases:
            database.insert("screening", dict(row))

    return run


# ---------------------------------------------------------------------------
# Convergence + timing
# ---------------------------------------------------------------------------

def _actions(database: Database, action: str) -> list[tuple[str, str, str]]:
    return [
        (entry["table"], entry["column"], entry["kind"])
        for entry in database.autotuner.status()["actions"]
        if entry["action"] == action
    ]


def run_until(workload, predicate, max_seconds: float, step=None):
    """Drive ``workload(turn)`` until ``predicate()`` or the deadline;
    returns (converged, turns, seconds)."""
    started = time.monotonic()
    deadline = started + max_seconds
    turn = 0
    while time.monotonic() < deadline:
        workload(turn)
        if step is not None:
            step()
        turn += 1
        if turn % 8 == 0 and predicate():
            return True, turn, time.monotonic() - started
    return predicate(), turn, time.monotonic() - started


def time_turns(fn, min_samples: int = 60, budget_s: float = 2.0) -> float:
    """Median wall-clock seconds per turn."""
    for turn in range(20):
        fn(turn)
    samples: list[float] = []
    started = time.perf_counter()
    turn = 0
    while len(samples) < min_samples or (
        time.perf_counter() - started < budget_s and len(samples) < 5000
    ):
        t0 = time.perf_counter()
        fn(turn)
        samples.append(time.perf_counter() - t0)
        turn += 1
    return stats.median(samples)


# ---------------------------------------------------------------------------
# Re-specialisation section
# ---------------------------------------------------------------------------

HOT_HUB = "HUB"


def build_respec_database(n_rows: int, respec_enabled: bool) -> Database:
    """One skewed fact table: 90% of rows share ``hub == 'HUB'``.

    The hash index on ``hub`` and the ordered index on ``price`` give
    the planner a genuine choice: under the hot hub the eq probe is
    near-worthless (90% selectivity) and the price range wins; under a
    rare hub the eq probe returns a handful of rows and wins by orders
    of magnitude.  One frozen template cannot serve both.
    """
    schema = DatabaseSchema([
        TableSchema(
            "item",
            [
                Column("item_id", DataType.INTEGER),
                Column("hub", DataType.TEXT, nullable=False),
                Column("price", DataType.FLOAT, nullable=False),
            ],
            primary_key="item_id",
        )
    ])
    database = Database(schema)
    database.autotuner.enabled = False  # isolate respecialisation
    rng = random.Random(11)
    rare = [f"hub{i:02d}" for i in range(40)]
    for item_id in range(1, n_rows + 1):
        database.insert("item", {
            "item_id": item_id,
            "hub": HOT_HUB if rng.random() < 0.9 else rng.choice(rare),
            "price": round(rng.uniform(0.0, 100.0), 2),
        })
    database.create_index("item", "hub")
    database.create_ordered_index("item", "price")
    database.plan_cache.respec_enabled = respec_enabled
    return database


def run_respec(smoke: bool) -> dict:
    n_rows = 4000 if smoke else 16000
    n_diff = 200 if smoke else 400
    on = build_respec_database(n_rows, respec_enabled=True)
    off = build_respec_database(n_rows, respec_enabled=False)
    statement = (
        select("item")
        .where(and_(eq("hub", Param("h")), ge("price", Param("p"))))
        .order_by("item_id")
    )
    prepared_on = on.connect(name="respec-on").prepare(statement)
    prepared_off = off.connect(name="respec-off").prepare(statement)

    # Template planned under the hot constant on both arms: the price
    # range wins there, and that is the plan the frozen arm is stuck
    # with for every later binding.
    for __ in range(4):
        prepared_on.execute(h=HOT_HUB, p=50.0).all()
        prepared_off.execute(h=HOT_HUB, p=50.0).all()

    # Differential: randomised bindings, byte-identical rows.  The
    # deterministic order_by makes "identical" meaningful across
    # different access paths (eq probe vs range scan).
    rng = random.Random(37)
    rare = [f"hub{i:02d}" for i in range(40)]
    for case in range(n_diff):
        h = HOT_HUB if rng.random() < 0.4 else rng.choice(rare)
        p = round(rng.uniform(0.0, 100.0), 2)
        got = prepared_on.execute(h=h, p=p).all()
        want = prepared_off.execute(h=h, p=p).all()
        if got != want:
            raise AssertionError(
                f"respec differential case {case}: results differ "
                f"(h={h!r}, p={p})"
            )

    def rare_on(turn: int):
        prepared_on.execute(h=rare[turn % len(rare)], p=50.0).all()

    def rare_off(turn: int):
        prepared_off.execute(h=rare[turn % len(rare)], p=50.0).all()

    on_s = time_turns(rare_on, budget_s=1.0)
    off_s = time_turns(rare_off, budget_s=1.0)
    counters = on.plan_cache.respec_counters()
    return {
        "n_rows": n_rows,
        "differential_queries": n_diff,
        "counters": counters,
        "rare_respec_on_us": round(on_s * 1e6, 3),
        "rare_respec_off_us": round(off_s * 1e6, 3),
        "speedup": round(off_s / on_s, 3) if on_s > 0 else None,
    }


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------

def run_benchmark(smoke: bool) -> dict:
    config = MovieConfig(
        n_screenings=6000 if smoke else 18000,
        n_movies=300 if smoke else 600,
        n_customers=400 if smoke else 800,
        n_reservations=8000 if smoke else 24000,
        n_days=30,
        secondary_indexes=False,
    )
    auto, base = build_arms(config)
    tune_for_bench(auto, half_life=2.0)
    conn_auto = auto.connect(name="bench-auto")
    conn_base = base.connect(name="bench-base")
    max_wait = 20.0 if smoke else 60.0

    results: dict = {
        "benchmark": "self_driving",
        "profile": "smoke" if smoke else "full",
        "config": {
            "n_screenings": config.n_screenings,
            "n_movies": config.n_movies,
            "n_reservations": config.n_reservations,
            "secondary_indexes": False,
        },
    }

    # ----- Phase A: range-heavy, policy must create ordered indexes.
    phase_a_auto = make_phase_a(conn_auto, config)
    phase_a_base = make_phase_a(conn_base, config)
    converged_a, turns_a, seconds_a = run_until(
        pinned(conn_auto, phase_a_auto),
        lambda: ("screening", "date", "ordered") in _actions(auto, "create"),
        max_wait,
    )
    auto_a = time_turns(phase_a_auto)
    base_a = time_turns(phase_a_base)
    results["phase_a"] = {
        "converged": converged_a,
        "turns_to_converge": turns_a,
        "seconds_to_converge": round(seconds_a, 3),
        "created": sorted(set(_actions(auto, "create"))),
        "auto_us": round(auto_a * 1e6, 3),
        "baseline_us": round(base_a * 1e6, 3),
        "speedup": round(base_a / auto_a, 3) if auto_a > 0 else None,
    }

    # ----- Phase B: join-heavy shift with an insert trickle.  The
    # shorter half-life drains the phase-A hit mass at bench timescale
    # (production would take the stock minutes to reach the same
    # verdict); the decision rule itself is unchanged.
    auto.autotuner.configure(decay_half_life=0.25)
    phase_b_auto = make_phase_b(conn_auto, config)
    phase_b_base = make_phase_b(conn_base, config)
    trickle = make_insert_trickle((auto, base), config)

    def phase_b_done() -> bool:
        created = _actions(auto, "create")
        retired = _actions(auto, "retire")
        return (
            ("reservation", "screening_id", "hash") in created
            and ("screening", "date", "ordered") in retired
        )

    converged_b, turns_b, seconds_b = run_until(
        pinned(conn_auto, phase_b_auto), phase_b_done, max_wait, step=trickle
    )
    auto_b = time_turns(phase_b_auto)
    base_b = time_turns(phase_b_base)
    retired = sorted(set(_actions(auto, "retire")))
    results["phase_b"] = {
        "converged": converged_b,
        "turns_to_converge": turns_b,
        "seconds_to_converge": round(seconds_b, 3),
        "created": sorted(
            set(_actions(auto, "create")) - set(results["phase_a"]["created"])
        ),
        "retired": retired,
        "auto_us": round(auto_b * 1e6, 3),
        "baseline_us": round(base_b * 1e6, 3),
        "speedup": round(base_b / auto_b, 3) if auto_b > 0 else None,
    }
    status = auto.autotuner.status()
    results["final_status"] = {
        "applied": status["applied"],
        "retired": status["retired"],
        "tick": status["tick"],
        "budget": status["budget"],
        "indexes": status["indexes"],
    }

    # ----- Re-specialisation: frozen template vs MCV-aware replanning.
    results["respec"] = run_respec(smoke)
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small, CI-sized database and time budget")
    parser.add_argument("--output", default="BENCH_self_driving.json",
                        metavar="PATH", help="where to write the JSON record")
    parser.add_argument(
        "--require-speedup", type=float, default=None, metavar="X",
        help="fail unless the phase-B steady state beats the no-autotune "
        "baseline by this factor (also requires phase-A/B convergence "
        "and phase-A index retirement)",
    )
    parser.add_argument(
        "--require-respec-speedup", type=float, default=None, metavar="X",
        help="fail unless rare-binding latency with respecialisation "
        "beats the frozen-template arm by this factor",
    )
    args = parser.parse_args(argv)

    results = run_benchmark(smoke=args.smoke)
    for phase in ("phase_a", "phase_b"):
        row = results[phase]
        extra = (
            f"  retired={row['retired']}" if phase == "phase_b" else ""
        )
        print(
            f"{phase}: converged={row['converged']} "
            f"({row['turns_to_converge']} turns, "
            f"{row['seconds_to_converge']}s)  created={row['created']}"
            f"{extra}"
        )
        print(
            f"  auto {row['auto_us']:9.2f} us   "
            f"baseline {row['baseline_us']:9.2f} us   "
            f"{row['speedup']:6.2f}x"
        )
    respec = results["respec"]
    print(
        f"respec: {respec['differential_queries']} differential ok  "
        f"counters={respec['counters']}"
    )
    print(
        f"  rare bindings: respec on {respec['rare_respec_on_us']:9.2f} us"
        f"   off {respec['rare_respec_off_us']:9.2f} us   "
        f"{respec['speedup']:6.2f}x"
    )
    with open(args.output, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")
    print(f"wrote {args.output}")

    failures: list[str] = []
    if args.require_speedup is not None:
        if not results["phase_a"]["converged"]:
            failures.append("phase A never created the ordered index")
        if not results["phase_b"]["converged"]:
            failures.append(
                "phase B never created the join index or never retired "
                "the phase-A index"
            )
        if results["phase_b"]["speedup"] < args.require_speedup:
            failures.append(
                f"phase B speedup {results['phase_b']['speedup']}x below "
                f"required {args.require_speedup}x"
            )
    if args.require_respec_speedup is not None:
        if respec["speedup"] < args.require_respec_speedup:
            failures.append(
                f"respec speedup {respec['speedup']}x below required "
                f"{args.require_respec_speedup}x"
            )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
