"""E6 — Multi-session serving throughput on one AgentRuntime.

The refactor's claim: one synthesized artifacts bundle serves many
concurrent conversations.  We sweep 1 / 4 / 16 interleaved sessions
(one thread each) against a single runtime and report aggregate
turns/sec plus p95 per-turn latency, next to the single-session
baseline of ``bench_latency.py``.

Each simulated client waits ``THINK_TIME_S`` between turns — the
network/typing gap every real deployment has; it is what concurrency
overlaps, exactly as in a production serving tier.  With think time the
aggregate throughput must scale well above the 1-session baseline; we
also print the zero-think-time numbers, where the GIL bounds pure-CPU
speedup, to show that turn *latency* stays flat while sessions multiply.
"""

from __future__ import annotations

import statistics
import sys
import threading
import time

from repro import CAT
from repro.datasets import MovieConfig, build_movie_database, movie_templates
from repro.eval import ResultTable
from repro.serving import AgentRuntime
from repro.synthesis import GenerationConfig, SelfPlayConfig

THINK_TIME_S = 0.005
TURNS_PER_SESSION = 40
SESSION_SWEEP = (1, 4, 16)

BENCH_CONFIG = MovieConfig(
    seed=13,
    n_customers=150,
    n_movies=60,
    n_screenings=400,
    n_reservations=80,
    n_actors=60,
    extra_dimensions=3,
    n_days=30,
)

_runtime_cache: dict[str, AgentRuntime] = {}


def shared_runtime() -> AgentRuntime:
    """Synthesize once; every sweep point reuses the same runtime."""
    runtime = _runtime_cache.get("runtime")
    if runtime is None:
        database, annotations = build_movie_database(BENCH_CONFIG)
        cat = CAT(
            database,
            annotations,
            generation=GenerationConfig(
                samples_per_template=4,
                selfplay=SelfPlayConfig(n_flows=150),
            ),
        )
        cat.add_template_catalog(movie_templates())
        print("synthesizing the benchmark agent ...", file=sys.stderr)
        runtime = cat.synthesize_runtime()
        _runtime_cache["runtime"] = runtime
    return runtime


def _client_script(index: int) -> list[str]:
    """A short, non-transactional episode (steady-state serving load)."""
    amount = (index % 7) + 1
    return [
        "hello",
        f"i want to buy {amount} tickets",
        "my name is smith",
        "never mind, forget it",
    ]


def _run_sessions(
    runtime: AgentRuntime, n_sessions: int, think_time: float
) -> tuple[float, list[float]]:
    """Drive ``n_sessions`` concurrent clients; returns (wall_s, latencies)."""
    latencies: list[list[float]] = [[] for __ in range(n_sessions)]
    barrier = threading.Barrier(n_sessions + 1)
    errors: list[Exception] = []

    def client(index: int) -> None:
        sid = runtime.create_session()
        script = _client_script(index)
        try:
            barrier.wait(timeout=60)
            for turn in range(TURNS_PER_SESSION):
                if think_time:
                    time.sleep(think_time)
                start = time.perf_counter()
                runtime.respond(sid, script[turn % len(script)])
                latencies[index].append(time.perf_counter() - start)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)
        finally:
            runtime.end_session(sid)

    threads = [
        threading.Thread(target=client, args=(i,)) for i in range(n_sessions)
    ]
    for thread in threads:
        thread.start()
    barrier.wait(timeout=60)
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    if errors:
        raise errors[0]
    return wall, [sample for per in latencies for sample in per]


def _p95(samples: list[float]) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]


def _sweep(runtime: AgentRuntime, think_time: float, title: str):
    table = ResultTable(
        title,
        ["sessions", "turns_per_sec", "p95_ms", "mean_ms"],
    )
    throughput: dict[int, float] = {}
    for n_sessions in SESSION_SWEEP:
        # Warm-up pass so cache rebuilds don't skew the first sweep point.
        if n_sessions == SESSION_SWEEP[0]:
            _run_sessions(runtime, 1, 0.0)
        wall, latencies = _run_sessions(runtime, n_sessions, think_time)
        turns = n_sessions * TURNS_PER_SESSION
        throughput[n_sessions] = turns / wall
        table.add_row(
            n_sessions,
            round(turns / wall, 1),
            round(_p95(latencies) * 1000.0, 2),
            round(statistics.fmean(latencies) * 1000.0, 2),
        )
    table.show()
    return throughput


def test_concurrent_throughput_scales_with_sessions():
    """Aggregate turns/sec at 16 sessions beats the 1-session baseline."""
    runtime = shared_runtime()
    throughput = _sweep(
        runtime,
        THINK_TIME_S,
        f"E6: concurrent sessions ({THINK_TIME_S * 1000:.0f} ms client "
        f"think time, {TURNS_PER_SESSION} turns/session)",
    )
    baseline = throughput[SESSION_SWEEP[0]]
    peak = throughput[SESSION_SWEEP[-1]]
    assert peak > baseline * 1.5, (
        f"16 sessions served {peak:.1f} turns/s, baseline {baseline:.1f}"
    )


def test_turn_latency_stays_flat_without_think_time():
    """Pure-CPU sweep: more sessions must not collapse per-turn latency."""
    runtime = shared_runtime()
    wall_1, lat_1 = _run_sessions(runtime, 1, 0.0)
    wall_16, lat_16 = _run_sessions(runtime, 16, 0.0)
    table = ResultTable(
        "E6b: zero think time (GIL-bound, contention check)",
        ["sessions", "turns_per_sec", "p95_ms"],
    )
    table.add_row(1, round(TURNS_PER_SESSION / wall_1, 1),
                  round(_p95(lat_1) * 1000.0, 2))
    table.add_row(16, round(16 * TURNS_PER_SESSION / wall_16, 1),
                  round(_p95(lat_16) * 1000.0, 2))
    table.show()
    # Aggregate throughput must not collapse under lock contention: 16
    # CPU-bound sessions should still push at least half the single
    # session rate through the shared runtime.
    assert (16 * TURNS_PER_SESSION / wall_16) > \
        (TURNS_PER_SESSION / wall_1) * 0.5


def test_isolation_under_load():
    """Every concurrent client sees exactly its own slots."""
    runtime = shared_runtime()
    results: dict[int, int] = {}
    errors: list[Exception] = []

    def client(index: int) -> None:
        try:
            sid = runtime.create_session()
            amount = (index % 9) + 1
            runtime.respond(sid, f"i want to buy {amount} tickets")
            state = runtime.session(sid).context.state
            results[index] = state.collected.get("ticket_amount")
            runtime.end_session(sid)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=client, args=(i,)) for i in range(16)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    for index, amount in results.items():
        assert amount == (index % 9) + 1


if __name__ == "__main__":  # pragma: no cover - manual run
    test_concurrent_throughput_scales_with_sessions()
    test_turn_latency_stays_flat_without_think_time()
    test_isolation_under_load()
