"""E6 — Multi-session serving throughput on one AgentRuntime.

The MVCC claim: one synthesized artifacts bundle serves many concurrent
conversations, readers never queue behind a lock, and the shard tier
scales past the GIL with worker processes.  Run as a script this file
sweeps four profiles and writes a JSON artifact (percentile latencies,
cpu count, gate results):

* ``threads_mvcc`` — N interleaved sessions on one runtime, the MVCC
  snapshot read path (no serving-tier lock at all);
* ``serialized_baseline`` — the same sweep with a bench-local global
  lock around every turn, i.e. the pre-MVCC single-writer discipline;
* ``workers`` — the shard router fanning sessions across worker
  processes (fork-inherited runtime replicas), zero think time;
* ``writer_interference`` — reader latency percentiles while a writer
  thread holds multi-statement transactions: under MVCC readers sail
  through on pinned snapshots, under the single lock they queue.

Each simulated client waits ``THINK_TIME_S`` between turns — the
network/typing gap every real deployment has; it is what concurrency
overlaps.  Zero-think-time sweeps are GIL-bound on one core, which is
exactly the gap the ``workers`` profile exists to close; gates that
encode a speedup (``--require-worker-speedup``) therefore only make
sense on multi-core machines, and the artifact records ``cpu_count`` so
readers can judge the numbers honestly.

The three pytest entry points at the bottom keep the original
tier-2 assertions runnable under plain pytest.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import sys
import threading
import time

from repro import CAT
from repro.datasets import MovieConfig, build_movie_database, movie_templates
from repro.eval import ResultTable
from repro.serving import AgentRuntime, ShardRouter
from repro.synthesis import GenerationConfig, SelfPlayConfig

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from helpers import latency_summary, percentile  # noqa: E402

THINK_TIME_S = 0.005
TURNS_PER_SESSION = 40
SESSION_SWEEP = (1, 4, 16)
WRITER_HOLD_S = 0.003

BENCH_CONFIG = MovieConfig(
    seed=13,
    n_customers=150,
    n_movies=60,
    n_screenings=400,
    n_reservations=80,
    n_actors=60,
    extra_dimensions=3,
    n_days=30,
)

_runtime_cache: dict[str, AgentRuntime] = {}


def shared_runtime() -> AgentRuntime:
    """Synthesize once; every sweep point reuses the same runtime.

    Also the shard bootstrap: forked workers inherit the populated
    cache, so per-worker replicas cost nothing to build.
    """
    runtime = _runtime_cache.get("runtime")
    if runtime is None:
        database, annotations = build_movie_database(BENCH_CONFIG)
        cat = CAT(
            database,
            annotations,
            generation=GenerationConfig(
                samples_per_template=4,
                selfplay=SelfPlayConfig(n_flows=150),
            ),
        )
        cat.add_template_catalog(movie_templates())
        print("synthesizing the benchmark agent ...", file=sys.stderr)
        runtime = cat.synthesize_runtime()
        _runtime_cache["runtime"] = runtime
    return runtime


class SerializedFacade:
    """The pre-MVCC discipline: one global lock around every turn."""

    def __init__(self, runtime: AgentRuntime) -> None:
        self._runtime = runtime
        self.lock = threading.Lock()

    def create_session(self, session_id: str | None = None) -> str:
        return self._runtime.create_session(session_id)

    def respond(self, session_id: str, text: str):
        with self.lock:
            return self._runtime.respond(session_id, text)

    def end_session(self, session_id: str) -> None:
        self._runtime.end_session(session_id)


def _client_script(index: int) -> list[str]:
    """A short, non-transactional episode (steady-state serving load)."""
    amount = (index % 7) + 1
    return [
        "hello",
        f"i want to buy {amount} tickets",
        "my name is smith",
        "never mind, forget it",
    ]


def _run_sessions(
    server,
    n_sessions: int,
    think_time: float,
    turns: int = TURNS_PER_SESSION,
) -> tuple[float, list[float]]:
    """Drive ``n_sessions`` concurrent clients; returns (wall_s, latencies).

    ``server`` is anything with the create_session/respond/end_session
    trio: an AgentRuntime, a ShardRouter or a SerializedFacade.
    """
    latencies: list[list[float]] = [[] for __ in range(n_sessions)]
    barrier = threading.Barrier(n_sessions + 1)
    errors: list[Exception] = []

    def client(index: int) -> None:
        sid = server.create_session()
        script = _client_script(index)
        try:
            barrier.wait(timeout=60)
            for turn in range(turns):
                if think_time:
                    time.sleep(think_time)
                start = time.perf_counter()
                server.respond(sid, script[turn % len(script)])
                latencies[index].append(time.perf_counter() - start)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)
        finally:
            server.end_session(sid)

    threads = [
        threading.Thread(target=client, args=(i,)) for i in range(n_sessions)
    ]
    for thread in threads:
        thread.start()
    barrier.wait(timeout=60)
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    if errors:
        raise errors[0]
    return wall, [sample for per in latencies for sample in per]


def _p95(samples: list[float]) -> float:
    return percentile(samples, 95)


def _sweep(runtime, think_time: float, title: str, sessions=SESSION_SWEEP,
           turns: int = TURNS_PER_SESSION):
    table = ResultTable(
        title,
        ["sessions", "turns_per_sec", "p95_ms", "mean_ms"],
    )
    throughput: dict[int, float] = {}
    rows = []
    for n_sessions in sessions:
        # Warm-up pass so cache rebuilds don't skew the first sweep point.
        if n_sessions == sessions[0]:
            _run_sessions(runtime, 1, 0.0, turns=min(turns, 10))
        wall, latencies = _run_sessions(
            runtime, n_sessions, think_time, turns=turns
        )
        total = n_sessions * turns
        throughput[n_sessions] = total / wall
        summary = latency_summary(latencies)
        rows.append(
            {
                "sessions": n_sessions,
                "turns_per_sec": round(total / wall, 2),
                "latency_ms": summary,
            }
        )
        table.add_row(
            n_sessions,
            round(total / wall, 1),
            summary["p95_ms"],
            summary["mean_ms"],
        )
    table.show()
    return throughput, rows


# ----------------------------------------------------------------------
# Script-mode profiles
# ----------------------------------------------------------------------
def _profile_threads(runtime, sessions, turns) -> dict:
    throughput, rows = _sweep(
        runtime,
        THINK_TIME_S,
        f"E6: MVCC threads ({THINK_TIME_S * 1000:.0f} ms think time)",
        sessions=sessions,
        turns=turns,
    )
    return {"think_time_s": THINK_TIME_S, "sweep": rows}


def _profile_serialized(runtime, sessions, turns) -> dict:
    facade = SerializedFacade(runtime)
    __, rows = _sweep(
        facade,
        THINK_TIME_S,
        "E6: serialized baseline (one lock around every turn)",
        sessions=sessions,
        turns=turns,
    )
    return {"think_time_s": THINK_TIME_S, "sweep": rows}


def _profile_workers(worker_sweep, sessions: int, turns: int) -> dict:
    """Zero-think shard sweep: sessions spread across worker processes."""
    can_fork = "fork" in multiprocessing.get_all_start_methods()
    table = ResultTable(
        "E6: shard workers (zero think time, "
        f"{sessions} sessions x {turns} turns)",
        ["workers", "turns_per_sec", "p95_ms", "per_worker_turns"],
    )
    rows = []
    for n_workers in worker_sweep:
        router = ShardRouter(
            n_workers,
            shared_runtime,
            start_method="fork" if can_fork else None,
            inprocess=not can_fork,
        )
        try:
            # Forked replicas inherit the parent runtime's counters;
            # report this run's turns only.
            before = router.stats().per_worker_turns
            wall, latencies = _run_sessions(router, sessions, 0.0, turns)
            served = [
                after - prior
                for after, prior in zip(
                    router.stats().per_worker_turns, before
                )
            ]
            summary = latency_summary(latencies)
            rows.append(
                {
                    "workers": n_workers,
                    "sessions": sessions,
                    "turns_per_sec": round(sessions * turns / wall, 2),
                    "latency_ms": summary,
                    "per_worker_turns": served,
                }
            )
            table.add_row(
                n_workers,
                round(sessions * turns / wall, 1),
                summary["p95_ms"],
                "/".join(str(t) for t in served),
            )
        finally:
            router.close()
    table.show()
    return {"process_workers": can_fork, "sweep": rows}


def _writer_loop(runtime, lock, stop: threading.Event, counters: dict):
    """Commit short transactions until told to stop.

    ``lock`` is the serialized baseline's global lock (None under MVCC):
    the pre-MVCC tier held its writer lock for the whole transaction,
    so the baseline writer does too.
    """
    database = runtime.database
    table = database.table("movie")
    rid = table.row_ids()[0]
    title = table.get(rid)["title"]
    conn = database.connect(name="bench-writer")
    while not stop.is_set():
        acquired = False
        if lock is not None:
            lock.acquire()
            acquired = True
        try:
            with conn.transaction():
                database.update("movie", rid, {"title": title})
                time.sleep(WRITER_HOLD_S)  # slow commit (I/O, fsync, ...)
        finally:
            if acquired:
                lock.release()
        counters["commits"] += 1
        time.sleep(WRITER_HOLD_S)


def _readers_under_writer(server, runtime, lock, sessions, turns):
    stop = threading.Event()
    counters = {"commits": 0}
    writer = threading.Thread(
        target=_writer_loop, args=(runtime, lock, stop, counters)
    )
    writer.start()
    try:
        wall, latencies = _run_sessions(server, sessions, 0.0, turns)
    finally:
        stop.set()
        writer.join(timeout=30)
    return wall, latencies, counters["commits"]


def _profile_writer_interference(runtime, sessions: int, turns: int) -> dict:
    """Reader percentiles with a transaction-committing writer running."""
    facade = SerializedFacade(runtime)
    wall_ser, lat_ser, commits_ser = _readers_under_writer(
        facade, runtime, facade.lock, sessions, turns
    )
    wall_mvcc, lat_mvcc, commits_mvcc = _readers_under_writer(
        runtime, runtime, None, sessions, turns
    )
    table = ResultTable(
        "E6: reader latency under writer interference "
        f"({sessions} readers, {WRITER_HOLD_S * 1000:.0f} ms commit hold)",
        ["mode", "turns_per_sec", "p50_ms", "p99_ms", "writer_commits"],
    )
    out = {}
    for mode, wall, lats, commits in (
        ("serialized", wall_ser, lat_ser, commits_ser),
        ("mvcc", wall_mvcc, lat_mvcc, commits_mvcc),
    ):
        summary = latency_summary(lats)
        out[mode] = {
            "turns_per_sec": round(sessions * turns / wall, 2),
            "latency_ms": summary,
            "writer_commits": commits,
        }
        table.add_row(
            mode,
            round(sessions * turns / wall, 1),
            summary["p50_ms"],
            summary["p99_ms"],
            commits,
        )
    table.show()
    p99_ser = out["serialized"]["latency_ms"]["p99_ms"]
    p99_mvcc = out["mvcc"]["latency_ms"]["p99_ms"]
    out["reader_p99_speedup"] = round(p99_ser / max(p99_mvcc, 1e-9), 2)
    return out


def run_bench(args) -> dict:
    smoke = args.smoke and not args.full
    turns = 12 if smoke else TURNS_PER_SESSION
    max_sessions = args.sessions or (8 if smoke else 16)
    session_sweep = tuple(
        sorted({1, min(4, max_sessions), max_sessions})
    )
    worker_sweep = tuple(
        sorted({1, args.workers})
    )
    runtime = shared_runtime()

    artifact: dict = {
        "bench": "concurrent_sessions",
        "mode": "smoke" if smoke else "full",
        "cpu_count": os.cpu_count(),
        "turns_per_session": turns,
        "profiles": {},
        "gates": {},
    }
    artifact["profiles"]["threads_mvcc"] = _profile_threads(
        runtime, session_sweep, turns
    )
    artifact["profiles"]["serialized_baseline"] = _profile_serialized(
        runtime, session_sweep, turns
    )
    artifact["profiles"]["writer_interference"] = (
        _profile_writer_interference(
            runtime, min(4, max_sessions), turns
        )
    )
    artifact["profiles"]["workers"] = _profile_workers(
        worker_sweep, max_sessions, turns
    )

    failures = []
    if args.require_reader_scaling is not None:
        sweep = artifact["profiles"]["threads_mvcc"]["sweep"]
        base = sweep[0]["turns_per_sec"]
        peak = sweep[-1]["turns_per_sec"]
        ratio = round(peak / base, 2)
        passed = ratio >= args.require_reader_scaling
        artifact["gates"]["reader_scaling"] = {
            "required": args.require_reader_scaling,
            "observed": ratio,
            "passed": passed,
        }
        if not passed:
            failures.append(
                f"reader scaling {ratio}x < "
                f"required {args.require_reader_scaling}x"
            )
    if args.require_worker_speedup is not None:
        sweep = artifact["profiles"]["workers"]["sweep"]
        base = sweep[0]["turns_per_sec"]
        peak = max(row["turns_per_sec"] for row in sweep)
        ratio = round(peak / base, 2)
        passed = ratio >= args.require_worker_speedup
        artifact["gates"]["worker_speedup"] = {
            "required": args.require_worker_speedup,
            "observed": ratio,
            "passed": passed,
        }
        if not passed:
            failures.append(
                f"worker speedup {ratio}x < "
                f"required {args.require_worker_speedup}x"
            )
    artifact["failures"] = failures
    return artifact


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Concurrent-session serving benchmark (E6)"
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small sweeps for CI (12 turns, 8 sessions)",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="full sweeps (overrides --smoke)",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="max worker count for the shard profile (default 2)",
    )
    parser.add_argument(
        "--sessions", type=int, default=None,
        help="max concurrent sessions (default 8 smoke / 16 full)",
    )
    parser.add_argument(
        "--require-reader-scaling", type=float, default=None,
        help="fail unless peak/single-session turns/s >= this ratio",
    )
    parser.add_argument(
        "--require-worker-speedup", type=float, default=None,
        help="fail unless peak/1-worker turns/s >= this ratio "
        "(meaningful on multi-core machines only)",
    )
    parser.add_argument(
        "--output", default=None,
        help="write the JSON artifact to this path",
    )
    args = parser.parse_args(argv)
    artifact = run_bench(args)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(artifact, handle, indent=2)
        print(f"wrote {args.output}", file=sys.stderr)
    if artifact["failures"]:
        for failure in artifact["failures"]:
            print(f"GATE FAILED: {failure}", file=sys.stderr)
        return 1
    return 0


# ----------------------------------------------------------------------
# Pytest entry points (tier-2)
# ----------------------------------------------------------------------
def test_concurrent_throughput_scales_with_sessions():
    """Aggregate turns/sec at 16 sessions beats the 1-session baseline."""
    runtime = shared_runtime()
    throughput, __ = _sweep(
        runtime,
        THINK_TIME_S,
        f"E6: concurrent sessions ({THINK_TIME_S * 1000:.0f} ms client "
        f"think time, {TURNS_PER_SESSION} turns/session)",
    )
    baseline = throughput[SESSION_SWEEP[0]]
    peak = throughput[SESSION_SWEEP[-1]]
    assert peak > baseline * 1.5, (
        f"16 sessions served {peak:.1f} turns/s, baseline {baseline:.1f}"
    )


def test_turn_latency_stays_flat_without_think_time():
    """Pure-CPU sweep: more sessions must not collapse per-turn latency."""
    runtime = shared_runtime()
    wall_1, lat_1 = _run_sessions(runtime, 1, 0.0)
    wall_16, lat_16 = _run_sessions(runtime, 16, 0.0)
    table = ResultTable(
        "E6b: zero think time (GIL-bound, contention check)",
        ["sessions", "turns_per_sec", "p95_ms"],
    )
    table.add_row(1, round(TURNS_PER_SESSION / wall_1, 1),
                  round(_p95(lat_1) * 1000.0, 2))
    table.add_row(16, round(16 * TURNS_PER_SESSION / wall_16, 1),
                  round(_p95(lat_16) * 1000.0, 2))
    table.show()
    # Aggregate throughput must not collapse under lock contention: 16
    # CPU-bound sessions should still push at least half the single
    # session rate through the shared runtime.
    assert (16 * TURNS_PER_SESSION / wall_16) > \
        (TURNS_PER_SESSION / wall_1) * 0.5


def test_isolation_under_load():
    """Every concurrent client sees exactly its own slots."""
    runtime = shared_runtime()
    results: dict[int, int] = {}
    errors: list[Exception] = []

    def client(index: int) -> None:
        try:
            sid = runtime.create_session()
            amount = (index % 9) + 1
            runtime.respond(sid, f"i want to buy {amount} tickets")
            state = runtime.session(sid).context.state
            results[index] = state.collected.get("ticket_amount")
            runtime.end_session(sid)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=client, args=(i,)) for i in range(16)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    for index, amount in results.items():
        assert amount == (index % 9) + 1


if __name__ == "__main__":  # pragma: no cover - manual / CI run
    sys.exit(main())
