"""Ablation — informativeness measure and join-expansion depth.

DESIGN.md calls out two data-aware design choices:

* the informativeness measure (entropy, as in the paper, vs distinct
  count vs Gini impurity), and
* the iterative join expansion depth (0 hops reproduces the
  single-table assumption of prior work the paper criticises; 1-2 hops
  unlock joined attributes like the movie title for a screening).
"""

from __future__ import annotations

import sys

from repro.dataaware import (
    DataAwarePolicy,
    InformativenessMeasure,
    UserAwarenessModel,
)
from repro.datasets import MovieConfig, build_movie_database
from repro.db import StatisticsCatalog
from repro.eval import PolicyExperiment, ResultTable

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from helpers import screening_lookup  # noqa: E402

CONFIG = MovieConfig(
    seed=3, n_customers=100, n_movies=80, n_screenings=500,
    n_reservations=60, n_actors=80, extra_dimensions=4, n_days=30,
)

EPISODES = 30


def test_ablation_informativeness_measure(benchmark):
    database, annotations = build_movie_database(CONFIG)
    catalog, lookup = screening_lookup(database, annotations)
    experiment = PolicyExperiment(database, catalog, annotations, lookup,
                                  seed=29)
    table = ResultTable(
        "Ablation: informativeness measure (screening identification)",
        ["measure", "mean_turns", "success"],
    )
    means = {}
    for measure in InformativenessMeasure:
        policy = DataAwarePolicy(
            lookup, UserAwarenessModel(annotations),
            StatisticsCatalog(database), measure=measure,
        )
        summary, __ = experiment.run(policy, n_episodes=EPISODES)
        table.add_row(measure.value, summary.mean_turns,
                      summary.success_rate)
        means[measure.value] = summary.mean_turns
    table.show()
    # Entropy must be competitive with the alternatives (within a turn).
    assert means["entropy"] <= min(means.values()) + 1.0
    benchmark.extra_info["means"] = means
    benchmark(lambda: experiment.run(
        DataAwarePolicy(lookup, UserAwarenessModel(annotations),
                        StatisticsCatalog(database)),
        n_episodes=3,
    ))


def test_ablation_join_depth(benchmark):
    database, annotations = build_movie_database(CONFIG)
    catalog, lookup = screening_lookup(database, annotations)
    experiment = PolicyExperiment(database, catalog, annotations, lookup,
                                  seed=31)
    table = ResultTable(
        "Ablation: join-expansion depth (0 = single-table assumption of "
        "prior work)",
        ["max_hops", "mean_turns", "success"],
    )
    means = {}
    for hops in (0, 1, 2):
        policy = DataAwarePolicy(
            lookup, UserAwarenessModel(annotations),
            StatisticsCatalog(database), max_hops=hops,
        )
        summary, __ = experiment.run(policy, n_episodes=EPISODES)
        table.add_row(hops, summary.mean_turns, summary.success_rate)
        means[hops] = summary.mean_turns
    table.show()
    # Joined attributes must help: depth >= 1 beats the single-table
    # assumption on this workload.
    assert min(means[1], means[2]) <= means[0] + 0.25
    benchmark.extra_info["means"] = {str(k): v for k, v in means.items()}
    benchmark(lambda: experiment.run(
        DataAwarePolicy(lookup, UserAwarenessModel(annotations),
                        StatisticsCatalog(database), max_hops=2),
        n_episodes=3,
    ))
