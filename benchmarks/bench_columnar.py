"""Columnar batch-execution benchmark: batched vs row-at-a-time mode.

The engine executes bank-friendly plans (unary pipelines over a
sequential scan) in *batch mode* by default: predicates narrow slot
lists columnwise over the table's column banks, aggregates reduce
column lists per group, and only surviving rows are materialised.  Row
mode — the pre-columnar behaviour of streaming one row view at a time —
remains as the fallback for joins and index probes, and can be forced
process-wide with :func:`repro.db.engine.execution_mode`.

Before timing anything the two modes are differential-checked on a
randomised workload (>= 500 queries over random predicates — including
ORs, IN-lists, negations and substring matches — joins, orderings,
limits, projections, counts, grouped aggregates and HAVING filters):
every query must produce byte-identical results in both modes.

The timed section replays scan-heavy filter, grouped-aggregate and
join workloads (the shapes the batched pipeline exists for) in both
modes; each gated workload carries a per-workload speedup floor
(``GATED_WORKLOADS``), and ``--require-speedup X`` raises every floor
to at least ``X``.

Run standalone (CI runs the smoke profile and archives the JSON):

    PYTHONPATH=src python benchmarks/bench_columnar.py --smoke \
        --output BENCH_columnar.json
"""

from __future__ import annotations

import argparse
import datetime as dt
import json
import random
import statistics as stats
import sys
import time

from repro.datasets import MovieConfig, build_movie_database
from repro.db import Query, and_, contains, eq, ge, in_, le, ne, not_, or_
from repro.db.aggregation import (
    aggregate_query,
    avg,
    count,
    count_distinct,
    max_,
    min_,
    sum_,
)
from repro.db.engine import execution_mode
from repro.errors import DatabaseError

# Workloads the CI gate applies to, with per-workload speedup floors:
# scan-heavy selective filters, grouped aggregates and the vectorized
# join — the shapes batch mode accelerates.  ``grouped_sum`` carries a
# higher floor because the memoised grouped layout answers it with
# segment arithmetic rather than a per-row accumulator pass;
# ``filter_join`` is gated now that joins run columnwise over the
# slot-space build instead of falling back to the row path.
# Materialisation-bound shapes (a wide filter that keeps most rows) are
# reported but ungated — their batch win is real yet bounded by the
# per-output-row dict construction both modes share.
GATED_WORKLOADS = {
    "scan_filter_narrow": 3.0,
    "count_filter": 3.0,
    "grouped_sum": 4.0,
    "grouped_count": 3.0,
    "grouped_multi": 3.0,
    "filter_join": 3.0,
}


# ---------------------------------------------------------------------------
# Differential check: batch mode vs row mode, byte-identical
# ---------------------------------------------------------------------------

_ROOMS = tuple(f"room {chr(ord('A') + i)}" for i in range(5))


def _random_predicate(rng: random.Random, config: MovieConfig, table: str):
    """One random predicate part over ``table``'s columns."""
    day = config.start_date + dt.timedelta(days=rng.randrange(config.n_days))
    choices = {
        "screening": [
            lambda: eq("room", rng.choice(_ROOMS)),
            lambda: ne("room", rng.choice(_ROOMS)),
            lambda: ge("capacity", rng.choice((40, 60, 80, 120))),
            lambda: and_(ge("date", day),
                         le("date", day + dt.timedelta(days=2))),
            lambda: in_("movie_id", tuple(
                rng.randrange(1, config.n_movies + 1)
                for __ in range(rng.randrange(1, 5))
            )),
            lambda: or_(eq("room", rng.choice(_ROOMS)),
                        eq("movie_id", rng.randrange(1, config.n_movies + 1))),
            lambda: not_(eq("room", rng.choice(_ROOMS))),
            lambda: le("price", 8.0 + rng.randrange(0, 5)),
        ],
        "reservation": [
            lambda: eq("screening_id",
                       rng.randrange(1, config.n_screenings + 1)),
            lambda: ge("no_tickets", rng.randrange(1, 6)),
            lambda: or_(
                eq("screening_id",
                   rng.randrange(1, config.n_screenings + 1)),
                eq("customer_id", rng.randrange(1, config.n_customers + 1)),
            ),
        ],
        "movie": [
            lambda: ge("year", rng.randrange(1960, 2022)),
            lambda: contains("title", rng.choice(
                ("the", "of", "on", "a", "er")
            )),
            lambda: in_("genre", ("drama", "comedy", "action")),
            lambda: ne("genre", "drama"),
            # Mixed-type comparison: exercises the TypeError-means-False
            # fallback in the columnwise evaluator.
            lambda: ge("year", "not-a-year"),
        ],
    }
    return rng.choice(choices[table])()


def _random_query(rng: random.Random, config: MovieConfig):
    """A random row query; returns ``(query, runner_kind)``."""
    table = rng.choice(("screening", "reservation", "movie"))
    query = Query(table)
    for __ in range(rng.randrange(0, 3)):
        query.where(_random_predicate(rng, config, table))
    if table == "screening" and rng.random() < 0.3:
        query.join("movie_id", "movie", "movie_id")
    elif table == "reservation":
        # Join shapes over the vectorized probe: single, and chained
        # two-table (exercises the multi-part join-output adapter).
        roll = rng.random()
        if roll < 0.2:
            query.join("screening_id", "screening", "screening_id")
        elif roll < 0.35:
            query.join("screening_id", "screening", "screening_id")
            query.join("customer_id", "customer", "customer_id")
    if rng.random() < 0.3:
        order_cols = {
            "screening": ("date", "price", "room"),
            "reservation": ("no_tickets", "reservation_id"),
            "movie": ("year", "title"),
        }[table]
        query.order_by(rng.choice(order_cols),
                       descending=rng.random() < 0.5)
    if rng.random() < 0.3:
        query.limit(rng.randrange(0, 25))
    if rng.random() < 0.2:
        select_cols = {
            "screening": ("screening_id", "room", "price"),
            "reservation": ("reservation_id", "no_tickets"),
            "movie": ("title", "year"),
        }[table]
        query.select(*select_cols)
    kind = "count" if rng.random() < 0.2 else "rows"
    return query, kind


def _random_aggregate(rng: random.Random, config: MovieConfig):
    """A random grouped aggregate; returns its aggregate_query args."""
    table = rng.choice(("screening", "reservation"))
    query = Query(table)
    if rng.random() < 0.5:
        query.where(_random_predicate(rng, config, table))
    numeric = {
        "screening": ("price", "capacity"),
        "reservation": ("no_tickets",),
    }[table]
    categorical = {
        "screening": ["room", "movie_id"],
        "reservation": ["screening_id", "customer_id"],
    }[table]
    # Aggregates over joins: some rewrite below the join (NOT NULL FK
    # elision, group-keyed unique semi-join), some keep it (prefixed
    # group keys force the aggregate to run above the join output).
    if rng.random() < 0.3:
        if table == "screening":
            query.join("movie_id", "movie", "movie_id")
            categorical = categorical + ["movie.genre"]
        else:
            query.join("screening_id", "screening", "screening_id")
            categorical = categorical + ["screening.room"]
    group_by = (
        rng.sample(categorical, rng.randrange(1, 3))
        if rng.random() < 0.8 else None
    )
    aggregates = {"n": count()}
    for i in range(rng.randrange(0, 3)):
        kind = rng.choice((sum_, avg, min_, max_, count_distinct))
        aggregates[f"a{i}"] = kind(rng.choice(numeric))
    having = ge("n", rng.randrange(1, 4)) if rng.random() < 0.3 else None
    return query, aggregates, group_by, having


def run_differential(database, config: MovieConfig, n_queries: int,
                     seed: int = 61) -> int:
    """Row vs batch mode on ``n_queries`` random queries; returns the
    number checked (raises on the first mismatch)."""
    rng = random.Random(seed)
    for i in range(n_queries):
        if rng.random() < 0.25:
            query, aggregates, group_by, having = _random_aggregate(
                rng, config
            )
            run = lambda: aggregate_query(  # noqa: E731
                database, query, aggregates, group_by, having
            )
        else:
            query, kind = _random_query(rng, config)
            if kind == "count":
                run = lambda: query.count(database)  # noqa: E731
            else:
                run = lambda: query.run(database)  # noqa: E731
        with execution_mode("row"):
            try:
                expected = run()
            except DatabaseError as exc:
                expected = ("error", type(exc).__name__, str(exc))
        with execution_mode("batch"):
            try:
                actual = run()
            except DatabaseError as exc:
                actual = ("error", type(exc).__name__, str(exc))
        if actual != expected:
            raise AssertionError(
                f"differential query {i}: batch result differs from row "
                f"result (table={query.table})"
            )
    return n_queries


# ---------------------------------------------------------------------------
# Timed workloads
# ---------------------------------------------------------------------------

def make_workloads(config: MovieConfig):
    """``name -> (callable, gated)``; each callable runs one query."""
    day = config.start_date + dt.timedelta(days=config.n_days // 2)

    def scan_filter_wide(database):
        # Unindexable disjunct-free inequality: SeqScan + Filter keeping
        # most rows — the materialisation-heavy shape.
        return Query("screening").where(ne("room", "room A")).run(database)

    def scan_filter_narrow(database):
        # Conjunctive scan keeping few rows: the filter dominates.  No
        # predicate is index-serviceable (substring + unindexed column),
        # so this stays a full SeqScan in both modes.
        return (
            Query("screening")
            .where(and_(contains("room", "b"), ge("capacity", 120)))
            .run(database)
        )

    def count_filter(database):
        return Query("screening").where(ne("room", "room A")).count(database)

    def grouped_sum(database):
        return aggregate_query(
            database,
            Query("reservation"),
            {"booked": sum_("no_tickets")},
            ["screening_id"],
        )

    def grouped_count(database):
        return aggregate_query(
            database, Query("screening"), {"n": count()}, ["movie_id"]
        )

    def grouped_multi(database):
        return aggregate_query(
            database,
            Query("screening"),
            {"n": count(), "lo": min_("price"), "hi": max_("price")},
            ["room"],
        )

    def grouped_having(database):
        return aggregate_query(
            database,
            Query("reservation"),
            {"booked": sum_("no_tickets")},
            ["screening_id"],
            having=ge("booked", 4),
        )

    def filter_join(database):
        # Vectorized join: a week's date range narrows slots columnwise,
        # the probe walks the memoised slot-space build of ``movie``, and
        # rows widen only at the output boundary.  The window is wide
        # enough that per-row join cost, not fixed per-query overhead,
        # dominates both modes.
        week_end = day + dt.timedelta(days=6)
        return (
            Query("screening")
            .where(and_(ge("date", day), le("date", week_end)))
            .join("movie_id", "movie", "movie_id")
            .run(database)
        )

    return {
        "scan_filter_wide": scan_filter_wide,
        "scan_filter_narrow": scan_filter_narrow,
        "count_filter": count_filter,
        "grouped_sum": grouped_sum,
        "grouped_count": grouped_count,
        "grouped_multi": grouped_multi,
        "grouped_having": grouped_having,
        "filter_join": filter_join,
    }


def _time(fn, min_seconds: float, max_iterations: int) -> float:
    """Median wall-clock seconds per call."""
    fn()  # warm caches (statistics catalog, plan cache)
    samples: list[float] = []
    budget_start = time.perf_counter()
    while (
        len(samples) < 5
        or (
            time.perf_counter() - budget_start < min_seconds
            and len(samples) < max_iterations
        )
    ):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return stats.median(samples)


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------

def run_benchmark(smoke: bool) -> dict:
    config = MovieConfig(
        n_screenings=3000 if smoke else 12000,
        n_movies=150 if smoke else 400,
        n_customers=400 if smoke else 1000,
        n_reservations=4000 if smoke else 16000,
        n_actors=80,
        n_days=30 if smoke else 60,
    )
    database, __ = build_movie_database(config)
    min_seconds = 0.1 if smoke else 0.4
    max_iterations = 50 if smoke else 200

    checked = run_differential(
        database, config, n_queries=500 if smoke else 1000
    )

    results: dict = {
        "benchmark": "columnar",
        "profile": "smoke" if smoke else "full",
        "config": {
            "n_screenings": config.n_screenings,
            "n_movies": config.n_movies,
            "n_reservations": config.n_reservations,
        },
        "differential_queries": checked,
        "workloads": {},
    }
    for name, fn in make_workloads(config).items():
        with execution_mode("row"):
            row_result = fn(database)
        with execution_mode("batch"):
            batch_result = fn(database)
        if row_result != batch_result:
            raise AssertionError(
                f"workload {name!r}: batch result differs from row result"
            )
        with execution_mode("row"):
            row_s = _time(lambda: fn(database), min_seconds, max_iterations)
        with execution_mode("batch"):
            batch_s = _time(lambda: fn(database), min_seconds, max_iterations)
        size = (
            row_result if isinstance(row_result, int) else len(row_result)
        )
        results["workloads"][name] = {
            "row_ms": round(row_s * 1000, 4),
            "batch_ms": round(batch_s * 1000, 4),
            "speedup": round(row_s / batch_s, 2) if batch_s > 0 else None,
            "rows": size,
            "gated": name in GATED_WORKLOADS,
            "floor": GATED_WORKLOADS.get(name),
        }
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small, CI-sized database and time budget")
    parser.add_argument("--output", default="BENCH_columnar.json",
                        metavar="PATH", help="where to write the JSON record")
    parser.add_argument(
        "--require-speedup", type=float, nargs="?", const=3.0, default=None,
        metavar="X",
        help="fail unless every gated workload (scan filters, grouped "
        "aggregates, joins) beats row mode by its per-workload floor, "
        "raised to at least this factor (default 3)",
    )
    args = parser.parse_args(argv)

    results = run_benchmark(smoke=args.smoke)
    width = max(len(n) for n in results["workloads"])
    print(f"columnar batch-execution benchmark ({results['profile']}, "
          f"{results['differential_queries']} differential queries ok):")
    for name, row in results["workloads"].items():
        gate = "*" if row["gated"] else " "
        print(
            f" {gate} {name:<{width}}  row {row['row_ms']:9.3f} ms   "
            f"batch {row['batch_ms']:9.3f} ms   {row['speedup']:8.1f}x"
        )
    with open(args.output, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")

    if args.require_speedup is not None:
        failing = []
        for name, base_floor in GATED_WORKLOADS.items():
            floor = max(base_floor, args.require_speedup)
            speedup = results["workloads"][name]["speedup"]
            if speedup < floor:
                failing.append(f"{name} ({speedup}x < {floor}x)")
        if failing:
            print(f"FAIL: {failing} below floor", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
