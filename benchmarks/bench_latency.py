"""E4 — Response latency with the integrated caching strategy.

Paper claim: "An integrated caching strategy leads to an average
response latency of only a few milliseconds."

We measure the latency of one complete policy step — scoring every
candidate attribute over the live candidate set and choosing the next
question — on a large database, with and without the attribute-value
cache.  The cached path must stay in single-digit milliseconds.
"""

from __future__ import annotations

from repro.dataaware import (
    AttributeValueCache,
    CandidateSet,
    DataAwarePolicy,
    UserAwarenessModel,
)
from repro.datasets import MovieConfig, build_movie_database
from repro.db import StatisticsCatalog
from repro.eval import ResultTable

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from helpers import screening_lookup  # noqa: E402

LARGE = MovieConfig(
    seed=5,
    n_customers=300,
    n_movies=150,
    n_screenings=1500,
    n_reservations=200,
    n_actors=120,
    extra_dimensions=6,
    n_days=45,
)


def _policy_step(database, catalog, annotations, lookup, cache):
    candidates = CandidateSet.initial(
        database, catalog, lookup.table, shared_cache=cache
    )
    policy = DataAwarePolicy(
        lookup, UserAwarenessModel(annotations), StatisticsCatalog(database)
    )
    return policy.next_attribute(candidates, set())


def test_policy_step_latency_cached(benchmark):
    database, annotations = build_movie_database(LARGE)
    catalog, lookup = screening_lookup(database, annotations)
    cache = AttributeValueCache(database, catalog)
    # Warm the cache once (first conversation of the day).
    _policy_step(database, catalog, annotations, lookup, cache)

    result = benchmark(
        _policy_step, database, catalog, annotations, lookup, cache
    )
    assert result is not None
    mean_ms = benchmark.stats["mean"] * 1000.0
    table = ResultTable(
        "E4: data-aware policy step latency (1500 screenings, 6 joined "
        "dimensions)",
        ["variant", "mean_ms"],
    )
    table.add_row("cached", mean_ms)
    table.show()
    benchmark.extra_info["mean_ms"] = mean_ms
    # "average response latency of only a few milliseconds"
    assert mean_ms < 50.0, f"cached policy step took {mean_ms:.1f} ms"


def test_policy_step_latency_uncached(benchmark):
    database, annotations = build_movie_database(LARGE)
    catalog, lookup = screening_lookup(database, annotations)

    benchmark(_policy_step, database, catalog, annotations, lookup, None)
    mean_ms = benchmark.stats["mean"] * 1000.0
    benchmark.extra_info["mean_ms"] = mean_ms


def test_cache_speedup_report(benchmark):
    """Summarise the cached vs uncached difference in one table."""
    import time

    database, annotations = build_movie_database(LARGE)
    catalog, lookup = screening_lookup(database, annotations)
    cache = AttributeValueCache(database, catalog)
    _policy_step(database, catalog, annotations, lookup, cache)  # warm

    def timed(repeats, cache_arg):
        start = time.perf_counter()
        for __ in range(repeats):
            _policy_step(database, catalog, annotations, lookup, cache_arg)
        return (time.perf_counter() - start) / repeats * 1000.0

    cached_ms = timed(20, cache)
    uncached_ms = timed(3, None)
    table = ResultTable(
        "E4: cached vs uncached policy step",
        ["variant", "mean_ms"],
    )
    table.add_row("cached", cached_ms)
    table.add_row("uncached", uncached_ms)
    table.show()
    assert cached_ms < uncached_ms
    benchmark.extra_info["cached_ms"] = cached_ms
    benchmark.extra_info["uncached_ms"] = uncached_ms
    benchmark(lambda: _policy_step(database, catalog, annotations, lookup,
                                   cache))
