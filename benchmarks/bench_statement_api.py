"""Statement-API benchmark: prepare/execute vs the implicit plan-cache path.

The unified execution API's claim is that ``conn.prepare(...)`` +
``stmt.execute(**binds)`` amortises everything the implicit path pays
per call: ``Query.run`` re-builds the fluent query object and
re-fingerprints the whole spec tree on every execution just to find the
plan template the statement already holds a key for.  This benchmark
replays repeated-turn serving shapes — point probes, counts, the
booked-seats aggregate, a date-range scan — with fresh constants every
turn through both surfaces and gates the prepared path's speedup.

Before timing anything the two paths are differential-checked on a
randomised workload (>= 500 queries over random predicates, joins,
orderings, limits, counts and aggregates): ``PreparedStatement.execute``
must be byte-identical to ``Query.run`` / ``aggregate_query``.

Run standalone (CI runs the smoke profile and archives the JSON):

    PYTHONPATH=src python benchmarks/bench_statement_api.py --smoke \
        --output BENCH_statement_api.json
"""

from __future__ import annotations

import argparse
import datetime as dt
import json
import random
import statistics as stats
import sys
import time

from repro.datasets import MovieConfig, build_movie_database
from repro.db import Param, Query, api, select
from repro.db.aggregation import aggregate_query, avg, count, max_, min_, sum_
from repro.db.query import and_, eq, ge, gt, le, lt

# Workloads whose speedup the CI gate applies to: the plan-acquisition-
# bound shapes a serving turn issues (selective probes and aggregates,
# where per-call fingerprinting is a visible fraction of the latency).
GATED_WORKLOADS = ("point_unique", "point_count", "booked_sum")


# ---------------------------------------------------------------------------
# Differential check
# ---------------------------------------------------------------------------

def _random_case(rng: random.Random, config: MovieConfig):
    """One random (query_factory, statement, binds) triple.

    The factory builds the implicit-path ``Query`` with the constants
    inlined; the statement carries :class:`Param` placeholders bound by
    ``binds`` — both must produce identical rows.
    """
    table = rng.choice(("screening", "reservation", "movie"))
    mode = rng.choice(("rows", "rows", "rows", "count", "aggregate"))
    binds: dict = {}
    statement = (
        api.aggregate(
            table,
            n=count(),
            a=rng.choice(
                {
                    "screening": (sum_("price"), min_("capacity"), avg("price")),
                    "reservation": (sum_("no_tickets"), max_("no_tickets")),
                    "movie": (min_("year"), avg("duration_minutes")),
                }[table]
            ),
        )
        if mode == "aggregate"
        else select(table)
    )
    predicates = []

    def bind(name, value):
        binds[name] = value
        return Param(name)

    if table == "screening":
        shape = rng.randrange(4)
        if shape == 0:
            value = rng.randrange(1, config.n_movies + 1)
            predicates.append(("movie_id", "==", value, bind("m", value)))
        elif shape == 1:
            day = config.start_date + dt.timedelta(
                days=rng.randrange(config.n_days)
            )
            hi = day + dt.timedelta(days=rng.randrange(1, 4))
            predicates.append(("date", ">=", day, bind("lo", day)))
            predicates.append(("date", "<=", hi, bind("hi", hi)))
        elif shape == 2:
            room = f"room {chr(ord('A') + rng.randrange(5))}"
            predicates.append(("room", "==", room, bind("room", room)))
        order_by = rng.choice((None, "date", "price"))
    elif table == "reservation":
        if rng.random() < 0.7:
            value = rng.randrange(1, config.n_screenings + 1)
            predicates.append(("screening_id", "==", value, bind("s", value)))
        if rng.random() < 0.3:
            n = rng.randrange(1, 6)
            predicates.append(("no_tickets", ">", n, bind("n", n)))
        order_by = rng.choice((None, "no_tickets"))
    else:
        if rng.random() < 0.8:
            year = rng.randrange(1960, 2022)
            predicates.append(("year", ">=", year, bind("y", year)))
        order_by = rng.choice((None, "year", "title"))
    limit = rng.choice((None, None, 5, 20))

    ops = {"==": eq, ">=": ge, "<=": le, ">": gt, "<": lt}
    for column, op, __, param in predicates:
        statement.where(ops[op](column, param))
    if mode == "rows" and order_by is not None:
        statement.order_by(order_by, descending=rng.random() < 0.5)
    if mode != "aggregate" and limit is not None:
        statement.limit(limit)
    if mode == "count":
        statement.count()
    elif mode == "aggregate" and rng.random() < 0.6:
        statement.group_by(
            {
                "screening": "room",
                "reservation": "screening_id",
                "movie": "genre",
            }[table]
        )

    def query_factory():
        query = Query(table)
        for column, op, value, __ in predicates:
            query.where(ops[op](column, value))
        if mode == "rows" and order_by is not None:
            query.order_by(order_by, descending=statement._descending)
        if mode != "aggregate" and limit is not None:
            query.limit(limit)
        return query

    return mode, statement, binds, query_factory


def run_differential(
    database, config: MovieConfig, n_queries: int, seed: int = 71
) -> int:
    """Prepared vs implicit on ``n_queries`` random statements; returns
    the number checked (raises on the first mismatch)."""
    rng = random.Random(seed)
    connection = database.connect(name="differential")
    for i in range(n_queries):
        mode, statement, binds, query_factory = _random_case(rng, config)
        prepared = connection.prepare(statement)
        query = query_factory()
        if mode == "rows":
            expected = query.run(database)
            actual = prepared.execute(**binds).all()
        elif mode == "count":
            expected = query.count(database)
            actual = prepared.execute(**binds).scalar()
        else:
            expected = aggregate_query(
                database, query, statement._aggregates,
                list(statement._group_by) or None,
            )
            actual = prepared.execute(**binds).all()
        if actual != expected:
            raise AssertionError(
                f"differential case {i}: prepared result differs "
                f"(mode={mode}, table={statement.table}, binds={binds})"
            )
        if mode == "rows":
            # Re-execute the SAME prepared statement: bindings must not
            # leak between executions of one compiled template.
            if prepared.execute(**binds).all() != expected:
                raise AssertionError(
                    f"differential case {i}: repeated execute diverged"
                )
    return n_queries


# ---------------------------------------------------------------------------
# Timed workloads
# ---------------------------------------------------------------------------

def make_workloads(database, config: MovieConfig):
    """name -> (implicit_fn(turn), prepared_fn(turn)) pairs.

    Both sides receive the turn number and derive the same constants
    from it; the implicit side rebuilds its Query each call (exactly
    what callers of ``Query.run`` do), the prepared side binds into the
    statement compiled once up front.
    """
    connection = database.connect(name="bench")
    day0 = config.start_date

    point_unique = connection.prepare(
        select("screening").where(eq("screening_id", Param("s")))
    )
    point_eq = connection.prepare(
        select("screening").where(eq("movie_id", Param("m")))
    )
    point_count = connection.prepare(
        select("screening").where(eq("movie_id", Param("m"))).count()
    )
    booked = connection.prepare(
        api.aggregate("reservation", booked=sum_("no_tickets")).where(
            eq("screening_id", Param("s"))
        )
    )
    date_range = connection.prepare(
        select("screening").where(
            and_(ge("date", Param("lo")), le("date", Param("hi")))
        )
    )

    def movie_id(turn):
        return 1 + turn % config.n_movies

    def screening_id(turn):
        return 1 + turn % config.n_screenings

    def day(turn):
        return day0 + dt.timedelta(days=turn % config.n_days)

    return {
        "point_unique": (
            lambda t: Query("screening")
            .where(eq("screening_id", screening_id(t)))
            .run(database),
            lambda t: point_unique.execute(s=screening_id(t)).all(),
        ),
        "point_eq": (
            lambda t: Query("screening")
            .where(eq("movie_id", movie_id(t)))
            .run(database),
            lambda t: point_eq.execute(m=movie_id(t)).all(),
        ),
        "point_count": (
            lambda t: Query("screening")
            .where(eq("movie_id", movie_id(t)))
            .count(database),
            lambda t: point_count.execute(m=movie_id(t)).scalar(),
        ),
        "booked_sum": (
            lambda t: aggregate_query(
                database,
                Query("reservation").where(
                    eq("screening_id", screening_id(t))
                ),
                {"booked": sum_("no_tickets")},
            )[0]["booked"],
            lambda t: booked.execute(s=screening_id(t)).scalar(),
        ),
        "date_range": (
            lambda t: Query("screening")
            .where(
                and_(
                    ge("date", day(t)),
                    le("date", day(t) + dt.timedelta(days=1)),
                )
            )
            .run(database),
            lambda t: date_range.execute(
                lo=day(t), hi=day(t) + dt.timedelta(days=1)
            ).all(),
        ),
    }


def _time_turns(fn, min_seconds: float, max_turns: int) -> float:
    """Median wall-clock seconds per turn over repeated sweeps."""
    for turn in range(50):
        fn(turn)  # warm plan templates and statistics
    samples: list[float] = []
    budget_start = time.perf_counter()
    turn = 0
    while (
        len(samples) < 200
        or (
            time.perf_counter() - budget_start < min_seconds
            and len(samples) < max_turns
        )
    ):
        start = time.perf_counter()
        fn(turn)
        samples.append(time.perf_counter() - start)
        turn += 1
    return stats.median(samples)


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------

def run_benchmark(smoke: bool) -> dict:
    config = MovieConfig(
        n_screenings=3000 if smoke else 12000,
        n_movies=150 if smoke else 400,
        n_customers=400 if smoke else 1000,
        n_reservations=4000 if smoke else 16000,
        n_actors=80,
        n_days=30 if smoke else 60,
    )
    database, __ = build_movie_database(config)
    min_seconds = 0.15 if smoke else 0.5
    max_turns = 20000 if smoke else 100000

    checked = run_differential(
        database, config, n_queries=500 if smoke else 800
    )

    results: dict = {
        "benchmark": "statement_api",
        "profile": "smoke" if smoke else "full",
        "config": {
            "n_screenings": config.n_screenings,
            "n_movies": config.n_movies,
            "n_reservations": config.n_reservations,
        },
        "differential_queries": checked,
        "workloads": {},
    }
    for name, (implicit_fn, prepared_fn) in make_workloads(
        database, config
    ).items():
        implicit_s = _time_turns(implicit_fn, min_seconds, max_turns)
        prepared_s = _time_turns(prepared_fn, min_seconds, max_turns)
        results["workloads"][name] = {
            "implicit_us": round(implicit_s * 1e6, 3),
            "prepared_us": round(prepared_s * 1e6, 3),
            "speedup": round(implicit_s / prepared_s, 3)
            if prepared_s > 0 else None,
            "gated": name in GATED_WORKLOADS,
        }
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small, CI-sized database and time budget")
    parser.add_argument("--output", default="BENCH_statement_api.json",
                        metavar="PATH", help="where to write the JSON record")
    parser.add_argument(
        "--require-speedup", type=float, default=None, metavar="X",
        help="fail unless every gated workload's prepared path beats the "
        "implicit Query.run plan-cache path by at least this factor",
    )
    args = parser.parse_args(argv)

    results = run_benchmark(smoke=args.smoke)
    width = max(len(n) for n in results["workloads"])
    print(f"statement API benchmark ({results['profile']}, "
          f"{results['differential_queries']} differential queries ok):")
    for name, row in results["workloads"].items():
        gate = "*" if row["gated"] else " "
        print(
            f" {gate} {name:<{width}}  implicit {row['implicit_us']:9.2f} us"
            f"   prepared {row['prepared_us']:9.2f} us"
            f"   {row['speedup']:6.2f}x"
        )
    with open(args.output, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")

    if args.require_speedup is not None:
        failing = [
            name
            for name in GATED_WORKLOADS
            if results["workloads"][name]["speedup"] < args.require_speedup
        ]
        if failing:
            print(
                f"FAIL: {failing} below required {args.require_speedup}x",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
