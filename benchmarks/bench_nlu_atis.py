"""E1 — NLU on the ATIS-like corpus (Section 3 eval).

Paper claim: "While all baselines require manually crafted training
data, CAT only relies on synthesized training data, but still reaches
comparable performance for slot filling.  Moreover, on the intention
classification task, CAT even outperforms multiple baselines."

We train CAT's NLU models on synthesized data only (templates filled
from the flight database + paraphrasing) and the baselines on a manual
training budget drawn from the gold corpus; everyone is evaluated on
the gold test split.  The sweep over manual budgets shows the trade-off
the paper's claim lives on: gathering manual data is expensive, while
synthesis is free.
"""

from __future__ import annotations

from repro.datasets import (
    AtisConfig,
    build_flight_database,
    generate_cat_corpus,
    generate_gold_corpus,
)
from repro.eval import ResultTable
from repro.eval.metrics import evaluate_slot_model
from repro.nlu import (
    GazetteerSlotBaseline,
    IntentClassifier,
    KeywordIntentBaseline,
    MajorityIntentBaseline,
    NearestNeighborIntentBaseline,
    SlotTagger,
)
from repro.synthesis import NLUDataset

MANUAL_BUDGETS = [100, 300, 1200]


def _train_cat(cat_corpus):
    intent = IntentClassifier(epochs=40).fit(cat_corpus)
    slots = SlotTagger(epochs=6).fit(cat_corpus)
    return intent, slots


def test_nlu_atis(benchmark):
    config = AtisConfig()
    database = build_flight_database(config)
    gold = generate_gold_corpus(database, config)
    cat_corpus = generate_cat_corpus(database, config)
    gold_train_full, gold_test = gold.split(0.25)

    cat_intent, cat_slots = _train_cat(cat_corpus)
    cat_intent_acc = cat_intent.accuracy(gold_test)
    cat_slot_f1 = evaluate_slot_model(cat_slots, gold_test).f1

    table = ResultTable(
        "E1: intent accuracy / slot F1 on the gold ATIS-like test set "
        f"(CAT trained on {len(cat_corpus)} synthesized examples, zero "
        "manual)",
        ["model", "training data", "intent_acc", "slot_f1"],
    )
    table.add_row("CAT (synthesized)", f"{len(cat_corpus)} synth",
                  cat_intent_acc, cat_slot_f1)

    results = {"cat": {"intent": cat_intent_acc, "slot_f1": cat_slot_f1}}
    for budget in MANUAL_BUDGETS:
        manual = NLUDataset(gold_train_full.examples[:budget])
        majority = MajorityIntentBaseline().fit(manual)
        keyword = KeywordIntentBaseline().fit(manual)
        nearest = NearestNeighborIntentBaseline().fit(manual)
        logistic = IntentClassifier(epochs=40).fit(manual)
        gazetteer = GazetteerSlotBaseline().fit(manual)
        tagger = SlotTagger(epochs=6).fit(manual)
        rows = {
            "majority": (majority.accuracy(gold_test), None),
            "keyword-NB": (keyword.accuracy(gold_test), None),
            "1-NN": (nearest.accuracy(gold_test), None),
            "logistic": (logistic.accuracy(gold_test),
                         evaluate_slot_model(tagger, gold_test).f1),
            "gazetteer": (None, evaluate_slot_model(gazetteer, gold_test).f1),
        }
        for name, (acc, f1) in rows.items():
            table.add_row(
                f"{name}", f"{budget} manual",
                "-" if acc is None else acc,
                "-" if f1 is None else f1,
            )
        results[f"manual_{budget}"] = {
            name: {"intent": acc, "slot_f1": f1}
            for name, (acc, f1) in rows.items()
        }
    table.show()

    # Shape assertions: CAT beats the majority baseline clearly and beats
    # at least one *learned* manual baseline at the smallest budget.
    smallest = results[f"manual_{MANUAL_BUDGETS[0]}"]
    assert cat_intent_acc > smallest["majority"]["intent"] + 0.05
    learned_small = [
        smallest["keyword-NB"]["intent"],
        smallest["1-NN"]["intent"],
        smallest["logistic"]["intent"],
    ]
    assert cat_intent_acc > min(learned_small) - 0.02
    # Slot filling comparable: within 15 points of the small-budget
    # manually trained tagger, and above the small-budget gazetteer.
    assert cat_slot_f1 > smallest["gazetteer"]["slot_f1"] - 0.05
    assert cat_slot_f1 > smallest["logistic"]["slot_f1"] - 0.15

    benchmark.extra_info["results"] = results
    # Timed portion: one full parse path (intent + slots) per call.
    text = "show me flights from boston to denver on monday"
    benchmark(lambda: (cat_intent.predict(text), cat_slots.tag(text)))
