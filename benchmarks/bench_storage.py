"""Sealed-segment storage benchmark: analytic caches surviving writes.

Each table splits into an immutable *sealed segment* plus a small
mutable *delta* once compacted (``database.compact()``): writes land in
the delta only, so the expensive batch surfaces — grouped-aggregate
layouts, join bucket builds, per-column tallies — are memoised against
the sealed prefix and survive every commit, with only the delta merged
per query.  A flat (never-compacted) database drops those memos on each
write and rebuilds them from scratch on the next analytic query.

Before timing anything the two storage arms are differential-checked on
a randomised workload (>= 500 queries reusing the columnar bench's
generators — filters, ORs, IN-lists, joins, orderings, limits, grouped
aggregates, HAVING) with writer commits interleaved: every query must
produce byte-identical results on the sealed and the flat arm.

The timed section replays write-then-query *turns* (one committed
writer mutation, then one analytic query — the conversational-agent
shape this storage design exists for) against both arms; gated
workloads carry per-workload speedup floors and ``--require-speedup X``
raises every floor to at least ``X``.  A final restart section times
``load_incremental`` (sealed base image + delta-log replay) against a
full dataset synthesis and a format-v3 JSON load.

Run standalone (CI runs the smoke profile and archives the JSON):

    PYTHONPATH=src python benchmarks/bench_storage.py --smoke \
        --output BENCH_storage.json
"""

from __future__ import annotations

import argparse
import datetime as dt
import json
import os
import random
import statistics as stats
import sys
import tempfile
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_columnar import _random_aggregate, _random_query  # noqa: E402

from repro.datasets import MovieConfig, build_movie_database  # noqa: E402
from repro.db import (  # noqa: E402
    Query,
    and_,
    dump_database,
    dump_incremental,
    ge,
    le,
    load_database,
    load_incremental,
)
from repro.db.aggregation import aggregate_query, count, sum_  # noqa: E402
from repro.errors import DatabaseError  # noqa: E402

# Write-then-query turn workloads the CI gate applies to.  The win is
# cache *retention*: the flat arm re-groups / re-buckets the whole
# reservation table after every commit, the sealed arm merges a
# bounded delta into memos keyed to the sealed epoch.  Shapes whose
# per-query cost is dominated by shared output materialisation (a
# group per screening) are reported but ungated.
GATED_WORKLOADS = {
    "grouped_sum_turns": 3.0,
    "grouped_count_turns": 3.0,
    "join_turns": 3.0,
}

# Delta rows on the hot table before the sealed arm re-compacts mid-
# run — the same fold the serving tier's idle hook applies.
_RESEAL_THRESHOLD = 256


# ---------------------------------------------------------------------------
# Interleaved writer: identical committed mutations on every arm
# ---------------------------------------------------------------------------

class InterleavedWriter:
    """Deterministic FK-valid reservation mutations, applied to each
    arm in lockstep so their visible states never diverge."""

    def __init__(self, config: MovieConfig, seed: int = 97) -> None:
        self._rng = random.Random(seed)
        self._config = config
        self._next_id = config.n_reservations + 1
        self._live = set(range(1, config.n_reservations + 1))

    def _pick_live(self) -> int | None:
        rng = self._rng
        for __ in range(6):
            candidate = rng.randrange(1, self._next_id)
            if candidate in self._live:
                return candidate
        return None

    def apply(self, databases) -> str:
        """One committed mutation on every database; returns its kind."""
        rng = self._rng
        roll = rng.random()
        if roll < 0.6:
            reservation_id = self._next_id
            self._next_id += 1
            values = {
                "reservation_id": reservation_id,
                "customer_id": rng.randint(1, self._config.n_customers),
                "screening_id": rng.randint(1, self._config.n_screenings),
                "no_tickets": rng.randint(1, 6),
            }
            for database in databases:
                database.insert("reservation", dict(values))
            self._live.add(reservation_id)
            return "insert"
        target = self._pick_live()
        if target is None:
            return "noop"
        if roll < 0.85:
            tickets = rng.randint(1, 6)
            for database in databases:
                row_id = database.table("reservation").lookup(
                    "reservation_id", target
                )[0]
                database.update(
                    "reservation", row_id, {"no_tickets": tickets}
                )
            return "update"
        for database in databases:
            row_id = database.table("reservation").lookup(
                "reservation_id", target
            )[0]
            database.delete("reservation", row_id)
        self._live.discard(target)
        return "delete"


# ---------------------------------------------------------------------------
# Differential check: sealed arm vs flat arm, byte-identical
# ---------------------------------------------------------------------------

def _canonical(value) -> str:
    return json.dumps(value, default=str, sort_keys=True)


def run_differential(sealed_db, flat_db, config: MovieConfig,
                     n_queries: int, seed: int = 83) -> int:
    """Sealed vs flat storage on ``n_queries`` random queries with
    writer commits interleaved; returns the number checked (raises on
    the first mismatch)."""
    rng = random.Random(seed)
    writer = InterleavedWriter(config, seed=seed + 1)
    for i in range(n_queries):
        if rng.random() < 0.4:
            writer.apply((sealed_db, flat_db))
        if rng.random() < 0.05:
            sealed_db.compact()
        if rng.random() < 0.25:
            query, aggregates, group_by, having = _random_aggregate(
                rng, config
            )
            run = lambda database: aggregate_query(  # noqa: E731
                database, query, aggregates, group_by, having
            )
        else:
            query, kind = _random_query(rng, config)
            if kind == "count":
                run = lambda database: query.count(database)  # noqa: E731
            else:
                run = lambda database: query.run(database)  # noqa: E731
        results = []
        for database in (sealed_db, flat_db):
            try:
                results.append(run(database))
            except DatabaseError as exc:
                results.append(("error", type(exc).__name__, str(exc)))
        if (results[0] != results[1]
                or _canonical(results[0]) != _canonical(results[1])):
            raise AssertionError(
                f"differential query {i}: sealed result differs from "
                f"flat result (table={query.table})"
            )
    return n_queries


# ---------------------------------------------------------------------------
# Timed write-then-query turns
# ---------------------------------------------------------------------------

def make_workloads(config: MovieConfig):
    """``name -> turn callable``; one committed write + one query."""
    day = config.start_date + dt.timedelta(days=config.n_days // 2)
    week_end = day + dt.timedelta(days=6)

    def grouped_sum_turns(database, writer):
        # Low-cardinality grouping: the flat arm re-groups every
        # reservation per turn, both arms share only the small output.
        writer.apply((database,))
        return aggregate_query(
            database,
            Query("reservation"),
            {"booked": sum_("no_tickets")},
            ["customer_id"],
        )

    def grouped_count_turns(database, writer):
        writer.apply((database,))
        return aggregate_query(
            database, Query("reservation"), {"n": count()}, ["customer_id"]
        )

    def grouped_wide_turns(database, writer):
        # One group per screening: output materialisation (shared by
        # both arms) bounds the win — reported, not gated.
        writer.apply((database,))
        return aggregate_query(
            database,
            Query("reservation"),
            {"booked": sum_("no_tickets")},
            ["screening_id"],
        )

    def join_turns(database, writer):
        # A narrow screening window probing INTO the written-to
        # reservation table: the flat arm rebuilds the full bucket
        # index of reservation.screening_id each turn.
        writer.apply((database,))
        return (
            Query("screening")
            .where(and_(ge("date", day), le("date", week_end)))
            .join("screening_id", "reservation", "screening_id")
            .run(database)
        )

    return {
        "grouped_sum_turns": grouped_sum_turns,
        "grouped_count_turns": grouped_count_turns,
        "grouped_wide_turns": grouped_wide_turns,
        "join_turns": join_turns,
    }


def _quantiles(samples: list[float]) -> tuple[float, float]:
    ordered = sorted(samples)
    p50 = stats.median(ordered)
    p95 = ordered[min(len(ordered) - 1, int(round(0.95 * len(ordered))))]
    return p50, p95


def _time_turns(fn, database, writer, min_seconds: float,
                max_iterations: int) -> list[float]:
    """Per-turn wall-clock samples; reseals the sealed arm the way the
    serving tier's idle hook would once the delta grows."""
    fn(database, writer)  # warm caches (statistics, plan cache, memos)
    reservation = database.table("reservation")
    samples: list[float] = []
    budget_start = time.perf_counter()
    while (
        len(samples) < 9
        or (
            time.perf_counter() - budget_start < min_seconds
            and len(samples) < max_iterations
        )
    ):
        if (reservation.is_sealed
                and reservation.delta_rows >= _RESEAL_THRESHOLD):
            database.compact()
        start = time.perf_counter()
        fn(database, writer)
        samples.append(time.perf_counter() - start)
    return samples


# ---------------------------------------------------------------------------
# Restart latency: incremental restore vs synthesize vs v3 load
# ---------------------------------------------------------------------------

def measure_restart(config: MovieConfig, smoke: bool) -> dict:
    synth_start = time.perf_counter()
    database, __ = build_movie_database(config)
    synthesize_s = time.perf_counter() - synth_start
    database.compact()

    writer = InterleavedWriter(config, seed=211)
    with tempfile.TemporaryDirectory(prefix="repro-bench-storage-") as tmp:
        directory = os.path.join(tmp, "snapshot")
        dump_incremental(database, directory)
        delta_ops = 120 if smoke else 400
        for __ in range(delta_ops):
            writer.apply((database,))
        v3_path = os.path.join(tmp, "snapshot.json")
        dump_database(database, v3_path)

        iterations = 3 if smoke else 5
        incremental_samples = []
        for __ in range(iterations):
            start = time.perf_counter()
            restored = load_incremental(directory)
            incremental_samples.append(time.perf_counter() - start)
        v3_samples = []
        for __ in range(iterations):
            start = time.perf_counter()
            load_database(v3_path)
            v3_samples.append(time.perf_counter() - start)

    expected = len(database.table("reservation").row_ids())
    actual = len(restored.table("reservation").row_ids())
    if actual != expected:
        raise AssertionError(
            f"incremental restore lost rows: {actual} != {expected}"
        )
    incremental_s = stats.median(incremental_samples)
    v3_s = stats.median(v3_samples)
    return {
        "synthesize_ms": round(synthesize_s * 1000, 2),
        "load_incremental_ms": round(incremental_s * 1000, 2),
        "load_v3_ms": round(v3_s * 1000, 2),
        "delta_ops_replayed": delta_ops,
        "speedup_vs_synthesize": round(synthesize_s / incremental_s, 2),
    }


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------

def _make_config(smoke: bool) -> MovieConfig:
    # Few customers relative to reservations: grouped turns rebuild a
    # large table into a small output, isolating the retention cost.
    return MovieConfig(
        n_screenings=1500 if smoke else 6000,
        n_movies=150 if smoke else 400,
        n_customers=250 if smoke else 600,
        n_reservations=6000 if smoke else 24000,
        n_actors=80,
        n_days=30 if smoke else 60,
    )


def run_benchmark(smoke: bool) -> dict:
    config = _make_config(smoke)

    sealed_db, __ = build_movie_database(config)
    sealed_db.compact()
    flat_db, __ = build_movie_database(config)
    checked = run_differential(
        sealed_db, flat_db, config, n_queries=500 if smoke else 1000
    )

    min_seconds = 0.1 if smoke else 0.4
    max_iterations = 60 if smoke else 240
    results: dict = {
        "benchmark": "storage",
        "profile": "smoke" if smoke else "full",
        "config": {
            "n_screenings": config.n_screenings,
            "n_customers": config.n_customers,
            "n_reservations": config.n_reservations,
        },
        "differential_queries": checked,
        "workloads": {},
    }
    for name, fn in make_workloads(config).items():
        # Fresh arms per workload: each measures retention from the
        # same initial state, writer streams kept independent.
        sealed_db, __ = build_movie_database(config)
        sealed_db.compact()
        flat_db, __ = build_movie_database(config)
        sealed_samples = _time_turns(
            fn, sealed_db, InterleavedWriter(config, seed=7),
            min_seconds, max_iterations,
        )
        flat_samples = _time_turns(
            fn, flat_db, InterleavedWriter(config, seed=7),
            min_seconds, max_iterations,
        )
        sealed_p50, sealed_p95 = _quantiles(sealed_samples)
        flat_p50, flat_p95 = _quantiles(flat_samples)
        results["workloads"][name] = {
            "flat_p50_ms": round(flat_p50 * 1000, 4),
            "flat_p95_ms": round(flat_p95 * 1000, 4),
            "sealed_p50_ms": round(sealed_p50 * 1000, 4),
            "sealed_p95_ms": round(sealed_p95 * 1000, 4),
            "speedup": (
                round(flat_p50 / sealed_p50, 2) if sealed_p50 > 0 else None
            ),
            "turns": len(sealed_samples),
            "gated": name in GATED_WORKLOADS,
            "floor": GATED_WORKLOADS.get(name),
        }

    results["restart"] = measure_restart(config, smoke)
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small, CI-sized database and time budget")
    parser.add_argument("--output", default="BENCH_storage.json",
                        metavar="PATH", help="where to write the JSON record")
    parser.add_argument(
        "--require-speedup", type=float, nargs="?", const=3.0, default=None,
        metavar="X",
        help="fail unless every gated write-then-query workload beats "
        "the flat arm by its per-workload floor, raised to at least "
        "this factor (default 3)",
    )
    args = parser.parse_args(argv)

    results = run_benchmark(smoke=args.smoke)
    width = max(len(n) for n in results["workloads"])
    print(f"sealed-segment storage benchmark ({results['profile']}, "
          f"{results['differential_queries']} differential queries ok):")
    for name, row in results["workloads"].items():
        gate = "*" if row["gated"] else " "
        print(
            f" {gate} {name:<{width}}  "
            f"flat {row['flat_p50_ms']:9.3f} ms   "
            f"sealed {row['sealed_p50_ms']:9.3f} ms   "
            f"{row['speedup']:8.1f}x   "
            f"(p95 {row['flat_p95_ms']:.3f} / {row['sealed_p95_ms']:.3f} ms)"
        )
    restart = results["restart"]
    print(
        f"   restart: load_incremental {restart['load_incremental_ms']:.1f} ms"
        f"   v3 load {restart['load_v3_ms']:.1f} ms"
        f"   synthesize {restart['synthesize_ms']:.1f} ms"
        f"   ({restart['speedup_vs_synthesize']:.1f}x vs synthesize, "
        f"{restart['delta_ops_replayed']} delta ops replayed)"
    )
    with open(args.output, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")

    if args.require_speedup is not None:
        failing = []
        for name, base_floor in GATED_WORKLOADS.items():
            floor = max(base_floor, args.require_speedup)
            speedup = results["workloads"][name]["speedup"]
            if speedup < floor:
                failing.append(f"{name} ({speedup}x < {floor}x)")
        if failing:
            print(f"FAIL: {failing} below floor", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
