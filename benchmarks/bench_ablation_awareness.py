"""Ablation — the user-awareness factor of the attribute score.

The paper scores attributes by informativeness x awareness.  This bench
removes the awareness factor (pure entropy) and compares against the
full score, on a population of users who genuinely do not know the
technical attributes.  It also shows the *learning* effect: starting
from deliberately wrong priors, online observations recover most of the
lost efficiency.
"""

from __future__ import annotations

import sys

from repro.dataaware import DataAwarePolicy, UserAwarenessModel
from repro.datasets import MovieConfig, build_movie_database
from repro.db import ColumnRef, StatisticsCatalog
from repro.eval import PolicyExperiment, ResultTable

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from helpers import screening_lookup  # noqa: E402

CONFIG = MovieConfig(
    seed=13, n_customers=80, n_movies=60, n_screenings=400,
    n_reservations=50, n_actors=60, extra_dimensions=4, n_days=30,
)

EPISODES = 30


def _ground_truth_awareness(lookup):
    """What the simulated users actually know: titles and dates, not
    technical dimension values."""
    truth = {}
    for attribute in lookup.all_attributes():
        if attribute.column in ("title", "date", "start_time", "genre"):
            truth[attribute] = 0.9
        else:
            truth[attribute] = 0.1
    return truth


def test_ablation_awareness_factor(benchmark):
    database, annotations = build_movie_database(CONFIG)
    catalog, lookup = screening_lookup(database, annotations)
    truth = _ground_truth_awareness(lookup)
    experiment = PolicyExperiment(
        database, catalog, annotations, lookup, seed=37, awareness=truth
    )

    with_awareness = DataAwarePolicy(
        lookup, UserAwarenessModel(annotations), StatisticsCatalog(database),
        use_awareness=True,
    )
    without_awareness = DataAwarePolicy(
        lookup, UserAwarenessModel(annotations), StatisticsCatalog(database),
        use_awareness=False,
    )
    summary_with, __ = experiment.run(with_awareness, n_episodes=EPISODES)
    summary_without, __ = experiment.run(without_awareness,
                                         n_episodes=EPISODES)

    table = ResultTable(
        "Ablation: awareness factor (users know titles/dates, not "
        "technical attributes)",
        ["variant", "mean_turns", "success"],
    )
    table.add_row("entropy x awareness", summary_with.mean_turns,
                  summary_with.success_rate)
    table.add_row("entropy only", summary_without.mean_turns,
                  summary_without.success_rate)
    table.show()

    assert summary_with.mean_turns <= summary_without.mean_turns + 0.2
    benchmark.extra_info["with"] = summary_with.mean_turns
    benchmark.extra_info["without"] = summary_without.mean_turns
    benchmark(lambda: experiment.run(with_awareness, n_episodes=3))


def test_ablation_awareness_learning(benchmark):
    """Wrong priors + online learning: the Beta-Bernoulli updates recover."""
    database, annotations = build_movie_database(CONFIG)
    catalog, lookup = screening_lookup(database, annotations)
    truth = _ground_truth_awareness(lookup)

    # Invert the developer's priors: claim users know the dimensions but
    # not the titles (the worst-case annotation mistake).
    for attribute in lookup.all_attributes():
        annotations.annotate(
            attribute.table, attribute.column,
            awareness_prior=1.0 - truth[attribute],
        )

    experiment = PolicyExperiment(
        database, catalog, annotations, lookup, seed=41, awareness=truth
    )
    awareness = UserAwarenessModel(annotations, prior_strength=4.0)
    policy = DataAwarePolicy(
        lookup, awareness, StatisticsCatalog(database)
    )
    cold, __ = experiment.run(policy, n_episodes=15)
    # Keep playing: the same model accumulates observations.
    for __round in range(3):
        experiment.run(policy, n_episodes=15)
    warm, __ = experiment.run(policy, n_episodes=15)

    table = ResultTable(
        "Ablation: awareness learning with inverted priors",
        ["phase", "mean_turns"],
    )
    table.add_row("cold (wrong priors)", cold.mean_turns)
    table.add_row("after ~60 dialogues", warm.mean_turns)
    table.show()

    assert warm.mean_turns <= cold.mean_turns + 0.1
    benchmark.extra_info["cold"] = cold.mean_turns
    benchmark.extra_info["warm"] = warm.mean_turns
    benchmark(lambda: experiment.run(policy, n_episodes=3))
