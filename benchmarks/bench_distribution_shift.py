"""E3 — Adapting to data-distribution change at runtime (Section 4 eval).

Paper claim: the static strategy "will not adapt to data distribution
changes at runtime.  Additionally, it cannot react to systematic
problems in uniquely identifying entries of some tables (caused by data
characteristics like almost identical entries)."

Two shift scenarios:

1. **Date collapse** — the static policy is trained while screenings are
   spread over 45 days (date is the best discriminator).  Then a
   festival week is loaded: hundreds of new screenings on one single
   date, in the same rooms, at the same times.  The frozen static order
   keeps asking for the now-uninformative attributes; the data-aware
   policy recomputes entropy over the live candidates and re-routes.
2. **Near-duplicate customers** — family clusters sharing last name,
   city and street are inserted, degrading name-based identification.
"""

from __future__ import annotations

import datetime as dt
import random

from repro.annotation import TaskExtractor
from repro.dataaware import (
    DataAwarePolicy,
    StaticPolicy,
    UserAwarenessModel,
)
from repro.datasets import MovieConfig, build_movie_database, lexicons
from repro.db import Catalog, StatisticsCatalog
from repro.eval import PolicyExperiment, ResultTable


def _lookup(database, annotations, slot):
    catalog = Catalog(database)
    task = TaskExtractor(catalog, annotations).extract(
        database.procedures.get("ticket_reservation")
    )
    return catalog, task.lookup_for(slot)


def _inject_festival(database, n_screenings: int, seed: int = 5) -> None:
    """One festival date: many screenings, identical date/room/time."""
    rng = random.Random(seed)
    next_id = max(database.table("screening").column_values("screening_id")) + 1
    n_movies = database.count("movie")
    festival_date = dt.date(2022, 7, 1)
    for __ in range(n_screenings):
        database.insert(
            "screening",
            {
                "screening_id": next_id,
                "movie_id": rng.randint(1, n_movies),
                "date": festival_date,
                "start_time": dt.time(20, 0),
                "room": "festival tent",
                "price": 12.0,
                "capacity": 200,
            },
        )
        next_id += 1


def _inject_near_duplicates(database, n_families: int, seed: int = 5) -> None:
    rng = random.Random(seed)
    next_id = max(database.table("customer").column_values("customer_id")) + 1
    for __ in range(n_families):
        last = rng.choice(lexicons.LAST_NAMES)
        city = rng.choice(lexicons.CITIES)
        street = rng.choice(lexicons.STREETS)
        for __member in range(4):
            first = rng.choice(lexicons.FIRST_NAMES)
            database.insert(
                "customer",
                {
                    "customer_id": next_id,
                    "first_name": first,
                    "last_name": last,
                    "city": city,
                    "street": street,
                    "email": f"{first.lower()}.{last.lower()}.{next_id}"
                    f"@{rng.choice(lexicons.EMAIL_DOMAINS)}",
                    "birth_year": rng.randint(1950, 2004),
                },
            )
            next_id += 1


def _compare(database, catalog, annotations, lookup, static, episodes=30):
    experiment = PolicyExperiment(
        database, catalog, annotations, lookup, seed=23
    )
    data_aware = DataAwarePolicy(
        lookup, UserAwarenessModel(annotations), StatisticsCatalog(database)
    )
    aware_summary, __ = experiment.run(data_aware, n_episodes=episodes)
    static_summary, __ = experiment.run(static, n_episodes=episodes)
    return aware_summary, static_summary


def test_distribution_shift_screenings(benchmark):
    config = MovieConfig(seed=9, n_customers=80, n_movies=40,
                         n_screenings=150, n_reservations=40, n_days=45)
    database, annotations = build_movie_database(config)
    catalog, lookup = _lookup(database, annotations, "screening_id")

    static = StaticPolicy.train(lookup, database, catalog, annotations)
    before_aware, before_static = _compare(
        database, catalog, annotations, lookup, static
    )
    _inject_festival(database, n_screenings=450)
    after_aware, after_static = _compare(
        database, catalog, annotations, lookup, static
    )

    table = ResultTable(
        "E3a: mean turns to identify a screening, before/after a festival "
        "loads 450 same-date screenings (static trained before the shift)",
        ["phase", "data_aware", "static", "static_penalty"],
    )
    before_gap = before_static.mean_turns - before_aware.mean_turns
    after_gap = after_static.mean_turns - after_aware.mean_turns
    table.add_row("before shift", before_aware.mean_turns,
                  before_static.mean_turns, f"{before_gap:+.2f}")
    table.add_row("after shift", after_aware.mean_turns,
                  after_static.mean_turns, f"{after_gap:+.2f}")
    table.show()

    assert before_gap <= 1.0, "static should match data-aware pre-shift"
    assert after_gap > before_gap, (
        f"static should degrade after the shift (gap {before_gap:.2f} -> "
        f"{after_gap:.2f})"
    )
    assert after_aware.success_rate >= 0.9
    benchmark.extra_info["gaps"] = {"before": before_gap, "after": after_gap}
    benchmark(lambda: _compare(database, catalog, annotations, lookup,
                               static, episodes=3))


def test_distribution_shift_customers(benchmark):
    config = MovieConfig(seed=9, n_customers=150, n_movies=30,
                         n_screenings=80, n_reservations=40)
    database, annotations = build_movie_database(config)
    catalog, lookup = _lookup(database, annotations, "customer_id")

    static = StaticPolicy.train(lookup, database, catalog, annotations)
    before_aware, before_static = _compare(
        database, catalog, annotations, lookup, static
    )
    _inject_near_duplicates(database, n_families=120)
    after_aware, after_static = _compare(
        database, catalog, annotations, lookup, static
    )

    table = ResultTable(
        "E3b: mean turns to identify a customer, before/after near-"
        "duplicate families reach ~75% of the table",
        ["phase", "data_aware", "static", "static_penalty"],
    )
    before_gap = before_static.mean_turns - before_aware.mean_turns
    after_gap = after_static.mean_turns - after_aware.mean_turns
    table.add_row("before shift", before_aware.mean_turns,
                  before_static.mean_turns, f"{before_gap:+.2f}")
    table.add_row("after shift", after_aware.mean_turns,
                  after_static.mean_turns, f"{after_gap:+.2f}")
    table.show()

    assert before_gap <= 1.0
    assert after_gap >= before_gap - 0.05
    assert after_aware.success_rate >= 0.9
    benchmark.extra_info["gaps"] = {"before": before_gap, "after": after_gap}
    benchmark(lambda: _compare(database, catalog, annotations, lookup,
                               static, episodes=3))