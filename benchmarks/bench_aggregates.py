"""Aggregate pushdown benchmark: engine aggregation vs materialise-then-reduce.

Replays representative aggregate workloads (grouped SUM/COUNT/AVG,
multi-aggregate grouping, whole-table MIN/MAX and COUNT DISTINCT,
filtered grouping) against the cinema database, comparing the engine
path behind ``aggregate_query`` (streaming HashAggregate / index-only
IndexAggScan through the prepared-plan cache) with the pre-pushdown
baseline ``aggregate(query.run(db), ...)`` that materialises every
qualifying row and reduces in Python.

Before timing anything the two paths are differential-checked on a
randomised workload (>= 1000 queries over random predicates, joins,
group-bys and aggregate sets) — the speedups are for identical output.

A second section replays a repeated-turn serving workload (the same
query shapes with fresh constants every turn) and reports the
prepared-plan cache hit rate plus the per-plan cost of a cache hit vs a
cold planning pass.

Run standalone (CI runs the smoke profile and archives the JSON):

    PYTHONPATH=src python benchmarks/bench_aggregates.py --smoke \
        --output BENCH_aggregates.json
"""

from __future__ import annotations

import argparse
import datetime as dt
import json
import random
import statistics as stats
import sys
import time

from repro.datasets import MovieConfig, build_movie_database
from repro.db import Query, and_, eq, ge, in_, le
from repro.db.aggregation import (
    aggregate,
    aggregate_query,
    avg,
    count,
    count_distinct,
    max_,
    min_,
    sum_,
)
from repro.errors import QueryError

# Workloads whose speedup the CI gate applies to: the grouped and
# MIN/MAX aggregates the serving turns actually issue.
GATED_WORKLOADS = ("grouped_sum", "grouped_count", "min_max", "count_distinct")


# ---------------------------------------------------------------------------
# Baseline: the pre-pushdown aggregate_query (materialise then reduce)
# ---------------------------------------------------------------------------

def baseline_aggregate_query(database, query, aggregates, group_by=None):
    """``aggregate_query`` exactly as it worked before the pushdown."""
    return aggregate(query.run(database), aggregates, group_by)


# ---------------------------------------------------------------------------
# Differential check
# ---------------------------------------------------------------------------

def _random_query(rng: random.Random, config: MovieConfig):
    """A random aggregate query over the cinema schema."""
    table = rng.choice(("screening", "reservation", "movie"))
    query = Query(table)
    group_by: list[str] = []
    numeric = {
        "screening": ["price", "capacity", "movie_id"],
        "reservation": ["no_tickets", "screening_id", "customer_id"],
        "movie": ["year", "duration_minutes"],
    }[table]
    categorical = {
        "screening": ["room", "movie_id"],
        "reservation": ["screening_id", "customer_id"],
        "movie": ["genre", "year"],
    }[table]

    # Optional predicate: none / equality / range / IN-list.
    shape = rng.randrange(4)
    if table == "screening":
        day = config.start_date + dt.timedelta(days=rng.randrange(config.n_days))
        if shape == 1:
            query.where(eq("room", f"room {chr(ord('A') + rng.randrange(5))}"))
        elif shape == 2:
            query.where(and_(ge("date", day),
                             le("date", day + dt.timedelta(days=2))))
        elif shape == 3:
            ids = tuple(rng.randrange(1, config.n_movies + 1)
                        for __ in range(rng.randrange(1, 6)))
            query.where(in_("movie_id", ids))
    elif table == "reservation":
        if shape == 1:
            query.where(eq("screening_id",
                           rng.randrange(1, config.n_screenings + 1)))
        elif shape == 2:
            query.where(ge("no_tickets", rng.randrange(1, 6)))
        elif shape == 3:
            ids = tuple(rng.randrange(1, config.n_screenings + 1)
                        for __ in range(rng.randrange(1, 8)))
            query.where(in_("screening_id", ids))
    else:  # movie
        if shape == 1:
            query.where(ge("year", rng.randrange(1960, 2022)))
        elif shape == 2:
            query.where(le("duration_minutes", rng.randrange(90, 180)))
        elif shape == 3:
            query.where(in_("genre", ("drama", "comedy", "action")))

    # Occasionally join and group over the joined table's columns.
    if table == "screening" and rng.random() < 0.25:
        query.join("movie_id", "movie", "movie_id")
        group_by = [rng.choice(["movie.genre", "movie.year"])]
    elif rng.random() < 0.6:
        group_by = rng.sample(categorical, rng.randrange(1, 3))

    aggregates = {"n": count()}
    for i in range(rng.randrange(0, 3)):
        column = rng.choice(numeric)
        kind = rng.choice((sum_, avg, min_, max_, count_distinct))
        aggregates[f"a{i}"] = kind(column)
    if rng.random() < 0.1:
        del aggregates["n"]
        if not aggregates:
            aggregates = {"m": max_(rng.choice(numeric))}
    return query, aggregates, (group_by or None)


def run_differential(database, config: MovieConfig, n_queries: int, seed: int = 23) -> int:
    """Engine vs baseline on ``n_queries`` random aggregates; returns the
    number checked (raises on the first mismatch)."""
    rng = random.Random(seed)
    for i in range(n_queries):
        query, aggregates, group_by = _random_query(rng, config)
        try:
            expected = baseline_aggregate_query(
                database, query, aggregates, group_by
            )
        except QueryError:
            try:
                aggregate_query(database, query, aggregates, group_by)
            except QueryError:
                continue
            raise AssertionError(
                f"differential query {i}: baseline raised, engine did not"
            )
        actual = aggregate_query(database, query, aggregates, group_by)
        if actual != expected:
            raise AssertionError(
                f"differential query {i}: engine result differs "
                f"(query={query.table}, group_by={group_by}, "
                f"aggregates={list(aggregates)})"
            )
    return n_queries


# ---------------------------------------------------------------------------
# Timed workloads
# ---------------------------------------------------------------------------

def make_workloads(config: MovieConfig):
    day = config.start_date + dt.timedelta(days=config.n_days // 2)

    return {
        "grouped_sum": (
            Query("reservation"),
            {"booked": sum_("no_tickets")},
            ["screening_id"],
        ),
        "grouped_count": (
            Query("screening"),
            {"n": count()},
            ["movie_id"],
        ),
        "grouped_avg": (
            Query("screening"),
            {"mean_price": avg("price")},
            ["room"],
        ),
        "grouped_multi": (
            Query("screening"),
            {"n": count(), "lo": min_("price"), "hi": max_("price")},
            ["room"],
        ),
        "min_max": (
            Query("screening"),
            {"lo": min_("price"), "hi": max_("price")},
            None,
        ),
        "count_distinct": (
            Query("screening"),
            {"movies": count_distinct("movie_id")},
            None,
        ),
        "filtered_grouped": (
            Query("screening").where(
                and_(ge("date", day), le("date", day + dt.timedelta(days=3)))
            ),
            {"n": count(), "lo": min_("start_time")},
            ["movie_id"],
        ),
    }


def _time(fn, min_seconds: float, max_iterations: int) -> float:
    """Median wall-clock seconds per call."""
    fn()  # warm caches (statistics catalog, plan cache)
    samples: list[float] = []
    budget_start = time.perf_counter()
    while (
        len(samples) < 5
        or (
            time.perf_counter() - budget_start < min_seconds
            and len(samples) < max_iterations
        )
    ):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return stats.median(samples)


# ---------------------------------------------------------------------------
# Repeated-turn plan-cache benchmark
# ---------------------------------------------------------------------------

def run_plan_cache_benchmark(database, config: MovieConfig, turns: int) -> dict:
    """Replay the serving runtime's query shapes with fresh constants.

    Every simulated turn issues the per-turn query mix — a candidate
    refine probe, a count check, the booked-seats aggregate and a range
    scan — with turn-specific constants.  With the prepared-plan cache
    each *shape* compiles once; every later turn binds constants into
    the cached template.
    """
    cache = database.plan_cache
    hits_before, misses_before = cache.hits, cache.misses

    def one_turn(turn: int) -> None:
        movie_id = 1 + turn % config.n_movies
        screening_id = 1 + turn % config.n_screenings
        day = config.start_date + dt.timedelta(days=turn % config.n_days)
        Query("screening").where(eq("movie_id", movie_id)).run(database)
        Query("screening").where(eq("movie_id", movie_id)).count(database)
        aggregate_query(
            database,
            Query("reservation").where(eq("screening_id", screening_id)),
            {"booked": sum_("no_tickets")},
        )
        Query("screening").where(
            and_(ge("date", day), le("date", day + dt.timedelta(days=1)))
        ).run(database)

    started = time.perf_counter()
    for turn in range(turns):
        one_turn(turn)
    elapsed = time.perf_counter() - started

    hits = cache.hits - hits_before
    misses = cache.misses - misses_before
    lookups = hits + misses

    # Plan-acquisition cost: bind-from-cache vs a cold planning pass.
    from repro.db.engine import plan_query

    spec = Query("screening").where(eq("movie_id", 1)).compile()
    cached_s = _time(lambda: database.plan_cache.plan(spec), 0.05, 2000)
    direct_s = _time(lambda: plan_query(database, spec), 0.05, 2000)

    return {
        "turns": turns,
        "queries": turns * 4,
        "lookups": lookups,
        "hits": hits,
        "misses": misses,
        "hit_rate": round(hits / lookups, 4) if lookups else None,
        "turn_us": round(elapsed / turns * 1e6, 2),
        "cached_plan_us": round(cached_s * 1e6, 2),
        "direct_plan_us": round(direct_s * 1e6, 2),
    }


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------

def run_benchmark(smoke: bool) -> dict:
    config = MovieConfig(
        n_screenings=3000 if smoke else 12000,
        n_movies=150 if smoke else 400,
        n_customers=400 if smoke else 1000,
        n_reservations=4000 if smoke else 16000,
        n_actors=80,
        n_days=30 if smoke else 60,
    )
    database, __ = build_movie_database(config)
    min_seconds = 0.1 if smoke else 0.4
    max_iterations = 50 if smoke else 200

    checked = run_differential(
        database, config, n_queries=1000 if smoke else 1500
    )

    results: dict = {
        "benchmark": "aggregates",
        "profile": "smoke" if smoke else "full",
        "config": {
            "n_screenings": config.n_screenings,
            "n_movies": config.n_movies,
            "n_reservations": config.n_reservations,
        },
        "differential_queries": checked,
        "workloads": {},
    }
    for name, (query, aggregates, group_by) in make_workloads(config).items():
        baseline_result = baseline_aggregate_query(
            database, query, aggregates, group_by
        )
        engine_result = aggregate_query(database, query, aggregates, group_by)
        if baseline_result != engine_result:
            raise AssertionError(
                f"workload {name!r}: engine result differs from baseline"
            )
        baseline_s = _time(
            lambda: baseline_aggregate_query(
                database, query, aggregates, group_by
            ),
            min_seconds, max_iterations,
        )
        engine_s = _time(
            lambda: aggregate_query(database, query, aggregates, group_by),
            min_seconds, max_iterations,
        )
        results["workloads"][name] = {
            "baseline_ms": round(baseline_s * 1000, 4),
            "engine_ms": round(engine_s * 1000, 4),
            "speedup": round(baseline_s / engine_s, 2) if engine_s > 0 else None,
            "groups": len(baseline_result),
            "gated": name in GATED_WORKLOADS,
        }

    results["plan_cache"] = run_plan_cache_benchmark(
        database, config, turns=300 if smoke else 1000
    )
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small, CI-sized database and time budget")
    parser.add_argument("--output", default="BENCH_aggregates.json",
                        metavar="PATH", help="where to write the JSON record")
    parser.add_argument(
        "--require-speedup", type=float, default=None, metavar="X",
        help="fail unless every gated workload (grouped + MIN/MAX) beats "
        "the materialise-then-reduce baseline by at least this factor",
    )
    parser.add_argument(
        "--require-hit-rate", type=float, default=None, metavar="R",
        help="fail unless the repeated-turn plan-cache hit rate reaches R",
    )
    args = parser.parse_args(argv)

    results = run_benchmark(smoke=args.smoke)
    width = max(len(n) for n in results["workloads"])
    print(f"aggregate pushdown benchmark ({results['profile']}, "
          f"{results['differential_queries']} differential queries ok):")
    for name, row in results["workloads"].items():
        gate = "*" if row["gated"] else " "
        print(
            f" {gate} {name:<{width}}  baseline {row['baseline_ms']:9.3f} ms   "
            f"engine {row['engine_ms']:9.3f} ms   {row['speedup']:8.1f}x"
        )
    pc = results["plan_cache"]
    print(
        f"  plan cache: {pc['hits']}/{pc['lookups']} hits "
        f"({pc['hit_rate']:.1%}) over {pc['turns']} turns; "
        f"cached plan {pc['cached_plan_us']:.1f}us vs "
        f"cold plan {pc['direct_plan_us']:.1f}us"
    )
    with open(args.output, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")

    status = 0
    if args.require_speedup is not None:
        failing = [
            name
            for name in GATED_WORKLOADS
            if results["workloads"][name]["speedup"] < args.require_speedup
        ]
        if failing:
            print(
                f"FAIL: {failing} below required {args.require_speedup}x",
                file=sys.stderr,
            )
            status = 1
    if args.require_hit_rate is not None:
        if pc["hit_rate"] is None or pc["hit_rate"] < args.require_hit_rate:
            print(
                f"FAIL: plan-cache hit rate {pc['hit_rate']} below "
                f"required {args.require_hit_rate}",
                file=sys.stderr,
            )
            status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
