"""DM training from self-play: held-out next-action accuracy vs volume.

Supports the Section 3 pipeline: the high-level dialogue-flow model is
trained purely on synthesized self-play.  We report held-out next-action
accuracy as the number of synthesized flows grows (the paper's premise:
enough useful DM data can be synthesized for free).
"""

from __future__ import annotations

from repro.annotation import TaskExtractor
from repro.datasets import MovieConfig, build_movie_database
from repro.db import Catalog
from repro.dialogue import NextActionModel
from repro.eval import ResultTable
from repro.synthesis import SelfPlayConfig, SelfPlaySimulator


def test_dm_accuracy_vs_flow_volume(benchmark):
    database, annotations = build_movie_database(MovieConfig())
    tasks = TaskExtractor(Catalog(database), annotations).extract_all()
    test_flows = SelfPlaySimulator(
        tasks, SelfPlayConfig(n_flows=150, seed=999)
    ).run()

    table = ResultTable(
        "DM: held-out next-action accuracy vs synthesized flow volume",
        ["n_flows", "accuracy"],
    )
    accuracies = {}
    for n_flows in (10, 50, 200, 800):
        train = SelfPlaySimulator(
            tasks, SelfPlayConfig(n_flows=n_flows, seed=1)
        ).run()
        model = NextActionModel().fit(train)
        accuracy = model.evaluate(test_flows)
        table.add_row(n_flows, accuracy)
        accuracies[n_flows] = accuracy
    table.show()

    assert accuracies[800] >= accuracies[10]
    assert accuracies[800] > 0.8
    benchmark.extra_info["accuracies"] = {
        str(k): v for k, v in accuracies.items()
    }

    train = SelfPlaySimulator(tasks, SelfPlayConfig(n_flows=200, seed=1)).run()
    benchmark(lambda: NextActionModel().fit(train))
