"""Query engine benchmark: planned execution vs the seed scan path.

Replays representative workloads (point lookup, selective range scans,
range + ORDER BY + LIMIT, COUNT(*), selective range + join) against the
cinema database, comparing the cost-based engine behind ``Query.run()``
with a faithful replica of the seed implementation (equality-index
pre-selection, join-then-filter, full sort).  Results verify equality on
every workload before timing, so the speedups are for identical output.

Run standalone (CI runs the smoke profile and archives the JSON):

    PYTHONPATH=src python benchmarks/bench_query_engine.py --smoke \
        --output BENCH_query_engine.json
"""

from __future__ import annotations

import argparse
import datetime as dt
import json
import statistics as stats
import sys
import time

from repro.datasets import MovieConfig, build_movie_database
from repro.db import Query, and_, eq, ge, le
from repro.db.table import Row


# ---------------------------------------------------------------------------
# The seed execution path, replicated for an apples-to-apples baseline
# ---------------------------------------------------------------------------

def seed_run(query: Query, database) -> list[Row]:
    """Execute ``query`` exactly as the pre-engine ``Query.run()`` did."""
    table = database.table(query.table)
    bindings = query._predicate.equality_bindings()
    best = None
    for column, value in bindings.items():
        if not table.schema.has_column(column) or not table.has_index(column):
            continue
        try:
            ids = table.lookup(column, value)
        except Exception:
            continue
        if best is None or len(ids) < len(best):
            best = ids
    row_ids = best if best is not None else table.row_ids()
    rows = [table.get(rid) for rid in row_ids]
    for column, table_name, target_column in query._joins:
        other = database.table(table_name)
        joined: list[Row] = []
        for row in rows:
            key = row.get(column)
            if key is None:
                continue
            for rid in other.lookup(target_column, key):
                match = other.get(rid)
                widened = dict(row)
                for other_col, value in match.items():
                    widened[f"{table_name}.{other_col}"] = value
                joined.append(widened)
        rows = joined
    rows = [row for row in rows if query._predicate.matches(row)]
    if query._order_by is not None:
        rows.sort(
            key=lambda r: (r[query._order_by] is None, r[query._order_by]),
            reverse=query._descending,
        )
    if query._limit is not None:
        rows = rows[: query._limit]
    if query._projection is not None:
        rows = [{c: row[c] for c in query._projection} for row in rows]
    return rows


def seed_count(query: Query, database) -> int:
    return len(seed_run(query, database))


# ---------------------------------------------------------------------------
# Workloads
# ---------------------------------------------------------------------------

def make_workloads(config: MovieConfig):
    """``name -> (query factory, runner pair)`` over the cinema schema."""
    day = config.start_date + dt.timedelta(days=config.n_days // 2)
    one_day = and_(ge("date", day), le("date", day))

    def q_point():
        return Query("screening").where(eq("screening_id", config.n_screenings // 2))

    def q_range():
        return Query("screening").where(one_day)

    def q_range_order_limit():
        return (
            Query("screening")
            .where(and_(ge("date", day), le("date", day + dt.timedelta(days=2))))
            .order_by("date")
            .limit(10)
        )

    def q_count_range():
        return Query("screening").where(one_day)

    def q_range_join():
        return (
            Query("screening")
            .where(one_day)
            .join("movie_id", "movie", "movie_id")
        )

    return {
        "point_lookup": (q_point, "rows"),
        "selective_range": (q_range, "rows"),
        "range_order_limit": (q_range_order_limit, "rows"),
        "count_range": (q_count_range, "count"),
        "selective_range_join": (q_range_join, "rows"),
    }


# ---------------------------------------------------------------------------
# Timing
# ---------------------------------------------------------------------------

def _time(fn, min_seconds: float, max_iterations: int) -> float:
    """Median wall-clock seconds per call."""
    fn()  # warm caches (statistics catalog, probe maps)
    samples: list[float] = []
    budget_start = time.perf_counter()
    while (
        len(samples) < 5
        or (
            time.perf_counter() - budget_start < min_seconds
            and len(samples) < max_iterations
        )
    ):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return stats.median(samples)


def run_benchmark(smoke: bool) -> dict:
    config = MovieConfig(
        n_screenings=3000 if smoke else 12000,
        n_movies=150 if smoke else 400,
        n_customers=400 if smoke else 1000,
        n_reservations=1000 if smoke else 4000,
        n_actors=80,
        n_days=30 if smoke else 60,
    )
    database, __ = build_movie_database(config)
    min_seconds = 0.1 if smoke else 0.4
    max_iterations = 50 if smoke else 200

    results: dict = {
        "benchmark": "query_engine",
        "profile": "smoke" if smoke else "full",
        "config": {
            "n_screenings": config.n_screenings,
            "n_movies": config.n_movies,
            "n_days": config.n_days,
        },
        "workloads": {},
    }
    for name, (factory, mode) in make_workloads(config).items():
        query = factory()
        if mode == "count":
            seed_result = seed_count(query, database)
            engine_result = query.count(database)
            seed_fn = lambda: seed_count(factory(), database)  # noqa: E731
            engine_fn = lambda: factory().count(database)  # noqa: E731
        else:
            seed_result = seed_run(query, database)
            engine_result = query.run(database)
            seed_fn = lambda: seed_run(factory(), database)  # noqa: E731
            engine_fn = lambda: factory().run(database)  # noqa: E731
        if seed_result != engine_result:
            raise AssertionError(
                f"workload {name!r}: engine result differs from seed path"
            )
        seed_s = _time(seed_fn, min_seconds, max_iterations)
        engine_s = _time(engine_fn, min_seconds, max_iterations)
        results["workloads"][name] = {
            "seed_ms": round(seed_s * 1000, 4),
            "engine_ms": round(engine_s * 1000, 4),
            "speedup": round(seed_s / engine_s, 2) if engine_s > 0 else None,
            "result_size": (
                seed_result if mode == "count" else len(seed_result)
            ),
        }
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small, CI-sized database and time budget")
    parser.add_argument("--output", default="BENCH_query_engine.json",
                        metavar="PATH", help="where to write the JSON record")
    parser.add_argument(
        "--require-speedup", type=float, default=None, metavar="X",
        help="fail unless the selective range/join workloads beat the seed "
        "path by at least this factor",
    )
    args = parser.parse_args(argv)

    results = run_benchmark(smoke=args.smoke)
    table_width = max(len(n) for n in results["workloads"])
    print(f"query engine benchmark ({results['profile']}):")
    for name, row in results["workloads"].items():
        print(
            f"  {name:<{table_width}}  seed {row['seed_ms']:9.3f} ms   "
            f"engine {row['engine_ms']:9.3f} ms   {row['speedup']:8.1f}x"
        )
    with open(args.output, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")

    if args.require_speedup is not None:
        gated = ["selective_range", "range_order_limit", "selective_range_join"]
        failing = [
            name
            for name in gated
            if results["workloads"][name]["speedup"] < args.require_speedup
        ]
        if failing:
            print(
                f"FAIL: {failing} below required {args.require_speedup}x",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
