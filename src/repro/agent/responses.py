"""Agent-side natural-language generation.

Simple, reliable template realisation of agent actions — production
task-oriented systems almost universally template the system side, and
the paper's Figure 1 shows exactly this style of agent utterance.
"""

from __future__ import annotations

from typing import Any

from repro.annotation import SchemaAnnotations, Task
from repro.db.catalog import ColumnRef
from repro.db.database import Database
from repro.db.types import render

__all__ = ["Responder"]


class Responder:
    """Realises agent actions as text."""

    def __init__(self, database: Database, annotations: SchemaAnnotations) -> None:
        self._database = database
        self._annotations = annotations

    # ------------------------------------------------------------------
    def greet(self) -> str:
        return "Hello! How can I help you?"

    def goodbye(self) -> str:
        return "Goodbye! Have a nice day."

    def acknowledge_abort(self) -> str:
        return "Alright, I cancelled that. Anything else I can do for you?"

    def rephrase(self) -> str:
        return "Sorry, I did not understand that. Could you rephrase?"

    def ask_attribute(self, attribute: ColumnRef) -> str:
        display = self._annotations.display_name(attribute.table, attribute.column)
        return f"Can you tell me the {display}?"

    def ask_slot(self, display_name: str) -> str:
        return f"How many {display_name}?" if "number" in display_name or \
            "amount" in display_name else f"What is the {display_name}?"

    def corrected(self, raw: str, value: str) -> str:
        return f"I assume you mean '{value}' (you wrote '{raw}')."

    def identified(self, entity: str, row: dict[str, Any]) -> str:
        summary = self.describe_row(entity, row)
        return f"Got it — I found the {entity}: {summary}."

    def no_match(self, entity: str) -> str:
        return (
            f"I could not find any {entity} matching that information. "
            f"Let us start over with the {entity}."
        )

    def propose_choices(self, entity: str, rows: list[dict[str, Any]]) -> str:
        lines = [f"I found {len(rows)} matching {entity}s. Which one do you mean?"]
        for index, row in enumerate(rows, start=1):
            lines.append(f"  {index}. {self.describe_row(entity, row)}")
        return "\n".join(lines)

    def confirm(self, task: Task, summary: dict[str, str]) -> str:
        parts = ", ".join(f"{name}: {value}" for name, value in summary.items())
        return (
            f"To summarise, you want to {task.description} ({parts}). "
            f"Shall I go ahead?"
        )

    def success(self, task: Task, value: Any) -> str:
        if isinstance(value, dict):
            details = ", ".join(f"{k}: {v}" for k, v in value.items())
            return f"Done! I completed '{task.description}' ({details})."
        if isinstance(value, list):
            return self.listing(value)
        return f"Done! I completed '{task.description}'."

    def listing(self, rows: list[dict[str, Any]]) -> str:
        if not rows:
            return "I found no matching entries."
        lines = [f"I found {len(rows)} entries:"]
        for row in rows[:10]:
            rendered = ", ".join(f"{k}={_render_value(v)}" for k, v in row.items())
            lines.append(f"  - {rendered}")
        if len(rows) > 10:
            lines.append(f"  ... and {len(rows) - 10} more.")
        return "\n".join(lines)

    def failure(self, reason: str) -> str:
        return f"I am sorry, that did not work: {reason}"

    def restart(self) -> str:
        return "No problem, let us correct that. We will go through it again."

    def choice_out_of_range(self, n: int) -> str:
        return f"Please pick a number between 1 and {n}."

    # ------------------------------------------------------------------
    def describe_row(self, table: str, row: dict[str, Any]) -> str:
        """Human-readable one-line description of an entity row."""
        schema = self._database.schema.table(table)
        parts: list[str] = []
        for column in schema.columns:
            if column.name == schema.primary_key:
                continue
            if schema.foreign_key_for(column.name) is not None:
                described = self._describe_reference(schema, column.name, row)
                if described:
                    parts.append(described)
                continue
            value = row.get(column.name)
            if value is None:
                continue
            display = self._annotations.display_name(table, column.name)
            parts.append(f"{display} {_render_value(value)}")
            if len(parts) >= 5:
                break
        return ", ".join(parts) if parts else f"{table} #{row.get(schema.primary_key)}"

    def _describe_reference(self, schema, column: str, row: dict[str, Any]) -> str:
        fk = schema.foreign_key_for(column)
        assert fk is not None
        value = row.get(column)
        if value is None:
            return ""
        target = self._database.find_one(fk.target_table, fk.target_column, value)
        if target is None:
            return ""
        # Use the first text column of the referenced row as its label.
        for key, item in target.items():
            if isinstance(item, str):
                return f"{fk.target_table} '{item}'"
        return ""


def _render_value(value: Any) -> str:
    from repro.db.types import DataType

    if isinstance(value, str):
        return value
    return render(value, DataType.TEXT)
