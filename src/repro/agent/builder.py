"""The CAT facade: synthesize a conversational agent for a database.

This is the end-to-end entry point mirroring the demo workflow of
Section 5:

1. annotate the schema (or accept the defaults),
2. register a few NL templates per intent,
3. ``synthesize()`` — extract tasks, generate NLU + DM training data,
   train the models, and wire the runtime agent to the database.

>>> cat = CAT(database, annotations)                     # doctest: +SKIP
>>> cat.add_templates("inform", ["the title is {movie_title}"])
>>> agent = cat.synthesize()
>>> agent.respond("i want to buy 4 tickets").text
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.agent.agent import ConversationalAgent
from repro.agent.artifacts import AgentArtifacts
from repro.annotation import SchemaAnnotations, Task, TaskExtractor
from repro.db.catalog import Catalog
from repro.db.database import Database
from repro.dialogue.policy import NextActionModel
from repro.errors import SynthesisError
from repro.nlu.pipeline import NLUPipeline
from repro.synthesis import (
    FlowDataset,
    GenerationConfig,
    NLUDataset,
    TrainingDataGenerator,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serving.runtime import AgentRuntime

__all__ = ["SynthesisReport", "CAT"]


@dataclass(frozen=True)
class SynthesisReport:
    """What was generated and trained during synthesis."""

    n_tasks: int
    n_templates: int
    n_nlu_examples: int
    n_flows: int
    intents: tuple[str, ...]
    agent_actions: tuple[str, ...]


class CAT:
    """Synthesizes data-aware conversational agents for OLTP databases."""

    def __init__(
        self,
        database: Database,
        annotations: SchemaAnnotations | None = None,
        generation: GenerationConfig | None = None,
        max_join_hops: int = 2,
        choice_list_size: int = 3,
        reference_date=None,
    ) -> None:
        self.reference_date = reference_date
        self.database = database
        self.catalog = Catalog(database)
        self.annotations = annotations or SchemaAnnotations(database)
        self.tasks: list[Task] = TaskExtractor(
            self.catalog, self.annotations, max_join_hops
        ).extract_all()
        if not self.tasks:
            raise SynthesisError(
                "the database defines no stored procedures to build tasks from"
            )
        self.generator = TrainingDataGenerator(
            self.database, self.catalog, self.tasks, generation
        )
        self._choice_list_size = choice_list_size
        self.nlu_data: NLUDataset | None = None
        self.flow_data: FlowDataset | None = None

    # ------------------------------------------------------------------
    # Developer input (the GUI workflow of Figure 4)
    # ------------------------------------------------------------------
    def add_templates(self, intent: str, texts: list[str]) -> None:
        """Register developer templates for one intent."""
        self.generator.add_templates(intent, texts)

    def add_template_catalog(self, catalog: dict[str, list[str]]) -> None:
        """Register a whole ``intent -> templates`` dictionary."""
        for intent, texts in catalog.items():
            self.add_templates(intent, texts)

    # ------------------------------------------------------------------
    def synthesize_artifacts(self) -> AgentArtifacts:
        """Generate training data, train all models, bundle the results.

        The returned :class:`AgentArtifacts` is immutable and shared: one
        bundle can back any number of concurrent conversations (see
        :class:`repro.serving.AgentRuntime`).
        """
        self.nlu_data = self.generator.generate_nlu()
        self.flow_data = self.generator.generate_flows()
        nlu = NLUPipeline(
            self.database,
            self.generator.vocabulary,
            reference_date=self.reference_date,
        )
        nlu.train(self.nlu_data)
        dm_model = NextActionModel().fit(self.flow_data)
        return AgentArtifacts.build(
            database=self.database,
            catalog=self.catalog,
            annotations=self.annotations,
            tasks=self.tasks,
            nlu=nlu,
            dm_model=dm_model,
            vocabulary=self.generator.vocabulary,
            choice_list_size=self._choice_list_size,
        )

    def synthesize(self) -> ConversationalAgent:
        """Synthesize and wrap the artifacts in a single-session agent."""
        return ConversationalAgent(self.database, self.synthesize_artifacts())

    def synthesize_runtime(self, **runtime_options) -> "AgentRuntime":
        """Synthesize and return a concurrent multi-session runtime.

        Keyword options are forwarded to
        :class:`~repro.serving.runtime.AgentRuntime` (``session_ttl``,
        ``max_sessions``, ...).
        """
        from repro.serving.runtime import AgentRuntime

        return AgentRuntime(
            self.database, self.synthesize_artifacts(), **runtime_options
        )

    def report(self) -> SynthesisReport:
        """Summary of the last synthesis run."""
        if self.nlu_data is None or self.flow_data is None:
            raise SynthesisError("synthesize() has not been run yet")
        return SynthesisReport(
            n_tasks=len(self.tasks),
            n_templates=len(self.generator.library),
            n_nlu_examples=len(self.nlu_data),
            n_flows=len(self.flow_data),
            intents=tuple(self.nlu_data.intents()),
            agent_actions=tuple(self.flow_data.agent_actions()),
        )
