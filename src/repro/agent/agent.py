"""The conversational agent runtime: NLU + DM + data-aware policy + DB.

One :meth:`ConversationalAgent.respond` call processes a user utterance
end to end: parse (intent + slots + entity linking), update the dialogue
state, let the learned DM propose the next high-level action within the
legal-action guard rails, drive the data-aware identification loop for
entity slots, and finally execute the transaction against the database.

The agent itself is *stateless across conversations*: everything
synthesis produced lives in the shared, read-only
:class:`~repro.agent.artifacts.AgentArtifacts` bundle, and everything a
single conversation mutates lives in a
:class:`~repro.dialogue.context.ConversationContext` that ``respond``
threads explicitly.  One agent can therefore serve many concurrent
conversations (see :mod:`repro.serving`); for the classic single-session
API it keeps a default context, so ``agent.respond("hi")`` and
``agent.state`` keep working unchanged.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any

from repro.agent.artifacts import AgentArtifacts
from repro.agent.executor import TransactionExecutor
from repro.agent.responses import Responder
from repro.annotation import SchemaAnnotations, SlotSpec, Task
from repro.dataaware import (
    CandidateSet,
    DataAwarePolicy,
    IdentificationSession,
    IdentificationStatus,
)
from repro.db.catalog import Catalog, ColumnRef
from repro.db.database import Database
from repro.db.procedures import ProcedureResult
from repro.db.statistics import StatisticsCatalog
from repro.dialogue import (
    ConversationContext,
    DialogueManager,
    Phase,
    acts,
)
from repro.dialogue.policy import NextActionModel
from repro.errors import DialogueError
from repro.nlu.entity_linking import LinkedValue
from repro.nlu.pipeline import FALLBACK_INTENT, NLUPipeline, NLUResult
from repro.synthesis.templates import SlotVocabulary

__all__ = ["AgentReply", "ConversationalAgent"]

_ORDINALS = {
    "first": 1, "second": 2, "third": 3, "fourth": 4, "fifth": 5,
    "sixth": 6, "seventh": 7, "eighth": 8, "ninth": 9, "tenth": 10,
}


@dataclass(frozen=True)
class AgentReply:
    """The agent's reaction to one user utterance."""

    texts: tuple[str, ...]
    executed: ProcedureResult | None = None
    nlu: NLUResult | None = None

    @property
    def text(self) -> str:
        return "\n".join(self.texts)


class ConversationalAgent:
    """A fully synthesized, data-aware conversational agent.

    Construct with a pre-built artifacts bundle::

        agent = ConversationalAgent(database, artifacts)

    or with the legacy keyword form (the components are assembled into a
    bundle internally)::

        agent = ConversationalAgent(
            database=db, catalog=..., annotations=..., tasks=[...],
            nlu=..., dm_model=..., vocabulary=...,
        )
    """

    def __init__(
        self,
        database: Database,
        artifacts: AgentArtifacts | None = None,
        *,
        catalog: Catalog | None = None,
        annotations: SchemaAnnotations | None = None,
        tasks: list[Task] | None = None,
        nlu: NLUPipeline | None = None,
        dm_model: NextActionModel | None = None,
        vocabulary: SlotVocabulary | None = None,
        choice_list_size: int = 3,
    ) -> None:
        if artifacts is None:
            if None in (catalog, annotations, tasks, nlu, dm_model, vocabulary):
                raise TypeError(
                    "ConversationalAgent needs either an AgentArtifacts "
                    "bundle or all of catalog/annotations/tasks/nlu/"
                    "dm_model/vocabulary"
                )
            artifacts = AgentArtifacts.build(
                database=database,
                catalog=catalog,
                annotations=annotations,
                tasks=tasks,
                nlu=nlu,
                dm_model=dm_model,
                vocabulary=vocabulary,
                choice_list_size=choice_list_size,
            )
        self._database = database
        self.artifacts = artifacts
        self._manager = DialogueManager(
            artifacts.dm_model, list(artifacts.tasks.values())
        )
        self._responder = Responder(database, artifacts.annotations)
        self._executor = TransactionExecutor(database)
        # Default context backing the classic single-session API.
        self._context = artifacts.new_context()

    # ------------------------------------------------------------------
    # Shared, read-only collaborators
    # ------------------------------------------------------------------
    @property
    def responder(self) -> Responder:
        return self._responder

    @property
    def statistics(self) -> StatisticsCatalog:
        return self.artifacts.statistics

    def tasks(self) -> list[str]:
        return self.artifacts.task_names()

    # ------------------------------------------------------------------
    # The default (single-session) context
    # ------------------------------------------------------------------
    @property
    def context(self) -> ConversationContext:
        """The default context used when ``respond`` gets none."""
        return self._context

    @property
    def state(self):
        return self._context.state

    @property
    def awareness(self):
        return self._context.awareness

    def reset(self) -> None:
        """Start a fresh conversation (models and awareness persist)."""
        self._context.reset()

    def new_context(self) -> ConversationContext:
        """A fresh, independent per-conversation context."""
        return self.artifacts.new_context()

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------
    def respond(
        self, text: str, context: ConversationContext | None = None
    ) -> AgentReply:
        """Process one user utterance and produce the agent's reply.

        ``context`` carries all mutable conversation state; when omitted
        the agent's default context is used (single-session API).  Turns
        on distinct contexts are independent and may run on concurrent
        threads: the whole turn pins one MVCC snapshot generation (so no
        half-applied transaction is ever observed) while writers commit
        freely alongside; executing a transaction at the end of a task
        takes only the narrow commit latch, and its commit moves this
        turn's pin forward so the reply reflects the booking.
        """
        ctx = self._context if context is None else context
        with self._database.read_locked():
            return self._respond_locked(ctx, text)

    def _respond_locked(
        self, ctx: ConversationContext, text: str
    ) -> AgentReply:
        # Between our turns another session may have committed deletes;
        # revalidate any candidate rows before using them.  Under the
        # turn's snapshot pin the result stays valid for the whole turn.
        session = ctx.state.identification
        if session is not None and session.prune_stale_candidates():
            if ctx.state.phase is Phase.CHOOSING:
                # The list the user is choosing from changed; re-present.
                ctx.state.phase = Phase.GATHERING
        parse = self.artifacts.nlu.parse(text)
        state = ctx.state
        state.turn_count += 1
        replies: list[str] = []
        executed: ProcedureResult | None = None

        if state.phase is Phase.CHOOSING and parse.intent not in (
            acts.USER_ABORT,
            acts.USER_GOODBYE,
        ):
            replies.extend(self._handle_choice(ctx, parse))
            if state.phase is not Phase.CHOOSING:
                executed = self._drive(ctx, replies)
            if not replies:
                replies.append(self._reprompt(ctx))
            return AgentReply(tuple(replies), executed, parse)

        state.record("user", parse.intent)
        handler = {
            acts.USER_GREET: self._on_greet,
            acts.USER_GOODBYE: self._on_goodbye,
            acts.USER_ABORT: self._on_abort,
            acts.USER_AFFIRM: self._on_affirm,
            acts.USER_DENY: self._on_deny,
            acts.USER_DONT_KNOW: self._on_dont_know,
            acts.USER_THANK: self._on_thank,
            acts.USER_INFORM: self._on_inform,
            FALLBACK_INTENT: self._on_fallback,
        }.get(parse.intent)

        if handler is not None:
            should_drive = handler(ctx, parse, replies)
        elif parse.intent.startswith("request_"):
            should_drive = self._on_request(ctx, parse, replies)
        else:  # unknown intent label: treat as fallback
            should_drive = self._on_fallback(ctx, parse, replies)

        if should_drive:
            executed = self._drive(ctx, replies)
        if not replies:
            replies.append(self._reprompt(ctx))
        return AgentReply(tuple(replies), executed, parse)

    def _reprompt(self, ctx: ConversationContext) -> str:
        """Contextual fallback so the agent is never silent."""
        state = ctx.state
        if state.phase is Phase.CONFIRMING and state.task is not None:
            return self._responder.confirm(state.task, self._summary(ctx))
        session = state.identification
        if session is not None and session.pending_question is not None:
            return self._responder.ask_attribute(session.pending_question)
        if state.current_slot is not None and state.task is not None:
            return self._responder.ask_slot(
                self._current_slot_spec(ctx).display_name
            )
        return self._responder.rephrase()

    # ------------------------------------------------------------------
    # Intent handlers (return True when the task loop should advance)
    # ------------------------------------------------------------------
    def _on_greet(
        self, ctx: ConversationContext, parse: NLUResult, replies: list[str]
    ) -> bool:
        if not ctx.state.greeted:
            ctx.state.greeted = True
            ctx.state.record("agent", acts.AGENT_GREET)
            replies.append(self._responder.greet())
        return ctx.state.task is not None

    def _on_goodbye(
        self, ctx: ConversationContext, parse: NLUResult, replies: list[str]
    ) -> bool:
        ctx.state.clear_task()
        ctx.state.phase = Phase.DONE
        ctx.state.record("agent", acts.AGENT_GOODBYE)
        replies.append(self._responder.goodbye())
        return False

    def _on_abort(
        self, ctx: ConversationContext, parse: NLUResult, replies: list[str]
    ) -> bool:
        ctx.state.clear_task()
        ctx.clear_buffered()
        ctx.state.record("agent", acts.AGENT_ACK_ABORT)
        replies.append(self._responder.acknowledge_abort())
        return False

    def _on_thank(
        self, ctx: ConversationContext, parse: NLUResult, replies: list[str]
    ) -> bool:
        replies.append("You're welcome!")
        return ctx.state.task is not None

    def _on_request(
        self, ctx: ConversationContext, parse: NLUResult, replies: list[str]
    ) -> bool:
        task_name = parse.intent[len("request_"):]
        task = self.artifacts.tasks.get(task_name)
        if task is None:
            replies.append(self._responder.rephrase())
            return False
        if ctx.state.task is not None and ctx.state.task.name == task_name:
            # Re-stating the current task ("i want to watch X") is extra
            # information, not a restart.
            self._apply_linked(ctx, parse.linked, replies)
            return True
        ctx.state.start_task(task)
        self._apply_linked(ctx, parse.linked, replies)
        return True

    def _on_inform(
        self, ctx: ConversationContext, parse: NLUResult, replies: list[str]
    ) -> bool:
        applied = self._apply_linked(ctx, parse.linked, replies)
        if not applied:
            applied = self._answer_pending(ctx, parse, replies)
        if ctx.state.task is None:
            if applied:
                replies.append(
                    "Noted. What would you like to do? I can "
                    + ", ".join(
                        t.replace("_", " ")
                        for t in self.artifacts.task_names()
                    )
                    + "."
                )
            else:
                replies.append(self._responder.rephrase())
            return False
        return True

    def _on_dont_know(
        self, ctx: ConversationContext, parse: NLUResult, replies: list[str]
    ) -> bool:
        session = ctx.state.identification
        if session is not None and session.pending_question is not None:
            session.dont_know()
            return True
        if ctx.state.current_slot is not None:
            slot = self._current_slot_spec(ctx)
            replies.append(
                f"I do need the {slot.display_name} to continue, sorry."
            )
            return False
        return ctx.state.task is not None

    def _on_affirm(
        self, ctx: ConversationContext, parse: NLUResult, replies: list[str]
    ) -> bool:
        if ctx.state.phase is Phase.CONFIRMING:
            ctx.state.record("agent", acts.AGENT_EXECUTE)
            return True
        return ctx.state.task is not None

    def _on_deny(
        self, ctx: ConversationContext, parse: NLUResult, replies: list[str]
    ) -> bool:
        if ctx.state.phase is Phase.CONFIRMING:
            ctx.state.record("agent", acts.AGENT_RESTART)
            replies.append(self._responder.restart())
            ctx.state.restart_task()
            return True
        return ctx.state.task is not None

    def _on_fallback(
        self, ctx: ConversationContext, parse: NLUResult, replies: list[str]
    ) -> bool:
        if self._answer_pending(ctx, parse, replies):
            return True
        ctx.state.record("agent", acts.AGENT_FALLBACK)
        replies.append(self._responder.rephrase())
        return False

    # ------------------------------------------------------------------
    # Applying parsed information
    # ------------------------------------------------------------------
    def _apply_linked(
        self,
        ctx: ConversationContext,
        linked: tuple[LinkedValue, ...],
        replies: list[str],
    ) -> bool:
        """Route linked slot values into the state; returns True if any used."""
        applied = False
        for value in linked:
            if value.corrected:
                replies.append(
                    self._responder.corrected(value.raw, str(value.value))
                )
            if ctx.state.task is None:
                ctx.buffered.append(value)
                applied = True
                continue
            applied = self._apply_one(ctx, value) or applied
        return applied

    def _apply_one(self, ctx: ConversationContext, value: LinkedValue) -> bool:
        state = ctx.state
        task = state.task
        assert task is not None
        # 1. Plain value slot of the active task.
        for slot in task.value_slots:
            if slot.name == value.slot:
                state.collected[slot.name] = value.value
                if state.current_slot == slot.name:
                    state.current_slot = None
                return True
        # 2. Identifying attribute of one of the task's entity lookups.
        attribute = self.artifacts.vocabulary.attribute_for(value.slot)
        if attribute is None:
            return False
        for lookup in task.lookups:
            if lookup.slot in state.collected:
                continue
            if attribute not in lookup.all_attributes():
                continue
            session = state.identification
            active = (
                session is not None
                and session.candidates.table == lookup.table
            )
            if active:
                return session.volunteer(attribute, value.value)
            # The entity is not being identified yet: keep the value and
            # apply it when that identification session starts.
            ctx.buffered.append(value)
            return True
        return False

    def _answer_pending(
        self, ctx: ConversationContext, parse: NLUResult, replies: list[str]
    ) -> bool:
        """Interpret a bare utterance as the answer to the open question."""
        raw = parse.text.strip()
        session = ctx.state.identification
        if session is not None and session.pending_question is not None:
            attribute = session.pending_question
            slot_name = self.artifacts.vocabulary.slot_for_attribute(attribute)
            value: Any = raw
            if slot_name is not None:
                linked = self.artifacts.nlu.linker.link(slot_name, raw)
                if linked is not None:
                    if linked.corrected:
                        replies.append(
                            self._responder.corrected(linked.raw,
                                                      str(linked.value))
                        )
                    value = linked.value
            session.answer(value)
            return True
        if ctx.state.current_slot is not None:
            linked = self.artifacts.nlu.linker.link(
                ctx.state.current_slot, raw
            )
            if linked is not None:
                ctx.state.collected[ctx.state.current_slot] = linked.value
                ctx.state.current_slot = None
                return True
        return False

    # ------------------------------------------------------------------
    # The task-progression loop
    # ------------------------------------------------------------------
    def _drive(
        self, ctx: ConversationContext, replies: list[str]
    ) -> ProcedureResult | None:
        """Advance the task until user input is needed or it completes."""
        state = ctx.state
        for __ in range(32):  # hard bound against pathological loops
            if state.task is None:
                return None
            if state.phase is Phase.CONFIRMING:
                if state.history and state.history[-1].endswith(acts.AGENT_EXECUTE):
                    return self._execute(ctx, replies)
                return None
            action = self._manager.propose(state)
            if action is None:
                return None
            if action == acts.AGENT_CONFIRM:
                if not self._executor.requires_confirmation(state.task):
                    state.record("agent", acts.AGENT_EXECUTE)
                    return self._execute(ctx, replies)
                state.phase = Phase.CONFIRMING
                state.record("agent", acts.AGENT_CONFIRM)
                replies.append(
                    self._responder.confirm(state.task, self._summary(ctx))
                )
                return None
            if action.startswith("identify_"):
                done = self._identification_step(ctx, action, replies)
                if not done:
                    return None
                continue
            if action.startswith("ask_slot_"):
                slot_name = action[len("ask_slot_"):]
                if state.collected.get(slot_name) is not None:
                    continue
                spec = state.task.slot(slot_name)
                state.current_slot = slot_name
                state.record("agent", action)
                replies.append(self._responder.ask_slot(spec.display_name))
                return None
            # Any other action (greet/goodbye) ends the drive loop.
            return None
        raise DialogueError("dialogue drive loop did not terminate")

    def _identification_step(
        self, ctx: ConversationContext, action: str, replies: list[str]
    ) -> bool:
        """One step of entity identification; True when the entity is done."""
        state = ctx.state
        assert state.task is not None
        entity_table = action[len("identify_"):]
        lookup = next(
            (
                lk
                for lk in state.task.lookups
                if lk.table == entity_table and lk.slot not in state.collected
            ),
            None,
        )
        if lookup is None:
            return True
        session = self._session_for(ctx, lookup.slot)
        status = session.status
        if status is IdentificationStatus.UNIQUE:
            row = session.candidates.the_row()
            state.collected[lookup.slot] = row[lookup.key_column]
            state.identification = None
            replies.append(self._responder.identified(lookup.table, row))
            return True
        if status is IdentificationStatus.NO_MATCH:
            replies.append(self._responder.no_match(lookup.table))
            state.identification = None
            return False
        if status in (
            IdentificationStatus.CHOICE_LIST,
            IdentificationStatus.EXHAUSTED,
        ):
            rows = session.choice_list()
            state.phase = Phase.CHOOSING
            replies.append(
                self._responder.propose_choices(lookup.table, rows)
            )
            return False
        question = session.next_question()
        if question is None:
            # Status changed as a side effect; handle on the next pass.
            return self._identification_step(ctx, action, replies)
        if f"agent:{action}" not in state.history[-3:]:
            state.record("agent", action)
        replies.append(self._responder.ask_attribute(question))
        return False

    def _execute(
        self, ctx: ConversationContext, replies: list[str]
    ) -> ProcedureResult | None:
        state = ctx.state
        task = state.task
        assert task is not None
        # The turn holds a snapshot pin, not a lock: the transaction
        # takes the commit latch directly (no upgrade needed), and the
        # commit refreshes this thread's pin so the rest of the turn
        # observes what it just booked.
        outcome = self._executor.execute(task, dict(state.collected))
        if outcome.success and outcome.result is not None:
            state.record("agent", acts.AGENT_SUCCESS)
            replies.append(self._responder.success(task, outcome.result.value))
            state.clear_task()
            return outcome.result
        state.record("agent", acts.AGENT_FAILURE)
        replies.append(self._responder.failure(outcome.error or "unknown error"))
        state.clear_task()
        return None

    # ------------------------------------------------------------------
    # Identification plumbing
    # ------------------------------------------------------------------
    def _session_for(
        self, ctx: ConversationContext, slot_name: str
    ) -> IdentificationSession:
        state = ctx.state
        assert state.task is not None
        session = state.identification
        if session is not None and session.candidates.table == self._lookup(
            ctx, slot_name
        ).table:
            return session
        lookup = self._lookup(ctx, slot_name)
        candidates = CandidateSet.initial(
            self._database,
            self.artifacts.catalog,
            lookup.table,
            shared_cache=self.artifacts.value_cache,
        )
        policy = DataAwarePolicy(
            lookup, ctx.awareness, self.artifacts.statistics
        )
        session = IdentificationSession(
            candidates,
            policy,
            lookup.key_column,
            choice_list_size=self.artifacts.choice_list_size,
        )
        state.identification = session
        self._flush_buffer(ctx, session, lookup)
        return session

    def _lookup(self, ctx: ConversationContext, slot_name: str):
        assert ctx.state.task is not None
        lookup = ctx.state.task.lookup_for(slot_name)
        if lookup is None:
            raise DialogueError(f"slot {slot_name!r} is not an entity slot")
        return lookup

    def _flush_buffer(
        self,
        ctx: ConversationContext,
        session: IdentificationSession,
        lookup,
    ) -> None:
        """Apply pre-task buffered inform values that fit this entity."""
        remaining: list[LinkedValue] = []
        attributes = set(lookup.all_attributes())
        for value in ctx.buffered:
            attribute = self.artifacts.vocabulary.attribute_for(value.slot)
            if attribute is not None and attribute in attributes:
                session.volunteer(attribute, value.value)
            else:
                remaining.append(value)
        ctx.buffered[:] = remaining

    # ------------------------------------------------------------------
    # Choice lists
    # ------------------------------------------------------------------
    def _handle_choice(
        self, ctx: ConversationContext, parse: NLUResult
    ) -> list[str]:
        state = ctx.state
        session = state.identification
        if session is None:
            state.phase = Phase.GATHERING
            return []
        # First preference: the user narrowed the list with more
        # information ("my last name is gruber") rather than an index.
        replies: list[str] = []
        if self._refine_choice(ctx, parse, replies):
            state.record("user", acts.USER_INFORM)
            state.phase = Phase.GATHERING
            return replies
        rows = session.choice_list()
        index = self._parse_choice_index(parse.text, len(rows))
        if index is None:
            return [self._responder.choice_out_of_range(len(rows))]
        key_column = session.key_column
        session.choose(rows[index - 1][key_column])
        state.phase = Phase.GATHERING
        state.record("user", acts.USER_CHOOSE)
        return []

    def _refine_choice(
        self, ctx: ConversationContext, parse: NLUResult, replies: list[str]
    ) -> bool:
        """Apply linked values as extra constraints on the choice list.

        Values that belong to a *different* entity of the task (e.g. the
        room type while the guest list is shown) are buffered for the
        later identification instead of being dropped.
        """
        session = ctx.state.identification
        assert session is not None
        current_table = session.candidates.table
        applied = False
        for value in parse.linked:
            attribute = self.artifacts.vocabulary.attribute_for(value.slot)
            if attribute is None:
                continue
            if value.corrected:
                replies.append(
                    self._responder.corrected(value.raw, str(value.value))
                )
            if attribute.table == current_table or self._reaches(
                current_table, attribute
            ):
                applied = session.volunteer(attribute, value.value) or applied
            else:
                ctx.buffered.append(value)
        return applied

    def _reaches(self, root_table: str, attribute: ColumnRef) -> bool:
        return (
            self.artifacts.catalog.join_path(root_table, attribute.table)
            is not None
        )

    @staticmethod
    def _parse_choice_index(text: str, n: int) -> int | None:
        lowered = text.lower()
        match = re.search(r"\b(\d+)\b", lowered)
        if match:
            index = int(match.group(1))
            return index if 1 <= index <= n else None
        words = re.findall(r"[a-z]+", lowered)
        # Keyword selection only for short, index-like replies ("the last
        # one") — longer sentences are information, not selections.
        if len(words) <= 4:
            for word, index in _ORDINALS.items():
                if word in words and index <= n:
                    return index
            if "last" in words or "latter" in words:
                return n
        return None

    # ------------------------------------------------------------------
    def _summary(self, ctx: ConversationContext) -> dict[str, str]:
        state = ctx.state
        assert state.task is not None
        summary: dict[str, str] = {}
        for slot in state.task.slots:
            value = state.collected.get(slot.name)
            if value is None:
                continue
            summary[slot.display_name] = self._describe_slot_value(slot, value)
        return summary

    def _describe_slot_value(self, slot: SlotSpec, value: Any) -> str:
        if slot.references is None:
            return str(value)
        table, column = slot.references
        with self._database.read_locked():
            row = self._database.find_one(table, column, value)
        if row is None:
            return str(value)
        return self._responder.describe_row(table, row)

    def _current_slot_spec(self, ctx: ConversationContext) -> SlotSpec:
        assert ctx.state.task is not None and ctx.state.current_slot is not None
        return ctx.state.task.slot(ctx.state.current_slot)
