"""Agent runtime: the synthesized conversational agent and its builder."""

from repro.agent.agent import AgentReply, ConversationalAgent
from repro.agent.artifacts import AgentArtifacts
from repro.agent.builder import CAT, SynthesisReport
from repro.agent.executor import ExecutionOutcome, TransactionExecutor
from repro.agent.responses import Responder
from repro.agent.session import ConversationSession, TranscriptTurn

__all__ = [
    "CAT",
    "AgentArtifacts",
    "AgentReply",
    "ConversationSession",
    "ConversationalAgent",
    "ExecutionOutcome",
    "Responder",
    "SynthesisReport",
    "TranscriptTurn",
]
