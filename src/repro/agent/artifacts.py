"""The immutable output of agent synthesis.

``CAT.synthesize()`` is expensive: it extracts tasks, generates training
data and trains the NLU and DM models.  Everything it produces is
read-only at serving time, so it is bundled here once and shared — by
the single-session :class:`~repro.agent.agent.ConversationalAgent`, by
every session of a :class:`~repro.serving.runtime.AgentRuntime`, and by
the evaluation harness — while all per-conversation mutable state lives
in :class:`~repro.dialogue.context.ConversationContext`.

The statistics catalog and the attribute-value cache are part of the
bundle even though their *contents* move with the data version: they are
concurrency-safe caches over the (shared) database, and sharing them
across sessions is exactly the paper's "integrated caching strategy" —
the first conversation of the day pays the rebuild, every other session
hits.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping

from repro.annotation import SchemaAnnotations, Task
from repro.dataaware import AttributeValueCache, UserAwarenessModel
from repro.db.catalog import Catalog
from repro.db.database import Database
from repro.db.engine.cache import PlanCache
from repro.db.statistics import StatisticsCatalog
from repro.dialogue import ConversationContext
from repro.dialogue.policy import NextActionModel
from repro.nlu.pipeline import NLUPipeline
from repro.synthesis.templates import SlotVocabulary

__all__ = ["AgentArtifacts"]


@dataclass(frozen=True)
class AgentArtifacts:
    """Everything synthesis produced, shared read-only across sessions."""

    catalog: Catalog
    annotations: SchemaAnnotations
    tasks: Mapping[str, Task]
    nlu: NLUPipeline
    dm_model: NextActionModel
    vocabulary: SlotVocabulary
    statistics: StatisticsCatalog
    value_cache: AttributeValueCache
    plan_cache: PlanCache
    choice_list_size: int = 3

    @classmethod
    def build(
        cls,
        database: Database,
        catalog: Catalog,
        annotations: SchemaAnnotations,
        tasks: list[Task],
        nlu: NLUPipeline,
        dm_model: NextActionModel,
        vocabulary: SlotVocabulary,
        choice_list_size: int = 3,
    ) -> "AgentArtifacts":
        """Assemble a bundle, deriving the shared caches for ``database``."""
        return cls(
            catalog=catalog,
            annotations=annotations,
            tasks=MappingProxyType({task.name: task for task in tasks}),
            nlu=nlu,
            dm_model=dm_model,
            vocabulary=vocabulary,
            # The same catalog instance the query planner prices plans
            # with: one rebuild per data version serves both — and the
            # same prepared-plan cache every Query.run() reads through,
            # so the first session of the day compiles the turn-query
            # templates and every other session binds into them.
            statistics=database.statistics,
            value_cache=AttributeValueCache(database, catalog),
            plan_cache=database.plan_cache,
            choice_list_size=choice_list_size,
        )

    # ------------------------------------------------------------------
    def task_names(self) -> list[str]:
        return sorted(self.tasks)

    def new_context(self) -> ConversationContext:
        """A fresh per-conversation context (own awareness model)."""
        return ConversationContext(
            awareness=UserAwarenessModel(self.annotations)
        )
