"""Conversation sessions: turn loop with transcript recording.

A thin convenience wrapper around :class:`ConversationalAgent` that
records the full transcript (for the demo, for debugging, and for the
evaluation harness's dialogue traces).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.agent.agent import AgentReply, ConversationalAgent

__all__ = ["TranscriptTurn", "ConversationSession"]


@dataclass(frozen=True)
class TranscriptTurn:
    """One user/agent exchange."""

    user: str
    agent: str
    intent: str | None = None
    executed: Any | None = None


@dataclass
class ConversationSession:
    """Wraps an agent with transcript recording."""

    agent: ConversationalAgent
    transcript: list[TranscriptTurn] = field(default_factory=list)

    def say(self, text: str) -> AgentReply:
        """Send one user utterance; records and returns the reply."""
        reply = self.agent.respond(text)
        self.transcript.append(
            TranscriptTurn(
                user=text,
                agent=reply.text,
                intent=reply.nlu.intent if reply.nlu else None,
                executed=reply.executed,
            )
        )
        return reply

    def restart(self) -> None:
        """Reset the conversation but keep the transcript."""
        self.agent.reset()

    def executed_results(self) -> list[Any]:
        return [t.executed for t in self.transcript if t.executed is not None]

    def format_transcript(self) -> str:
        lines: list[str] = []
        for turn in self.transcript:
            lines.append(f"USER : {turn.user}")
            for part in turn.agent.split("\n"):
                lines.append(f"AGENT: {part}")
        return "\n".join(lines)
