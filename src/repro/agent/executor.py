"""Transaction execution: the out-of-the-box database integration.

"The agent and the database are tightly integrated ... the agent can
directly execute the desired transactions without any manual overhead"
(Section 2).  The executor binds the collected slot values to the stored
procedure's parameters and runs it atomically, translating failures into
dialogue-friendly error messages instead of exceptions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.annotation import Task
from repro.db.database import Database
from repro.db.procedures import ProcedureResult
from repro.errors import DatabaseError

__all__ = ["ExecutionOutcome", "TransactionExecutor"]


@dataclass(frozen=True)
class ExecutionOutcome:
    """Result of attempting a transaction."""

    success: bool
    result: ProcedureResult | None = None
    error: str | None = None


class TransactionExecutor:
    """Runs a task's stored procedure with collected slot values."""

    def __init__(self, database: Database) -> None:
        self._database = database

    def execute(self, task: Task, collected: dict[str, Any]) -> ExecutionOutcome:
        arguments = {
            slot.name: collected.get(slot.name)
            for slot in task.slots
            if collected.get(slot.name) is not None or not slot.optional
        }
        # Calls go through the shared connection, so procedure traffic
        # shows up in the same stats surface as query traffic; the
        # ProcedureResult stays the outcome payload (it is iterable
        # like a query Result, so downstream consumers can treat the
        # two interchangeably).
        connection = self._database.default_connection
        try:
            result = connection.call(task.name, **arguments)
        except DatabaseError as exc:
            return ExecutionOutcome(success=False, error=str(exc))
        return ExecutionOutcome(success=True, result=result.procedure_result)

    def requires_confirmation(self, task: Task) -> bool:
        """Read-only procedures run immediately; writes are confirmed."""
        procedure = self._database.procedures.get(task.name)
        return bool(procedure.writes)
