"""Command-line interface: ``python -m repro <command>``.

Commands mirror the demo workflow of Section 5:

* ``demo``      — synthesize the cinema agent and run a scripted booking.
* ``chat``      — synthesize the cinema agent and chat interactively.
* ``serve``     — multi-session REPL on the concurrent agent runtime.
* ``report``    — print the synthesis report (tasks, data, actions).
* ``policies``  — compare data-aware / static / random slot selection.
* ``snapshot``  — dump the cinema database to a JSON file.
* ``explain``   — show the cost-based plan the query engine picks.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main"]

_DEMO_SCRIPT = [
    "hello",
    "i want to buy 2 tickets",
    "my name is alice",
    "my last name is quandt",
    "i want to watch forest gump",
    "the first one",
    "yes please",
    "thanks, goodbye",
]


def _build_cat():
    from repro import CAT
    from repro.datasets import build_movie_database, movie_templates

    database, annotations = build_movie_database()
    cat = CAT(database, annotations)
    cat.add_template_catalog(movie_templates())
    print("synthesizing the cinema agent (trains NLU + DM) ...",
          file=sys.stderr)
    return cat, cat.synthesize()


def _cmd_demo() -> int:
    from repro import ConversationSession

    __, agent = _build_cat()
    session = ConversationSession(agent)
    for utterance in _DEMO_SCRIPT:
        session.say(utterance)
    print(session.format_transcript())
    executed = session.executed_results()
    if executed:
        print(f"\nexecuted transactions: {[r.procedure for r in executed]}")
    return 0


def _cmd_chat() -> int:
    from repro import ConversationSession

    __, agent = _build_cat()
    session = ConversationSession(agent)
    print("Chat with the cinema agent (ctrl-d or 'quit' to leave).")
    while True:
        try:
            text = input("you> ").strip()
        except EOFError:
            return 0
        if not text or text.lower() in ("quit", "exit"):
            return 0
        reply = session.say(text)
        for line in reply.text.split("\n"):
            print(f"bot> {line}")


_SERVE_HELP = """\
Multi-session mode. One synthesized agent serves every session; each
session has its own dialogue state and awareness model.

  :new [id]     open a session (and switch to it)
  :use <id>     switch the active session
  :sessions     list live sessions
  :close <id>   end a session
  :stats        runtime + storage + per-session connection counters
  :advisor      ranked CREATE INDEX suggestions from observed scans
  :autotune     self-driving policy: applied/retired indexes + budget
  :replicas     replication status: lag (LSN + seconds), routes, ring
  :compact      fold every table's delta into a fresh sealed segment
  :help         this text
  :quit         leave
Anything else is sent to the active session.
With --replicas N, analytic statements route to log-shipped replicas
at bounded staleness (transactions always commit on the primary)."""

_SHARD_HELP = """\
Sharded mode: session ids hash across worker processes, each hosting
its own runtime over a database replica (affinity: a session's turns
all land on its worker).

  :new [id]     open a session (and switch to it)
  :use <id>     switch the active session
  :sessions     list live sessions (all workers)
  :close <id>   end a session
  :stats        per-worker turn counts, storage, commit waits
  :autotune     per-worker self-driving policy status
  :replicas     per-worker replication status (lag, routes, ring)
  :compact      reseal every worker replica's delta rows
  :help         this text
  :quit         leave
Anything else is sent to the active session."""


def _print_replicas(status: dict, indent: str = "  ") -> None:
    """Render one runtime's replication status (the ``:replicas`` view)."""
    if not status.get("enabled"):
        print(f"{indent}replication off (start with --replicas N)")
        return
    seconds = status["lag_seconds"]
    lag_s = "n/a" if seconds is None else f"{seconds * 1000.0:.1f}ms"
    print(
        f"{indent}primary lsn={status['primary_lsn']}  "
        f"lag={status['lag_lsn']} lsn / {lag_s}  "
        f"live={status['replicas_live']}  "
        f"routes={status['replica_routes']} replica"
        f"/{status['primary_fallbacks']} primary"
    )
    ring = status["ring"]
    print(
        f"{indent}ring {ring['size']}/{ring['capacity']} records  "
        f"evicted_lsn={ring['evicted_lsn']}"
    )
    for replica in status["replicas"]:
        state = "up" if replica["alive"] else "down"
        if replica["needs_resync"]:
            state = "resync"
        seconds = replica["lag_seconds"]
        lag_s = "n/a" if seconds is None else f"{seconds * 1000.0:.1f}ms"
        line = (
            f"{indent}  replica {replica['index']}: {state}  "
            f"applied_lsn={replica['applied_lsn']}  lag={lag_s}  "
            f"records={replica['records_applied']} "
            f"in {replica['batches_applied']} batches  "
            f"resyncs={replica['resyncs']}"
        )
        if replica["last_error"]:
            line += f"  error={replica['last_error']}"
        print(line)


def _print_autotune(status: dict, indent: str = "  ") -> None:
    """Render one runtime's self-driving status (the ``:autotune`` view)."""
    state = "on" if status["enabled"] else "off"
    budget = status["budget"]
    print(
        f"{indent}policy {state}  tick={status['tick']}  "
        f"applied={status['applied']}  retired={status['retired']}"
    )
    print(
        f"{indent}budget: {budget['rows_used']}"
        f"/{budget['memory_budget_rows']} indexed rows"
    )
    if status["indexes"]:
        print(f"{indent}auto-managed indexes:")
        for entry in status["indexes"]:
            print(
                f"{indent}  {entry['table']}.{entry['column']} "
                f"({entry['kind']})  hits={entry['hits']:.1f}  "
                f"hit_rows={entry['hit_rows']:.0f}  "
                f"maintenance={entry['maintenance']:.0f}"
            )
    for action in status["actions"]:
        print(
            f"{indent}{action['action']:6s} {action['table']}."
            f"{action['column']} ({action['kind']}) at tick "
            f"{action['tick']}"
        )
    respec = status.get("respec")
    if respec:
        print(
            f"{indent}respecialisation: "
            f"divergences={respec['divergences']}  "
            f"replans={respec['replans']}  forks={respec['forks']}  "
            f"fork_binds={respec['fork_binds']}"
        )


def _shard_worker_runtime(bootstrap_arg):
    """Spawn-safe shard bootstrap: replica from snapshot + synthesis.

    Fork-style workers never call this — they inherit the parent's
    already-synthesized agent; spawn-style workers rebuild from the
    incremental snapshot directory (sealed base + delta log) the
    parent wrote, restoring without a full re-synthesis pass.
    ``bootstrap_arg`` is the directory, or ``(directory, replicas)``
    when the worker should also attach analytic replicas.
    """
    from repro import CAT
    from repro.datasets import movie_templates, restore_movie_database

    replicas = 0
    snapshot_path = bootstrap_arg
    if isinstance(bootstrap_arg, tuple):
        snapshot_path, replicas = bootstrap_arg
    database, annotations = restore_movie_database(snapshot_path)
    cat = CAT(database, annotations)
    cat.add_template_catalog(movie_templates())
    runtime = cat.synthesize_runtime()
    if replicas > 0:
        runtime.enable_replicas(replicas)
    return runtime


def _cmd_serve_sharded(
    session_ttl: float | None, workers: int, replicas: int = 0
) -> int:
    import multiprocessing
    import tempfile

    from repro.errors import ServingError, UnknownSessionError
    from repro.serving import AgentRuntime, ShardRouter

    cat, agent = _build_cat()

    if "fork" in multiprocessing.get_all_start_methods():
        # Fork workers inherit the synthesized agent (copy-on-write
        # replica) — worker start is effectively free.  Replicas are
        # attached *after* the fork, in the worker: appliers are
        # threads and must live in the process whose primary they tail.
        def bootstrap():
            runtime = AgentRuntime.for_agent(agent, session_ttl=session_ttl)
            if replicas > 0:
                runtime.enable_replicas(replicas)
            return runtime

        router = ShardRouter(workers, bootstrap, start_method="fork")
    else:  # pragma: no cover - non-fork platforms
        # Incremental (v4) snapshot directory: workers restore the
        # sealed base image and replay the delta log instead of
        # re-synthesizing, so spawn start stays fast.
        directory = tempfile.mkdtemp(prefix="repro-shard-")
        from repro.db import dump_incremental

        dump_incremental(agent._database, directory)
        router = ShardRouter(
            workers,
            "repro.cli:_shard_worker_runtime",
            bootstrap_arg=(directory, replicas) if replicas else directory,
            start_method="spawn",
        )

    with router:
        active = router.create_session()
        print(_SHARD_HELP)
        print(f"{workers} workers up")
        print(f"[{active}] session opened (worker {router.shard_of(active)})")
        while True:
            try:
                text = input(f"{active}> ").strip()
            except EOFError:
                return 0
            if not text:
                continue
            if text in (":quit", ":q", "quit", "exit"):
                return 0
            try:
                if text == ":help":
                    print(_SHARD_HELP)
                elif text.startswith(":new"):
                    parts = text.split(maxsplit=1)
                    active = router.create_session(
                        parts[1] if len(parts) > 1 else None
                    )
                    print(
                        f"[{active}] session opened "
                        f"(worker {router.shard_of(active)})"
                    )
                elif text.startswith(":use"):
                    parts = text.split(maxsplit=1)
                    if len(parts) < 2:
                        print("usage: :use <id>")
                        continue
                    active = parts[1]
                    print(f"[{active}] active")
                elif text == ":sessions":
                    for sid in router.session_ids():
                        marker = "*" if sid == active else " "
                        print(
                            f" {marker} {sid}  "
                            f"worker={router.shard_of(sid)}"
                        )
                elif text.startswith(":close"):
                    parts = text.split(maxsplit=1)
                    target = parts[1] if len(parts) > 1 else active
                    router.end_session(target)
                    print(f"[{target}] closed")
                elif text == ":stats":
                    stats = router.stats()
                    print(
                        f"  turns_served             {stats.turns_served}"
                    )
                    print(
                        f"  live_sessions            {stats.live_sessions}"
                    )
                    for w in stats.workers:
                        print(
                            f"    worker {w.worker}: turns={w.turns_served}  "
                            f"sessions={w.live_sessions}  "
                            f"snapshot_version={w.snapshot_version}  "
                            f"commit_waits={w.commit_waits}  "
                            f"txns={w.transactions_committed}"
                            f"/{w.transactions_aborted} aborted"
                        )
                    for index, tables in sorted(
                        router.storage_stats().items()
                    ):
                        print(f"  storage (worker {index}):")
                        for name, s in sorted(tables.items()):
                            print(
                                f"    {name:16s} "
                                f"sealed={s['sealed_rows']}  "
                                f"delta={s['delta_rows']}  "
                                f"retired={s['retired_rows']}  "
                                f"compactions={s['compactions']}"
                            )
                elif text == ":compact":
                    for index, count in sorted(router.compact().items()):
                        print(f"  worker {index}: {count} tables resealed")
                elif text == ":autotune":
                    statuses = router.autotune_status()
                    for index, status in sorted(statuses.items()):
                        print(f"  worker {index}:")
                        _print_autotune(status, indent="    ")
                elif text == ":replicas":
                    statuses = router.replica_status()
                    for index, status in sorted(statuses.items()):
                        print(f"  worker {index}:")
                        _print_replicas(status, indent="    ")
                elif text.startswith(":"):
                    print(f"unknown command {text!r} (:help for help)")
                else:
                    reply = router.respond(active, text)
                    for line in reply.text.split("\n"):
                        print(f"bot> {line}")
            except (ServingError, UnknownSessionError) as exc:
                print(f"error: {exc}")


def _cmd_serve(session_ttl: float | None, replicas: int = 0) -> int:
    from repro.errors import ServingError, UnknownSessionError
    from repro.serving import AgentRuntime

    cat, agent = _build_cat()
    runtime = AgentRuntime.for_agent(agent, session_ttl=session_ttl)
    if replicas > 0:
        runtime.enable_replicas(replicas)
        print(f"{replicas} analytic replica(s) attached")
    active = runtime.create_session()
    print(_SERVE_HELP)
    print(f"[{active}] session opened")
    while True:
        try:
            text = input(f"{active}> ").strip()
        except EOFError:
            return 0
        if not text:
            continue
        if text in (":quit", ":q", "quit", "exit"):
            return 0
        try:
            if text == ":help":
                print(_SERVE_HELP)
            elif text.startswith(":new"):
                parts = text.split(maxsplit=1)
                active = runtime.create_session(
                    parts[1] if len(parts) > 1 else None
                )
                print(f"[{active}] session opened")
            elif text.startswith(":use"):
                parts = text.split(maxsplit=1)
                if len(parts) < 2:
                    print("usage: :use <id>")
                    continue
                runtime.session(parts[1])  # validates id and TTL
                active = parts[1]
                print(f"[{active}] active")
            elif text == ":sessions":
                # peek, not get: listing must not refresh TTL/LRU.
                for sid in runtime.session_ids():
                    session = runtime.peek_session(sid)
                    marker = "*" if sid == active else " "
                    print(f" {marker} {sid}  turns={session.turn_count}")
            elif text.startswith(":close"):
                parts = text.split(maxsplit=1)
                target = parts[1] if len(parts) > 1 else active
                runtime.end_session(target)
                print(f"[{target}] closed")
                if target == active:
                    remaining = runtime.session_ids()
                    active = remaining[-1] if remaining else \
                        runtime.create_session()
                    print(f"[{active}] active")
            elif text == ":stats":
                stats = runtime.stats()
                for key, value in vars(stats).items():
                    print(f"  {key:24s} {value}")
                print("  per-table storage (sealed segment + delta):")
                for name, s in sorted(runtime.storage_stats().items()):
                    line = (
                        f"    {name:16s} sealed={s.sealed_rows}  "
                        f"delta={s.delta_rows}  retired={s.retired_rows}  "
                        f"compactions={s.compactions}"
                    )
                    if s.compactions:
                        line += (
                            f"  last={s.last_compaction_seconds * 1000.0:.2f}ms"
                        )
                    print(line)
                session_ids = runtime.session_ids()
                if session_ids:
                    print("  per-session (connection stats + turn latency):")
                for sid in session_ids:
                    s = runtime.session_stats(sid)
                    lookups = s.plan_cache_hits + s.plan_cache_misses
                    print(
                        f"    {sid}  turns={s.turns}  "
                        f"plan_cache={s.plan_cache_hits}/{lookups} hits "
                        f"({s.plan_cache_hit_rate:.0%})  "
                        f"statements={s.executions}  "
                        f"mean_turn={s.mean_turn_ms:.2f}ms  "
                        f"last_turn={s.last_turn_ms:.2f}ms  "
                        f"snapshot=v{s.snapshot_version}"
                    )
            elif text == ":compact":
                print(f"  {runtime.compact()} tables resealed")
            elif text == ":advisor":
                suggestions = runtime.advisor()
                if not suggestions:
                    print("  no index suggestions (no advisable scans seen)")
                for s in suggestions:
                    print(
                        f"  {s.statement}  "
                        f"[{s.misses} scans, ~{s.rows_scanned} rows walked]"
                    )
            elif text == ":autotune":
                _print_autotune(runtime.autotune_status())
            elif text == ":replicas":
                _print_replicas(runtime.replica_status())
            elif text.startswith(":"):
                print(f"unknown command {text!r} (:help for help)")
            else:
                reply = runtime.respond(active, text)
                for line in reply.text.split("\n"):
                    print(f"bot> {line}")
        except (ServingError, UnknownSessionError) as exc:
            print(f"error: {exc}")


def _cmd_report() -> int:
    cat, __ = _build_cat()
    report = cat.report()
    print(f"tasks          : {report.n_tasks}")
    print(f"templates      : {report.n_templates}")
    print(f"NLU examples   : {report.n_nlu_examples}")
    print(f"dialogue flows : {report.n_flows}")
    print(f"intents        : {', '.join(report.intents)}")
    print(f"agent actions  : {', '.join(report.agent_actions)}")
    return 0


def _cmd_policies() -> int:
    from repro.annotation import TaskExtractor
    from repro.dataaware import (
        DataAwarePolicy,
        RandomPolicy,
        StaticPolicy,
        UserAwarenessModel,
    )
    from repro.datasets import MovieConfig, build_movie_database
    from repro.db import Catalog, StatisticsCatalog
    from repro.eval import PolicyExperiment, ResultTable

    config = MovieConfig(n_screenings=600, n_movies=80, extra_dimensions=6,
                         n_actors=80, n_days=30)
    database, annotations = build_movie_database(config)
    catalog = Catalog(database)
    task = TaskExtractor(catalog, annotations).extract(
        database.procedures.get("ticket_reservation")
    )
    lookup = task.lookup_for("screening_id")
    experiment = PolicyExperiment(database, catalog, annotations, lookup)
    table = ResultTable(
        "policy comparison (screening identification)",
        ["policy", "mean_turns", "success"],
    )
    policies = [
        DataAwarePolicy(lookup, UserAwarenessModel(annotations),
                        StatisticsCatalog(database)),
        StaticPolicy.train(lookup, database, catalog, annotations),
        RandomPolicy(lookup, seed=7),
    ]
    for policy in policies:
        summary, __ = experiment.run(policy, n_episodes=40)
        table.add_row(summary.policy, summary.mean_turns,
                      summary.success_rate)
    table.show()
    return 0


_EXPLAIN_OPS = (">=", "<=", "!=", "==", "~", ">", "<", "=")

_EXPLAIN_DEMOS = [
    "screening --where date>=2022-03-27 --where date<=2022-03-30",
    "screening --where screening_id=5",
    "screening --join movie_id:movie:movie_id --where movie.year>1990 "
    "--order-by date --limit 5",
    "screening --where room='room A' --count",
    "movie --order-by year --desc --limit 3 --select title,year",
    # Aggregate pushdown: bucket-walking group-by and index-only MIN/MAX.
    "reservation --agg booked=sum:no_tickets --group-by screening_id",
    "screening --agg lo=min:price --agg hi=max:price --agg n=count",
    # A filtered group-by streams through the group-hash aggregate.
    "reservation --where no_tickets>=2 --agg booked=sum:no_tickets "
    "--group-by screening_id",
    # Aggregate pushdown below joins: a NOT NULL FK join is elided, a
    # group-keyed join onto a unique column becomes a per-group semi
    # probe above the aggregate.
    "reservation --join screening_id:screening:screening_id "
    "--agg booked=sum:no_tickets --group-by screening_id",
    "movie --join language_id:language:language_id "
    "--agg n=count --group-by language_id",
    # HAVING: a post-aggregate Filter selecting on the aggregate output.
    "reservation --agg booked=sum:no_tickets --group-by screening_id "
    "--having booked>=10",
    # OR of indexable equalities: a union of hash-index probes.
    "screening --where \"room='room A'|movie_id=3\"",
    # Three joins: the planner orders them by estimated cardinality.
    "screening --join screening_id:reservation:screening_id "
    "--join movie_id:movie:movie_id "
    "--join movie.language_id:language:language_id",
]

_AGG_KINDS = ("count", "sum", "avg", "min", "max", "count_distinct")


def _parse_explain_value(text: str):
    from repro.db import DataType, coerce
    from repro.errors import TypeMismatchError

    text = text.strip().strip("'\"")
    for dtype in (DataType.INTEGER, DataType.FLOAT, DataType.DATE,
                  DataType.TIME):
        try:
            return coerce(text, dtype)
        except TypeMismatchError:
            continue
    return text


def _split_disjuncts(text: str) -> list[str]:
    """Split on ``|`` outside quotes, so quoted values may contain pipes."""
    parts: list[str] = []
    buf: list[str] = []
    quote = None
    for ch in text:
        if quote is not None:
            buf.append(ch)
            if ch == quote:
                quote = None
        elif ch in "'\"":
            quote = ch
            buf.append(ch)
        elif ch == "|":
            parts.append("".join(buf))
            buf = []
        else:
            buf.append(ch)
    parts.append("".join(buf))
    return parts


def _parse_explain_condition(text: str):
    from repro.db import query as q
    from repro.errors import QueryError

    disjuncts = _split_disjuncts(text)
    if len(disjuncts) > 1:
        # A disjunction: cond|cond|...  (e.g. "room='room A'|movie_id=3")
        return q.or_(
            *[_parse_explain_condition(part) for part in disjuncts]
        )
    for op in _EXPLAIN_OPS:
        if op in text:
            column, __, value = text.partition(op)
            column = column.strip()
            parsed = _parse_explain_value(value)
            if op == "~":
                return q.contains(column, str(parsed))
            op = "==" if op == "=" else op
            return q.Comparison(column, op, parsed)
    raise QueryError(
        f"cannot parse condition {text!r} (use column<op>value with one of "
        f"{', '.join(_EXPLAIN_OPS)})"
    )


def _parse_aggregates(specs):
    """``name=kind[:column]`` strings into an Aggregate dict (or an error)."""
    from repro.db import aggregation

    factories = {
        "count": lambda column: aggregation.count(),
        "sum": aggregation.sum_,
        "avg": aggregation.avg,
        "min": aggregation.min_,
        "max": aggregation.max_,
        "count_distinct": aggregation.count_distinct,
    }
    aggregates = {}
    for item in specs:
        name, sep, rest = item.partition("=")
        kind, __, column = rest.partition(":")
        name, kind, column = name.strip(), kind.strip(), column.strip()
        if not sep or not name or kind not in _AGG_KINDS:
            return None, (
                f"bad --agg {item!r} (expected name=kind[:column] with "
                f"kind one of {', '.join(_AGG_KINDS)})"
            )
        if kind == "count":
            if column:
                return None, f"bad --agg {item!r} (count takes no column)"
            aggregates[name] = factories[kind](None)
        else:
            if not column:
                return None, f"bad --agg {item!r} ({kind} needs a column)"
            aggregates[name] = factories[kind](column)
    return aggregates, None


def _explain_one(database, args) -> int:
    from repro.db import api
    from repro.errors import DatabaseError

    if args.group_by and not args.agg:
        print("--group-by requires at least one --agg")
        return 2
    if args.having and not args.agg:
        print("--having requires at least one --agg")
        return 2
    if args.agg and args.count:
        print("--count cannot be combined with --agg "
              "(use --agg n=count instead)")
        return 2
    try:
        if args.agg:
            aggregates, error = _parse_aggregates(args.agg)
            if aggregates is None:
                print(error)
                return 2
            statement = api.aggregate(args.table, aggregates)
        else:
            statement = api.select(args.table)
        for condition in args.where or ():
            statement.where(_parse_explain_condition(condition))
        for join in args.join or ():
            parts = join.split(":")
            if len(parts) != 3:
                print(f"bad --join {join!r} (expected column:table:target)")
                return 2
            statement.join(*parts)
        if args.order_by:
            statement.order_by(args.order_by, descending=args.desc)
        if args.limit is not None:
            statement.limit(args.limit)
        if args.select:
            statement.project(*[c.strip() for c in args.select.split(",")])
        if args.count:
            statement.count()
        if args.group_by:
            statement.group_by(
                *[c.strip() for c in args.group_by.split(",")]
            )
        if args.having:
            from repro.db.query import and_

            statement.having(
                and_(*[_parse_explain_condition(c) for c in args.having])
            )
        # The unified path: compile + fingerprint once, explain the
        # plan the statement would execute.
        print(database.default_connection.prepare(statement).explain())
    except DatabaseError as exc:
        print(f"error: {exc}")
        return 2
    return 0


def _cmd_explain(args) -> int:
    import shlex

    from repro.datasets import build_movie_database

    database, __ = build_movie_database()
    if args.table is not None:
        return _explain_one(database, args)
    # No table given: walk the showcase queries.
    parser = _make_explain_parser(argparse.ArgumentParser(prog="explain"))
    for demo in _EXPLAIN_DEMOS:
        print(f"$ python -m repro explain {demo}")
        status = _explain_one(database, parser.parse_args(shlex.split(demo)))
        if status != 0:
            return status
        print()
    return 0


def _make_explain_parser(parser):
    parser.add_argument("table", nargs="?", default=None,
                        help="root table (omit to show showcase plans)")
    parser.add_argument("--where", action="append", metavar="COND",
                        help="condition, e.g. date>=2022-03-27 or title~gump")
    parser.add_argument("--join", action="append", metavar="COL:TABLE:TARGET",
                        help="equi-join root.COL = TABLE.TARGET")
    parser.add_argument("--order-by", metavar="COLUMN")
    parser.add_argument("--desc", action="store_true")
    parser.add_argument("--limit", type=int, metavar="N")
    parser.add_argument("--select", metavar="COL,COL")
    parser.add_argument("--count", action="store_true",
                        help="plan COUNT(*) instead of row retrieval")
    parser.add_argument("--agg", action="append", metavar="NAME=KIND[:COL]",
                        help="aggregate, e.g. booked=sum:no_tickets or "
                        "n=count (repeatable)")
    parser.add_argument("--group-by", metavar="COL,COL",
                        help="group the aggregates by these columns")
    parser.add_argument("--having", action="append", metavar="COND",
                        help="post-aggregate condition over the aggregate "
                        "output, e.g. booked>=10 (repeatable)")
    return parser


def _cmd_snapshot(path: str, incremental: bool = False) -> int:
    from repro.datasets import build_movie_database
    from repro.db import dump_database, dump_incremental

    database, __ = build_movie_database()
    if incremental:
        dump_incremental(database, path)
        print(f"wrote {path}/ (sealed base + delta log)")
    else:
        dump_database(database, path)
        print(f"wrote {path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CAT reproduction: synthesize data-aware conversational "
        "agents for transactional databases",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("demo", help="run a scripted Section 5 booking")
    sub.add_parser("chat", help="chat with the cinema agent")
    serve = sub.add_parser(
        "serve", help="multi-session REPL on the concurrent runtime"
    )
    serve.add_argument(
        "--session-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="expire sessions idle for this long (default: never)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="shard sessions across N worker processes "
        "(default: 0 = single-process threaded runtime)",
    )
    serve.add_argument(
        "--replicas",
        type=int,
        default=0,
        metavar="N",
        help="attach N log-shipped analytic replicas (per worker when "
        "sharded); analytic statements route to them at bounded "
        "staleness (default: 0 = none)",
    )
    sub.add_parser("report", help="print the synthesis report")
    sub.add_parser("policies", help="compare slot-selection policies")
    snapshot = sub.add_parser("snapshot", help="dump the cinema database")
    snapshot.add_argument("path", help="output JSON file (or directory "
                          "with --incremental)")
    snapshot.add_argument(
        "--incremental",
        action="store_true",
        help="write a format-v4 snapshot directory (sealed base image "
        "+ append-only delta log) instead of one JSON file",
    )
    _make_explain_parser(
        sub.add_parser(
            "explain",
            help="show the cost-based query plan on the cinema database",
        )
    )

    args = parser.parse_args(argv)
    if args.command == "demo":
        return _cmd_demo()
    if args.command == "chat":
        return _cmd_chat()
    if args.command == "serve":
        if args.workers > 0:
            return _cmd_serve_sharded(
                args.session_ttl, args.workers, args.replicas
            )
        return _cmd_serve(args.session_ttl, args.replicas)
    if args.command == "report":
        return _cmd_report()
    if args.command == "policies":
        return _cmd_policies()
    if args.command == "snapshot":
        return _cmd_snapshot(args.path, incremental=args.incremental)
    if args.command == "explain":
        return _cmd_explain(args)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
