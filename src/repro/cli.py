"""Command-line interface: ``python -m repro <command>``.

Commands mirror the demo workflow of Section 5:

* ``demo``      — synthesize the cinema agent and run a scripted booking.
* ``chat``      — synthesize the cinema agent and chat interactively.
* ``report``    — print the synthesis report (tasks, data, actions).
* ``policies``  — compare data-aware / static / random slot selection.
* ``snapshot``  — dump the cinema database to a JSON file.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main"]

_DEMO_SCRIPT = [
    "hello",
    "i want to buy 2 tickets",
    "my name is alice",
    "my last name is quandt",
    "i want to watch forest gump",
    "the first one",
    "yes please",
    "thanks, goodbye",
]


def _build_cat():
    from repro import CAT
    from repro.datasets import build_movie_database, movie_templates

    database, annotations = build_movie_database()
    cat = CAT(database, annotations)
    cat.add_template_catalog(movie_templates())
    print("synthesizing the cinema agent (trains NLU + DM) ...",
          file=sys.stderr)
    return cat, cat.synthesize()


def _cmd_demo() -> int:
    from repro import ConversationSession

    __, agent = _build_cat()
    session = ConversationSession(agent)
    for utterance in _DEMO_SCRIPT:
        session.say(utterance)
    print(session.format_transcript())
    executed = session.executed_results()
    if executed:
        print(f"\nexecuted transactions: {[r.procedure for r in executed]}")
    return 0


def _cmd_chat() -> int:
    from repro import ConversationSession

    __, agent = _build_cat()
    session = ConversationSession(agent)
    print("Chat with the cinema agent (ctrl-d or 'quit' to leave).")
    while True:
        try:
            text = input("you> ").strip()
        except EOFError:
            return 0
        if not text or text.lower() in ("quit", "exit"):
            return 0
        reply = session.say(text)
        for line in reply.text.split("\n"):
            print(f"bot> {line}")


def _cmd_report() -> int:
    cat, __ = _build_cat()
    report = cat.report()
    print(f"tasks          : {report.n_tasks}")
    print(f"templates      : {report.n_templates}")
    print(f"NLU examples   : {report.n_nlu_examples}")
    print(f"dialogue flows : {report.n_flows}")
    print(f"intents        : {', '.join(report.intents)}")
    print(f"agent actions  : {', '.join(report.agent_actions)}")
    return 0


def _cmd_policies() -> int:
    from repro.annotation import TaskExtractor
    from repro.dataaware import (
        DataAwarePolicy,
        RandomPolicy,
        StaticPolicy,
        UserAwarenessModel,
    )
    from repro.datasets import MovieConfig, build_movie_database
    from repro.db import Catalog, StatisticsCatalog
    from repro.eval import PolicyExperiment, ResultTable

    config = MovieConfig(n_screenings=600, n_movies=80, extra_dimensions=6,
                         n_actors=80, n_days=30)
    database, annotations = build_movie_database(config)
    catalog = Catalog(database)
    task = TaskExtractor(catalog, annotations).extract(
        database.procedures.get("ticket_reservation")
    )
    lookup = task.lookup_for("screening_id")
    experiment = PolicyExperiment(database, catalog, annotations, lookup)
    table = ResultTable(
        "policy comparison (screening identification)",
        ["policy", "mean_turns", "success"],
    )
    policies = [
        DataAwarePolicy(lookup, UserAwarenessModel(annotations),
                        StatisticsCatalog(database)),
        StaticPolicy.train(lookup, database, catalog, annotations),
        RandomPolicy(lookup, seed=7),
    ]
    for policy in policies:
        summary, __ = experiment.run(policy, n_episodes=40)
        table.add_row(summary.policy, summary.mean_turns,
                      summary.success_rate)
    table.show()
    return 0


def _cmd_snapshot(path: str) -> int:
    from repro.datasets import build_movie_database
    from repro.db import dump_database

    database, __ = build_movie_database()
    dump_database(database, path)
    print(f"wrote {path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CAT reproduction: synthesize data-aware conversational "
        "agents for transactional databases",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("demo", help="run a scripted Section 5 booking")
    sub.add_parser("chat", help="chat with the cinema agent")
    sub.add_parser("report", help="print the synthesis report")
    sub.add_parser("policies", help="compare slot-selection policies")
    snapshot = sub.add_parser("snapshot", help="dump the cinema database")
    snapshot.add_argument("path", help="output JSON file")

    args = parser.parse_args(argv)
    if args.command == "demo":
        return _cmd_demo()
    if args.command == "chat":
        return _cmd_chat()
    if args.command == "report":
        return _cmd_report()
    if args.command == "policies":
        return _cmd_policies()
    if args.command == "snapshot":
        return _cmd_snapshot(args.path)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
