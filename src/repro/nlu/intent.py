"""Intent classification: multinomial logistic regression in numpy.

A deliberately simple but competitive model for short-utterance intent
classification: bag-of-n-grams features into a softmax layer trained
with mini-batch gradient descent, L2 regularisation and early stopping.
This stands in for the neural intent classifier RASA would train; the
paper's claim (synthesized training data suffices) is model-agnostic.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NLUError, NotFittedError
from repro.nlu.features import NGramFeaturizer
from repro.synthesis.corpus import NLUDataset

__all__ = ["IntentClassifier", "IntentPrediction"]


class IntentPrediction:
    """Ranked intent hypothesis list for one utterance."""

    def __init__(self, ranking: list[tuple[str, float]]) -> None:
        if not ranking:
            raise NLUError("empty intent ranking")
        self.ranking = ranking

    @property
    def intent(self) -> str:
        return self.ranking[0][0]

    @property
    def confidence(self) -> float:
        return self.ranking[0][1]


class IntentClassifier:
    """Softmax regression over n-gram features."""

    def __init__(
        self,
        learning_rate: float = 0.5,
        l2: float = 1e-4,
        epochs: int = 60,
        batch_size: int = 32,
        seed: int = 5,
        featurizer: NGramFeaturizer | None = None,
    ) -> None:
        self.learning_rate = learning_rate
        self.l2 = l2
        self.epochs = epochs
        self.batch_size = batch_size
        self.seed = seed
        self.featurizer = featurizer or NGramFeaturizer()
        self._labels: list[str] | None = None
        self._weights: np.ndarray | None = None
        self._bias: np.ndarray | None = None

    # ------------------------------------------------------------------
    @property
    def labels(self) -> list[str]:
        if self._labels is None:
            raise NotFittedError("intent classifier is not trained")
        return list(self._labels)

    def fit(self, dataset: NLUDataset) -> "IntentClassifier":
        if len(dataset) == 0:
            raise NLUError("cannot train on an empty dataset")
        texts = [e.text for e in dataset]
        self._labels = sorted({e.intent for e in dataset})
        label_index = {label: i for i, label in enumerate(self._labels)}
        targets = np.array([label_index[e.intent] for e in dataset])

        features = self.featurizer.fit_transform(texts)
        n_samples, n_features = features.shape
        n_classes = len(self._labels)
        rng = np.random.default_rng(self.seed)
        weights = np.zeros((n_features, n_classes))
        bias = np.zeros(n_classes)

        one_hot = np.zeros((n_samples, n_classes))
        one_hot[np.arange(n_samples), targets] = 1.0

        # Inverse-frequency sample weights: synthesized corpora are heavily
        # skewed towards slot-rich intents (many templates x many fillings),
        # which would otherwise drown the short generic intents.
        class_counts = one_hot.sum(axis=0)
        class_weights = n_samples / (n_classes * np.maximum(class_counts, 1.0))
        sample_weights = class_weights[targets]

        for epoch in range(self.epochs):
            order = rng.permutation(n_samples)
            for start in range(0, n_samples, self.batch_size):
                batch = order[start : start + self.batch_size]
                x = features[batch]
                y = one_hot[batch]
                w = sample_weights[batch][:, None]
                probabilities = _softmax(x @ weights + bias)
                error = (probabilities - y) * w
                gradient = x.T @ error / len(batch)
                weights -= self.learning_rate * (gradient + self.l2 * weights)
                bias -= self.learning_rate * error.mean(axis=0)
        self._weights = weights
        self._bias = bias
        return self

    # ------------------------------------------------------------------
    def predict_proba(self, texts: list[str]) -> np.ndarray:
        if self._weights is None or self._bias is None or self._labels is None:
            raise NotFittedError("intent classifier is not trained")
        features = self.featurizer.transform(texts)
        return _softmax(features @ self._weights + self._bias)

    def predict(self, text: str) -> IntentPrediction:
        probabilities = self.predict_proba([text])[0]
        order = np.argsort(-probabilities)
        ranking = [
            (self.labels[i], float(probabilities[i])) for i in order
        ]
        return IntentPrediction(ranking)

    def accuracy(self, dataset: NLUDataset) -> float:
        """Fraction of examples whose top intent is correct."""
        if len(dataset) == 0:
            raise NLUError("cannot evaluate on an empty dataset")
        probabilities = self.predict_proba([e.text for e in dataset])
        predicted = np.argmax(probabilities, axis=1)
        label_index = {label: i for i, label in enumerate(self.labels)}
        correct = sum(
            1
            for example, hypothesis in zip(dataset, predicted)
            if label_index.get(example.intent, -1) == hypothesis
        )
        return correct / len(dataset)


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)
