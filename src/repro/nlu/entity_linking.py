"""Entity linking: ground extracted slot values in the database.

After the tagger finds a slot value span ("forest gump"), the linker
resolves it against the *actual* values stored in the referenced column
("Forrest Gump") via fuzzy matching — this is how the demo agent
"corrects misspellings" and how free-text user input becomes a typed,
canonical value the candidate set can be refined with.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from typing import Any

from repro.db.database import Database
from repro.db.types import DataType, TypeMismatchError, coerce, render
from repro.db.versioncache import VersionStampedCache
from repro.nlu.textmatch import best_match
from repro.synthesis.templates import SlotVocabulary

__all__ = ["LinkedValue", "EntityLinker"]

_RELATIVE_DAYS = {
    "today": 0,
    "tonight": 0,
    "this evening": 0,
    "tomorrow": 1,
    "day after tomorrow": 2,
}


@dataclass(frozen=True)
class LinkedValue:
    """A slot value resolved to a canonical database value."""

    slot: str
    raw: str
    value: Any
    score: float
    corrected: bool

    @property
    def display(self) -> str:
        return str(self.value)


class EntityLinker:
    """Resolves raw slot strings to canonical typed values."""

    def __init__(
        self,
        database: Database,
        vocabulary: SlotVocabulary,
        fuzzy_threshold: float = 0.72,
        reference_date: _dt.date | None = None,
    ) -> None:
        self._database = database
        self._vocabulary = vocabulary
        self._fuzzy_threshold = fuzzy_threshold
        self.reference_date = reference_date
        # slot -> canonical values; version-stamped like the other
        # shared caches, since one linker serves every concurrent
        # session and must see committed inserts (a newly added movie
        # title must become linkable).
        self._text_pools = VersionStampedCache(database)

    def link(self, slot: str, raw: str) -> LinkedValue | None:
        """Canonicalise ``raw`` for ``slot``; ``None`` when unresolvable."""
        source = self._vocabulary.source(slot)
        if source.dtype is DataType.TEXT and source.attribute is not None:
            return self._link_text(slot, raw)
        if source.dtype is DataType.DATE:
            relative = self._relative_date(raw)
            if relative is not None:
                return LinkedValue(slot=slot, raw=raw, value=relative,
                                   score=1.0, corrected=False)
        try:
            value = coerce(raw, source.dtype)
        except TypeMismatchError:
            extracted = _extract_typed(raw, source.dtype)
            if extracted is None:
                return None
            value = extracted
        return LinkedValue(slot=slot, raw=raw, value=value, score=1.0,
                           corrected=False)

    def _relative_date(self, raw: str) -> _dt.date | None:
        """Resolve "today"/"tonight"/"tomorrow" against the reference date."""
        base = self.reference_date or _dt.date.today()
        lowered = raw.strip().lower()
        for phrase in sorted(_RELATIVE_DAYS, key=len, reverse=True):
            if phrase in lowered:
                return base + _dt.timedelta(days=_RELATIVE_DAYS[phrase])
        return None

    # ------------------------------------------------------------------
    def _link_text(self, slot: str, raw: str) -> LinkedValue | None:
        pool = self._text_pool(slot)
        if not pool:
            return LinkedValue(slot=slot, raw=raw, value=raw, score=0.5,
                               corrected=False)
        match = best_match(raw, pool, threshold=self._fuzzy_threshold)
        if match is None:
            return None
        value, score = match
        corrected = value.strip().lower() != raw.strip().lower()
        return LinkedValue(slot=slot, raw=raw, value=value, score=score,
                           corrected=corrected)

    def _text_pool(self, slot: str) -> list[str]:
        return self._text_pools.lookup(slot, lambda: self._build_pool(slot))

    def _build_pool(self, slot: str) -> list[str]:
        source = self._vocabulary.source(slot)
        assert source.attribute is not None
        table = source.attribute.table
        column = source.attribute.column
        # A grouped streaming aggregate prepared once per attribute and
        # pooled on the shared connection: one row per *distinct*
        # column value, no per-row dict materialisation.  Rebuilds
        # happen once per data version per slot, so even that cost is
        # off the turn path.
        from repro.db import api
        from repro.db.aggregation import count

        statement = self._database.default_connection.prepare_cached(
            ("linker.pool", table, column),
            lambda: api.aggregate(table, n=count()).group_by(column),
        )
        values = {
            render(group[column], source.dtype)
            for group in statement.execute()
            if group[column] is not None
        }
        return sorted(values)

    def invalidate(self) -> None:
        """Drop cached value pools (they also refresh automatically when
        the data version moves)."""
        self._text_pools.invalidate()


def _extract_typed(raw: str, dtype: DataType) -> Any | None:
    """Salvage a typed value from noisy text ("4 tickets please" -> 4)."""
    words = raw.replace(",", " ").split()
    for word in words:
        try:
            return coerce(word, dtype)
        except TypeMismatchError:
            continue
    # Try two-word windows for dates/times like "march 28 2022".
    for size in (2, 3):
        for start in range(len(words) - size + 1):
            chunk = " ".join(words[start : start + size])
            try:
                return coerce(chunk, dtype)
            except TypeMismatchError:
                continue
    word_numbers = {
        "one": 1, "two": 2, "three": 3, "four": 4, "five": 5, "six": 6,
        "seven": 7, "eight": 8, "nine": 9, "ten": 10,
    }
    if dtype is DataType.INTEGER:
        for word in words:
            number = word_numbers.get(word.lower())
            if number is not None:
                return number
    return None
