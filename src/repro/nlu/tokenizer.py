"""Offset-preserving tokenizer and BIO span conversion.

The slot tagger is trained on token-level BIO labels, but the synthesized
corpus annotates character spans.  The tokenizer keeps exact character
offsets so the two views convert losslessly in both directions.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.synthesis.corpus import SlotSpan

__all__ = ["Token", "tokenize", "spans_to_bio", "bio_to_spans"]

_TOKEN_RE = re.compile(r"[A-Za-z0-9']+|[^\sA-Za-z0-9]")

OUTSIDE = "O"


@dataclass(frozen=True)
class Token:
    """One token with its exact character span in the source text."""

    text: str
    start: int
    end: int

    @property
    def lower(self) -> str:
        return self.text.lower()


def tokenize(text: str) -> list[Token]:
    """Split ``text`` into word/punctuation tokens with offsets."""
    return [
        Token(m.group(0), m.start(), m.end()) for m in _TOKEN_RE.finditer(text)
    ]


def spans_to_bio(tokens: list[Token], spans: tuple[SlotSpan, ...]) -> list[str]:
    """Project character-span slot annotations onto BIO token labels.

    A token belongs to a span when their character ranges overlap.  Spans
    that do not align with any token are ignored (they cannot be learned
    or predicted at token level anyway).
    """
    labels = [OUTSIDE] * len(tokens)
    for span in spans:
        inside = False
        for i, token in enumerate(tokens):
            overlaps = token.start < span.end and token.end > span.start
            if overlaps:
                labels[i] = f"{'I' if inside else 'B'}-{span.name}"
                inside = True
            elif inside and token.start >= span.end:
                break
    return labels


def bio_to_spans(text: str, tokens: list[Token], labels: list[str]) -> list[SlotSpan]:
    """Convert predicted BIO labels back into character-span slots."""
    spans: list[SlotSpan] = []
    current_name: str | None = None
    current_start = 0
    current_end = 0
    for token, label in zip(tokens, labels):
        if label.startswith("B-"):
            if current_name is not None:
                spans.append(_make_span(text, current_name, current_start, current_end))
            current_name = label[2:]
            current_start = token.start
            current_end = token.end
        elif label.startswith("I-") and current_name == label[2:]:
            current_end = token.end
        else:
            if current_name is not None:
                spans.append(_make_span(text, current_name, current_start, current_end))
                current_name = None
            if label.startswith("I-"):
                # Orphan I- tag: treat as a new span (robust decoding).
                current_name = label[2:]
                current_start = token.start
                current_end = token.end
    if current_name is not None:
        spans.append(_make_span(text, current_name, current_start, current_end))
    return spans


def _make_span(text: str, name: str, start: int, end: int) -> SlotSpan:
    return SlotSpan(name=name, value=text[start:end], start=start, end=end)
