"""Baseline models for the NLU evaluation (Section 3's comparison).

The paper compares CAT (trained on synthesized data only) against
"state-of-the-art approaches for intent classification and slot filling"
that require manually crafted training data.  We implement the classic
baseline ladder:

* :class:`MajorityIntentBaseline` — predicts the most frequent intent.
* :class:`KeywordIntentBaseline` — class-conditional keyword scoring
  (a naive-Bayes-style bag of words).
* :class:`NearestNeighborIntentBaseline` — 1-NN over n-gram vectors.
* :class:`GazetteerSlotBaseline` — dictionary slot filler that matches
  known training values in the utterance (no learning beyond a lexicon).
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict

import numpy as np

from repro.errors import NLUError, NotFittedError
from repro.nlu.features import NGramFeaturizer
from repro.nlu.tokenizer import tokenize
from repro.synthesis.corpus import NLUDataset, SlotSpan

__all__ = [
    "MajorityIntentBaseline",
    "KeywordIntentBaseline",
    "NearestNeighborIntentBaseline",
    "GazetteerSlotBaseline",
]


class MajorityIntentBaseline:
    """Always predicts the most frequent training intent."""

    name = "majority"

    def __init__(self) -> None:
        self._intent: str | None = None

    def fit(self, dataset: NLUDataset) -> "MajorityIntentBaseline":
        if len(dataset) == 0:
            raise NLUError("cannot train on an empty dataset")
        counts = Counter(e.intent for e in dataset)
        self._intent = counts.most_common(1)[0][0]
        return self

    def predict_intent(self, text: str) -> str:
        if self._intent is None:
            raise NotFittedError("majority baseline is not trained")
        return self._intent

    def accuracy(self, dataset: NLUDataset) -> float:
        return _intent_accuracy(self, dataset)


class KeywordIntentBaseline:
    """Multinomial naive Bayes over unigrams with add-one smoothing."""

    name = "keyword"

    def __init__(self) -> None:
        self._priors: dict[str, float] | None = None
        self._likelihoods: dict[str, dict[str, float]] | None = None
        self._default: dict[str, float] | None = None

    def fit(self, dataset: NLUDataset) -> "KeywordIntentBaseline":
        if len(dataset) == 0:
            raise NLUError("cannot train on an empty dataset")
        word_counts: dict[str, Counter] = defaultdict(Counter)
        intent_counts: Counter = Counter()
        vocabulary: set[str] = set()
        for example in dataset:
            intent_counts[example.intent] += 1
            for token in tokenize(example.text):
                word_counts[example.intent][token.lower] += 1
                vocabulary.add(token.lower)
        total = sum(intent_counts.values())
        self._priors = {
            intent: math.log(count / total)
            for intent, count in intent_counts.items()
        }
        self._likelihoods = {}
        self._default = {}
        v = len(vocabulary) or 1
        for intent, counts in word_counts.items():
            denominator = sum(counts.values()) + v
            self._likelihoods[intent] = {
                word: math.log((count + 1) / denominator)
                for word, count in counts.items()
            }
            self._default[intent] = math.log(1 / denominator)
        return self

    def predict_intent(self, text: str) -> str:
        if self._priors is None or self._likelihoods is None or self._default is None:
            raise NotFittedError("keyword baseline is not trained")
        words = [t.lower for t in tokenize(text)]
        best_intent, best_score = None, float("-inf")
        for intent, prior in self._priors.items():
            score = prior
            likelihood = self._likelihoods[intent]
            default = self._default[intent]
            for word in words:
                score += likelihood.get(word, default)
            if score > best_score:
                best_intent, best_score = intent, score
        assert best_intent is not None
        return best_intent

    def accuracy(self, dataset: NLUDataset) -> float:
        return _intent_accuracy(self, dataset)


class NearestNeighborIntentBaseline:
    """1-nearest-neighbour over n-gram feature vectors (cosine)."""

    name = "nearest_neighbor"

    def __init__(self, featurizer: NGramFeaturizer | None = None) -> None:
        self.featurizer = featurizer or NGramFeaturizer(use_char_trigrams=False)
        self._matrix: np.ndarray | None = None
        self._intents: list[str] | None = None

    def fit(self, dataset: NLUDataset) -> "NearestNeighborIntentBaseline":
        if len(dataset) == 0:
            raise NLUError("cannot train on an empty dataset")
        self._matrix = self.featurizer.fit_transform([e.text for e in dataset])
        self._intents = [e.intent for e in dataset]
        return self

    def predict_intent(self, text: str) -> str:
        if self._matrix is None or self._intents is None:
            raise NotFittedError("nearest-neighbor baseline is not trained")
        vector = self.featurizer.transform([text])[0]
        similarities = self._matrix @ vector
        return self._intents[int(np.argmax(similarities))]

    def accuracy(self, dataset: NLUDataset) -> float:
        return _intent_accuracy(self, dataset)


class GazetteerSlotBaseline:
    """Slot filler that string-matches values seen in training data.

    Builds a value -> slot-name lexicon from the training annotations and
    finds the longest non-overlapping matches in the input.
    """

    name = "gazetteer"

    def __init__(self) -> None:
        self._lexicon: dict[str, str] | None = None

    def fit(self, dataset: NLUDataset) -> "GazetteerSlotBaseline":
        lexicon: dict[str, str] = {}
        for example in dataset:
            for span in example.slots:
                lexicon[span.value.lower()] = span.name
        self._lexicon = lexicon
        return self

    def tag(self, text: str) -> list[SlotSpan]:
        if self._lexicon is None:
            raise NotFittedError("gazetteer baseline is not trained")
        lowered = text.lower()
        matches: list[SlotSpan] = []
        # Longest values first so e.g. "new york city" beats "new york".
        for value in sorted(self._lexicon, key=len, reverse=True):
            start = lowered.find(value)
            while start != -1:
                end = start + len(value)
                if not _word_aligned(lowered, start, end):
                    start = lowered.find(value, start + 1)
                    continue
                if not any(s.start < end and s.end > start for s in matches):
                    matches.append(
                        SlotSpan(
                            name=self._lexicon[value],
                            value=text[start:end],
                            start=start,
                            end=end,
                        )
                    )
                start = lowered.find(value, end)
        matches.sort(key=lambda s: s.start)
        return matches


def _word_aligned(text: str, start: int, end: int) -> bool:
    before_ok = start == 0 or not text[start - 1].isalnum()
    after_ok = end == len(text) or not text[end].isalnum()
    return before_ok and after_ok


def _intent_accuracy(model, dataset: NLUDataset) -> float:
    if len(dataset) == 0:
        raise NLUError("cannot evaluate on an empty dataset")
    correct = sum(
        1 for e in dataset if model.predict_intent(e.text) == e.intent
    )
    return correct / len(dataset)
