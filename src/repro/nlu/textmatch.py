"""String-similarity primitives (re-exported from :mod:`repro.textutil`).

Kept as an alias module so NLU code can import matching helpers from its
own package; the implementation lives in :mod:`repro.textutil` because
the candidate-set machinery needs it without importing the NLU package.
"""

from repro.textutil import (
    best_match,
    levenshtein,
    normalized_edit_similarity,
    trigram_similarity,
    trigrams,
)

__all__ = [
    "best_match",
    "levenshtein",
    "normalized_edit_similarity",
    "trigram_similarity",
    "trigrams",
]
