"""Natural-language understanding: intent, slots, entity linking."""

from repro.nlu.baselines import (
    GazetteerSlotBaseline,
    KeywordIntentBaseline,
    MajorityIntentBaseline,
    NearestNeighborIntentBaseline,
)
from repro.nlu.entity_linking import EntityLinker, LinkedValue
from repro.nlu.features import NGramFeaturizer
from repro.nlu.intent import IntentClassifier, IntentPrediction
from repro.nlu.pipeline import (
    FALLBACK_INTENT,
    NLUPipeline,
    NLUResult,
    build_gazetteers,
)
from repro.nlu.slots import SlotTagger
from repro.nlu.textmatch import (
    best_match,
    levenshtein,
    normalized_edit_similarity,
    trigram_similarity,
    trigrams,
)
from repro.nlu.tokenizer import Token, bio_to_spans, spans_to_bio, tokenize

__all__ = [
    "FALLBACK_INTENT",
    "EntityLinker",
    "GazetteerSlotBaseline",
    "IntentClassifier",
    "IntentPrediction",
    "KeywordIntentBaseline",
    "LinkedValue",
    "MajorityIntentBaseline",
    "NGramFeaturizer",
    "NLUPipeline",
    "NLUResult",
    "NearestNeighborIntentBaseline",
    "SlotTagger",
    "Token",
    "best_match",
    "build_gazetteers",
    "bio_to_spans",
    "levenshtein",
    "normalized_edit_similarity",
    "spans_to_bio",
    "tokenize",
    "trigram_similarity",
    "trigrams",
]
