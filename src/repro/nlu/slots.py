"""Slot filling: averaged structured perceptron over BIO tags.

A classic, dependency-free sequence labeller: hand-crafted per-token
features (word identity, shape, affixes, context window) scored against
label weights plus first-order transition weights, decoded with Viterbi
and trained with averaged perceptron updates.  This is the from-scratch
equivalent of the CRF-style slot filler RASA trains.
"""

from __future__ import annotations

import random
from collections import defaultdict

from repro.errors import NLUError, NotFittedError
from repro.nlu.tokenizer import Token, bio_to_spans, spans_to_bio, tokenize
from repro.synthesis.corpus import NLUDataset, SlotSpan

__all__ = ["SlotTagger"]

_OUTSIDE = "O"
_START = "<s>"


def _shape(word: str) -> str:
    out = []
    for char in word:
        if char.isupper():
            out.append("X")
        elif char.islower():
            out.append("x")
        elif char.isdigit():
            out.append("d")
        else:
            out.append(char)
    # Collapse runs so shapes generalise ("Xxxxx" -> "Xx+").
    collapsed: list[str] = []
    for char in out:
        if collapsed and collapsed[-1] == char:
            continue
        collapsed.append(char)
    return "".join(collapsed)


def _token_features(
    tokens: list[Token],
    index: int,
    gazetteers: dict[str, frozenset[str]] | None = None,
) -> list[str]:
    token = tokens[index]
    word = token.lower
    features = [
        f"w={word}",
        f"shape={_shape(token.text)}",
        f"pre2={word[:2]}",
        f"pre3={word[:3]}",
        f"suf2={word[-2:]}",
        f"suf3={word[-3:]}",
        f"isdigit={word.isdigit()}",
    ]
    if index == 0:
        features.append("bos")
    else:
        features.append(f"w-1={tokens[index - 1].lower}")
    if index == len(tokens) - 1:
        features.append("eos")
    else:
        features.append(f"w+1={tokens[index + 1].lower}")
    if index >= 2:
        features.append(f"w-2={tokens[index - 2].lower}")
    if index + 2 < len(tokens):
        features.append(f"w+2={tokens[index + 2].lower}")
    if gazetteers:
        for slot_name, lexicon in gazetteers.items():
            if word in lexicon:
                features.append(f"gaz={slot_name}")
    return features


class SlotTagger:
    """Averaged structured perceptron BIO tagger.

    ``gazetteers`` maps slot names to lower-cased token lexicons (e.g.
    every word of every movie title); membership becomes a feature, the
    equivalent of RASA's lookup tables.
    """

    def __init__(
        self,
        epochs: int = 8,
        seed: int = 11,
        gazetteers: dict[str, frozenset[str]] | None = None,
    ) -> None:
        self.epochs = epochs
        self.seed = seed
        self.gazetteers = gazetteers or {}
        self._labels: list[str] | None = None
        self._weights: dict[tuple[str, str], float] | None = None
        self._transitions: dict[tuple[str, str], float] | None = None

    # ------------------------------------------------------------------
    @property
    def labels(self) -> list[str]:
        if self._labels is None:
            raise NotFittedError("slot tagger is not trained")
        return list(self._labels)

    def fit(self, dataset: NLUDataset) -> "SlotTagger":
        if len(dataset) == 0:
            raise NLUError("cannot train on an empty dataset")
        sequences: list[tuple[list[Token], list[str]]] = []
        label_set = {_OUTSIDE}
        for example in dataset:
            tokens = tokenize(example.text)
            if not tokens:
                continue
            labels = spans_to_bio(tokens, example.slots)
            label_set.update(labels)
            sequences.append((tokens, labels))
        self._labels = sorted(label_set)

        weights: dict[tuple[str, str], float] = defaultdict(float)
        transitions: dict[tuple[str, str], float] = defaultdict(float)
        totals_w: dict[tuple[str, str], float] = defaultdict(float)
        totals_t: dict[tuple[str, str], float] = defaultdict(float)
        stamps_w: dict[tuple[str, str], int] = defaultdict(int)
        stamps_t: dict[tuple[str, str], int] = defaultdict(int)
        step = 0

        rng = random.Random(self.seed)
        for __ in range(self.epochs):
            rng.shuffle(sequences)
            for tokens, gold in sequences:
                step += 1
                predicted = self._viterbi(tokens, weights, transitions)
                if predicted == gold:
                    continue
                previous_gold, previous_pred = _START, _START
                for i in range(len(tokens)):
                    if predicted[i] != gold[i]:
                        for feature in _token_features(tokens, i, self.gazetteers):
                            _update(weights, totals_w, stamps_w, step,
                                    (feature, gold[i]), 1.0)
                            _update(weights, totals_w, stamps_w, step,
                                    (feature, predicted[i]), -1.0)
                    gold_edge = (previous_gold, gold[i])
                    pred_edge = (previous_pred, predicted[i])
                    if gold_edge != pred_edge:
                        _update(transitions, totals_t, stamps_t, step,
                                gold_edge, 1.0)
                        _update(transitions, totals_t, stamps_t, step,
                                pred_edge, -1.0)
                    previous_gold, previous_pred = gold[i], predicted[i]

        # Finalise averaging.
        for key, weight in weights.items():
            totals_w[key] += (step - stamps_w[key]) * weight
        for key, weight in transitions.items():
            totals_t[key] += (step - stamps_t[key]) * weight
        denominator = max(step, 1)
        self._weights = {k: v / denominator for k, v in totals_w.items() if v}
        self._transitions = {k: v / denominator for k, v in totals_t.items() if v}
        return self

    # ------------------------------------------------------------------
    def tag(self, text: str) -> list[SlotSpan]:
        """Predict character-span slots for ``text``."""
        if self._weights is None or self._transitions is None:
            raise NotFittedError("slot tagger is not trained")
        tokens = tokenize(text)
        if not tokens:
            return []
        labels = self._viterbi(tokens, self._weights, self._transitions)
        return bio_to_spans(text, tokens, labels)

    # ------------------------------------------------------------------
    def _viterbi(
        self,
        tokens: list[Token],
        weights: dict[tuple[str, str], float],
        transitions: dict[tuple[str, str], float],
    ) -> list[str]:
        assert self._labels is not None
        labels = self._labels
        n = len(tokens)
        scores = [dict.fromkeys(labels, float("-inf")) for __ in range(n)]
        back: list[dict[str, str]] = [{} for __ in range(n)]

        features0 = _token_features(tokens, 0, self.gazetteers)
        for label in labels:
            emission = sum(weights.get((f, label), 0.0) for f in features0)
            scores[0][label] = emission + transitions.get((_START, label), 0.0)

        for i in range(1, n):
            features = _token_features(tokens, i, self.gazetteers)
            emissions = {
                label: sum(weights.get((f, label), 0.0) for f in features)
                for label in labels
            }
            for label in labels:
                best_prev, best_score = None, float("-inf")
                for previous in labels:
                    score = (
                        scores[i - 1][previous]
                        + transitions.get((previous, label), 0.0)
                    )
                    if score > best_score:
                        best_prev, best_score = previous, score
                scores[i][label] = best_score + emissions[label]
                back[i][label] = best_prev or _OUTSIDE

        last = max(labels, key=lambda lb: scores[n - 1][lb])
        path = [last]
        for i in range(n - 1, 0, -1):
            path.append(back[i][path[-1]])
        path.reverse()
        return path


def _update(
    weights: dict[tuple[str, str], float],
    totals: dict[tuple[str, str], float],
    stamps: dict[tuple[str, str], int],
    step: int,
    key: tuple[str, str],
    delta: float,
) -> None:
    totals[key] += (step - stamps[key]) * weights[key]
    stamps[key] = step
    weights[key] += delta
