"""Bag-of-n-gram featurizer for the intent classifier.

Builds a vocabulary of word unigrams, bigrams and character trigrams
from the training corpus and maps utterances to L2-normalised count
vectors (dense numpy — intent vocabularies in this setting stay small).
"""

from __future__ import annotations

import numpy as np

from repro.errors import NotFittedError
from repro.nlu.tokenizer import tokenize

__all__ = ["NGramFeaturizer"]


class NGramFeaturizer:
    """Fits an n-gram vocabulary and vectorises utterances."""

    def __init__(
        self,
        use_bigrams: bool = True,
        use_char_trigrams: bool = True,
        min_count: int = 1,
        max_features: int = 20000,
    ) -> None:
        self.use_bigrams = use_bigrams
        self.use_char_trigrams = use_char_trigrams
        self.min_count = min_count
        self.max_features = max_features
        self._vocabulary: dict[str, int] | None = None

    # ------------------------------------------------------------------
    @property
    def n_features(self) -> int:
        if self._vocabulary is None:
            raise NotFittedError("featurizer is not fitted")
        return len(self._vocabulary)

    def fit(self, texts: list[str]) -> "NGramFeaturizer":
        counts: dict[str, int] = {}
        for text in texts:
            for feature in self._extract(text):
                counts[feature] = counts.get(feature, 0) + 1
        kept = [f for f, c in counts.items() if c >= self.min_count]
        kept.sort(key=lambda f: (-counts[f], f))
        kept = kept[: self.max_features]
        self._vocabulary = {feature: i for i, feature in enumerate(sorted(kept))}
        return self

    def transform(self, texts: list[str]) -> np.ndarray:
        if self._vocabulary is None:
            raise NotFittedError("featurizer is not fitted")
        matrix = np.zeros((len(texts), len(self._vocabulary)), dtype=np.float64)
        for row, text in enumerate(texts):
            for feature in self._extract(text):
                column = self._vocabulary.get(feature)
                if column is not None:
                    matrix[row, column] += 1.0
        norms = np.linalg.norm(matrix, axis=1, keepdims=True)
        norms[norms == 0.0] = 1.0
        return matrix / norms

    def fit_transform(self, texts: list[str]) -> np.ndarray:
        return self.fit(texts).transform(texts)

    # ------------------------------------------------------------------
    def _extract(self, text: str) -> list[str]:
        tokens = [t.lower for t in tokenize(text)]
        features = [f"w:{t}" for t in tokens]
        if self.use_bigrams:
            features.extend(
                f"b:{left}_{right}" for left, right in zip(tokens, tokens[1:])
            )
        if self.use_char_trigrams:
            padded = f"  {text.lower()} "
            features.extend(
                f"c:{padded[i:i + 3]}" for i in range(len(padded) - 2)
            )
        return features
