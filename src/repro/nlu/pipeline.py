"""The NLU pipeline: text -> intent + linked slot values.

Chains the intent classifier, the BIO slot tagger and the entity linker
into the single ``parse`` entry point the agent runtime uses.  Low-
confidence intent predictions fall back to a dedicated ``fallback``
intent so the dialogue manager can ask the user to rephrase.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db.database import Database
from repro.nlu.entity_linking import EntityLinker, LinkedValue
from repro.nlu.intent import IntentClassifier
from repro.nlu.slots import SlotTagger
from repro.synthesis.corpus import NLUDataset, SlotSpan
from repro.synthesis.templates import SlotVocabulary

__all__ = ["NLUResult", "NLUPipeline", "FALLBACK_INTENT", "build_gazetteers"]

FALLBACK_INTENT = "fallback"


def build_gazetteers(
    database: Database, vocabulary: SlotVocabulary
) -> dict[str, frozenset[str]]:
    """Token lexicons per text slot, built from the live column values.

    Every word of every stored value of the slot's source column becomes
    a gazetteer token (the equivalent of RASA lookup tables, but derived
    from the database for free).
    """
    from repro.db.types import DataType
    from repro.nlu.tokenizer import tokenize

    gazetteers: dict[str, frozenset[str]] = {}
    for slot_name in vocabulary.names():
        source = vocabulary.source(slot_name)
        if source.attribute is None or source.dtype is not DataType.TEXT:
            continue
        table = database.table(source.attribute.table)
        words: set[str] = set()
        for value in table.column_values(source.attribute.column):
            if isinstance(value, str):
                words.update(t.lower for t in tokenize(value))
        if words:
            gazetteers[slot_name] = frozenset(words)
    return gazetteers


@dataclass(frozen=True)
class NLUResult:
    """Parsed user utterance."""

    text: str
    intent: str
    confidence: float
    slots: tuple[SlotSpan, ...] = ()
    linked: tuple[LinkedValue, ...] = ()

    def linked_value(self, slot: str) -> LinkedValue | None:
        for value in self.linked:
            if value.slot == slot:
                return value
        return None


class NLUPipeline:
    """Trainable intent + slots + linking pipeline."""

    def __init__(
        self,
        database: Database,
        vocabulary: SlotVocabulary,
        confidence_threshold: float = 0.25,
        intent: IntentClassifier | None = None,
        tagger: SlotTagger | None = None,
        linker: EntityLinker | None = None,
        reference_date=None,
    ) -> None:
        self._database = database
        self._vocabulary = vocabulary
        self.confidence_threshold = confidence_threshold
        self.intent = intent or IntentClassifier()
        self.tagger = tagger or SlotTagger(
            gazetteers=build_gazetteers(database, vocabulary)
        )
        self.linker = linker or EntityLinker(
            database, vocabulary, reference_date=reference_date
        )

    # ------------------------------------------------------------------
    def train(self, dataset: NLUDataset) -> "NLUPipeline":
        self.intent.fit(dataset)
        self.tagger.fit(dataset)
        return self

    # ------------------------------------------------------------------
    def parse(self, text: str) -> NLUResult:
        prediction = self.intent.predict(text)
        intent = prediction.intent
        confidence = prediction.confidence
        if confidence < self.confidence_threshold:
            intent = FALLBACK_INTENT
        spans = tuple(self.tagger.tag(text))
        linked: list[LinkedValue] = []
        for span in spans:
            if span.name not in self._vocabulary:
                continue
            value = self.linker.link(span.name, span.value)
            if value is not None:
                linked.append(value)
        return NLUResult(
            text=text,
            intent=intent,
            confidence=confidence,
            slots=spans,
            linked=tuple(linked),
        )
