"""The replica manager: bootstrap, staleness accounting and routing.

:class:`ReplicaManager` owns N analytic replicas of one primary
database.  Each replica bootstraps from a format-v4 snapshot taken
under the commit latch (so its image and its starting LSN agree
exactly), runs with its autotuner off (physical design follows the
bootstrap image; the primary's self-driving loop stays the single
authority), compacts straight into sealed shape, and catches up through
a :class:`~repro.replication.applier.ReplicaApplier` tailing the
primary's :class:`~repro.replication.log.ReplicationLog`.

The routing contract is **graceful degradation, never an error**:

* :meth:`read` hands out the freshest replica connection within the
  staleness bound, round-robining across eligible replicas, and falls
  through to the primary's own connection when every replica is too
  stale, dead or mid-resync;
* :meth:`wait_for` blocks until every live replica applied a target
  LSN (read-your-writes for callers that need it);
* :meth:`lag` reports the frontier in both LSNs and seconds, measured
  from the commit stamp of the oldest record the best replica has not
  applied.

A killed replica (:meth:`kill_replica`) never blocks primary commits —
the log keeps accepting them — and :meth:`reattach_replica` resumes
from the ring or the on-disk tail when the history is still reachable,
or re-bootstraps from a fresh snapshot when it is not.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.db.persistence import dumps_database, loads_database
from repro.replication.applier import ReplicaApplier
from repro.replication.log import ReplicationLog

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.db.api import Connection
    from repro.db.database import Database

__all__ = ["ReplicaManager", "ReplicationLag"]


@dataclass(frozen=True)
class ReplicationLag:
    """The replication frontier as :meth:`ReplicaManager.lag` reports it.

    ``replica_lsn`` is the freshest live replica's applied LSN (what a
    routed read would observe); ``seconds`` its wall-clock staleness —
    ``None`` when no replica is live.
    """

    primary_lsn: int
    replica_lsn: int
    seconds: float | None
    replicas_live: int

    @property
    def lsn(self) -> int:
        return max(0, self.primary_lsn - self.replica_lsn)


class _Replica:
    """One replica slot: database, its connection, its applier."""

    __slots__ = ("index", "database", "connection", "applier", "resyncs")

    def __init__(
        self,
        index: int,
        database: "Database",
        connection: "Connection",
        applier: ReplicaApplier,
        resyncs: int,
    ) -> None:
        self.index = index
        self.database = database
        self.connection = connection
        self.applier = applier
        self.resyncs = resyncs


class ReplicaManager:
    """N log-shipped analytic replicas over one primary database."""

    def __init__(
        self,
        primary: "Database",
        replicas: int = 1,
        max_staleness_s: float = 5.0,
        ring_capacity: int = 4096,
        batch_size: int = 256,
        apply_interval_s: float = 0.2,
        auto_start: bool = True,
    ) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.primary = primary
        self.max_staleness_s = max_staleness_s
        self.log = ReplicationLog.install(primary, capacity=ring_capacity)
        self._batch_size = batch_size
        self._apply_interval = apply_interval_s
        self._lock = threading.Lock()
        self._next_route = 0
        self.replica_routes = 0
        self.primary_fallbacks = 0
        self._replicas = [
            self._bootstrap(index, resyncs=0) for index in range(replicas)
        ]
        primary.replica_manager = self
        if auto_start:
            for replica in self._replicas:
                replica.applier.start()

    # ------------------------------------------------------------------
    # Bootstrap / lifecycle
    # ------------------------------------------------------------------
    def _bootstrap(self, index: int, resyncs: int) -> _Replica:
        # Snapshot under the commit latch: no commit can fall between
        # the image and the LSN it is stamped with, so catch-up replays
        # exactly the records the image has not seen (the v4 format
        # restores row-id counters, making the insert-id check sound).
        with self.primary.write_locked():
            payload = dumps_database(self.primary, version=4)
            lsn = self.primary.data_version
        database = loads_database(payload)
        # Physical design is decided on the primary; a replica tuning
        # itself would diverge the plans the differential check (and
        # operators) expect to match.
        database.autotuner.enabled = False
        database.compact()
        applier = ReplicaApplier(
            database,
            self.log,
            lsn,
            batch_size=self._batch_size,
            apply_interval_s=self._apply_interval,
            name=f"replica-{index}",
        )
        connection = database.connect(name=f"replica-{index}")
        return _Replica(index, database, connection, applier, resyncs)

    def kill_replica(self, index: int) -> None:
        """Stop one replica's applier (crash simulation / maintenance).

        Primary commits continue unhindered; reads route around the
        dead replica (to a sibling or the primary) until
        :meth:`reattach_replica`.
        """
        self._replicas[index].applier.stop()

    def reattach_replica(self, index: int) -> "_Replica":
        """Bring a killed replica back.

        Resumes the applier from its applied LSN when the log still
        holds (or can re-read from disk) the records it missed;
        otherwise re-bootstraps from a fresh snapshot.  Either way the
        primary never waits.
        """
        replica = self._replicas[index]
        applier = replica.applier
        stale = (
            applier.needs_resync
            or applier.last_error is not None
            or self.log.records_since(applier.applied_lsn, limit=1) is None
        )
        if stale:
            replica = self._bootstrap(index, resyncs=replica.resyncs + 1)
            with self._lock:
                self._replicas[index] = replica
        replica.applier.start()
        return replica

    def stop(self) -> None:
        """Stop every applier and detach from the primary."""
        for replica in self._replicas:
            replica.applier.stop()
        if self.primary.replica_manager is self:
            self.primary.replica_manager = None

    def __enter__(self) -> "ReplicaManager":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def replica_count(self) -> int:
        return len(self._replicas)

    def replica_database(self, index: int) -> "Database":
        return self._replicas[index].database

    # ------------------------------------------------------------------
    # Staleness accounting
    # ------------------------------------------------------------------
    def _staleness(self, applier: ReplicaApplier) -> float:
        """Seconds of wall-clock staleness of one replica (0 when it is
        caught up; +inf when behind by an unknowable amount)."""
        if applier.applied_lsn >= self.log.last_lsn:
            return 0.0
        stamp = self.log.oldest_stamp_after(applier.applied_lsn)
        if stamp is None:
            stamp = applier.progress_stamp
        if stamp is None:
            return float("inf")
        return max(0.0, self.log.clock() - stamp)

    def _live(self) -> list[_Replica]:
        return [
            replica
            for replica in self._replicas
            if replica.applier.alive and not replica.applier.needs_resync
        ]

    def lag(self) -> ReplicationLag:
        primary_lsn = max(self.primary.data_version, self.log.last_lsn)
        live = self._live()
        if not live:
            return ReplicationLag(
                primary_lsn=primary_lsn,
                replica_lsn=0,
                seconds=None,
                replicas_live=0,
            )
        best = max(live, key=lambda r: r.applier.applied_lsn)
        return ReplicationLag(
            primary_lsn=primary_lsn,
            replica_lsn=best.applier.applied_lsn,
            seconds=self._staleness(best.applier),
            replicas_live=len(live),
        )

    def wait_for(self, lsn: int | None = None, timeout: float = 5.0) -> bool:
        """Block until every live replica applied ``lsn`` (default: the
        primary's current committed generation).  False on timeout or
        when no replica is live."""
        target = self.primary.data_version if lsn is None else lsn
        deadline = self.log.clock() + timeout
        live = self._live()
        if not live:
            return False
        for replica in live:
            remaining = deadline - self.log.clock()
            if not replica.applier.wait_until(target, max(0.0, remaining)):
                return False
        return True

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def read(self, max_staleness: float | None = None) -> "Connection":
        """A connection for one analytic read: the next fresh-enough
        replica, or the primary when none qualifies (never an error)."""
        bound = (
            self.max_staleness_s if max_staleness is None else max_staleness
        )
        with self._lock:
            start = self._next_route
            self._next_route += 1
        count = len(self._replicas)
        for offset in range(count):
            replica = self._replicas[(start + offset) % count]
            applier = replica.applier
            if not applier.alive or applier.needs_resync:
                continue
            if self._staleness(applier) <= bound:
                with self._lock:
                    self.replica_routes += 1
                return replica.connection
        with self._lock:
            self.primary_fallbacks += 1
        return self.primary.default_connection

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def status(self) -> dict[str, Any]:
        """Pipe-safe status payload (the ``replica_status`` shard op and
        the serve REPL's ``:replicas`` surface)."""
        lag = self.lag()
        replicas = []
        for replica in self._replicas:
            applier = replica.applier
            staleness = self._staleness(applier)
            replicas.append(
                {
                    "index": replica.index,
                    "alive": applier.alive,
                    "applied_lsn": applier.applied_lsn,
                    "records_applied": applier.records_applied,
                    "batches_applied": applier.batches_applied,
                    "lag_seconds": (
                        None if staleness == float("inf") else staleness
                    ),
                    "needs_resync": applier.needs_resync,
                    "resyncs": replica.resyncs,
                    "last_error": applier.last_error,
                }
            )
        with self._lock:
            routes = self.replica_routes
            fallbacks = self.primary_fallbacks
        return {
            "primary_lsn": lag.primary_lsn,
            "replica_lsn": lag.replica_lsn,
            "lag_lsn": lag.lsn,
            "lag_seconds": lag.seconds,
            "replicas_live": lag.replicas_live,
            "replica_routes": routes,
            "primary_fallbacks": fallbacks,
            "ring": {
                "capacity": self.log.capacity,
                "size": self.log.ring_size,
                "evicted_lsn": self.log.evicted_lsn,
            },
            "replicas": replicas,
        }
