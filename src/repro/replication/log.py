"""The replication log: an LSN-addressed view over the delta log.

:class:`ReplicationLog` extends PR 8's :class:`~repro.db.segments.DeltaLog`
with what log shipping needs and snapshot persistence does not:

* a bounded **in-process ring** of the most recent committed records,
  each stamped with the commit wall-clock, so appliers tail without
  touching disk and the manager can turn "how far behind" into seconds;
* **LSN addressing** — the LSN of a record *is* the MVCC generation the
  commit advanced the clock to, so a replica's applied LSN and the
  primary's ``data_version`` live on one axis;
* **gap fast-forwarding** — commits that log no ops (index DDL, empty
  transactions) still advance ``last_lsn``, and :meth:`records_since`
  returns the floor a caught-up reader may advance to, so replicas do
  not stall behind op-less generations;
* an **on-disk tail fallback** — when a reader fell behind the ring
  (a replica was down longer than ``capacity`` commits) and the log is
  attached to a file (:func:`~repro.db.persistence.dump_incremental`),
  the missing records are re-read from disk with the tolerant reader;
  with no file attached the reader is told to resync from a snapshot.

The ring is guarded by its own condition variable, separate from the
base class's write lock: the single committing writer never waits on
tailing readers, and :meth:`wait_for_commit` blocks cheaply until the
LSN frontier moves.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.db.segments import DeltaLog, read_delta_records

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.db.database import Database

__all__ = ["LogRecord", "ReplicationLog"]


@dataclass(frozen=True)
class LogRecord:
    """One committed record as the ring holds it.

    ``stamp`` is the commit wall-clock (the log's monotonic clock);
    records re-read from the on-disk tail carry ``None`` — their commit
    time was not persisted, so staleness falls back to apply progress.
    """

    lsn: int
    stamp: float | None
    ops: list


class ReplicationLog(DeltaLog):
    """A :class:`DeltaLog` that keeps a tailable LSN-addressed ring."""

    def __init__(
        self,
        capacity: int = 4096,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        super().__init__()
        if capacity < 1:
            raise ValueError("ring capacity must be >= 1")
        self.capacity = capacity
        self.clock = clock
        self._cond = threading.Condition()
        self._ring: deque[LogRecord] = deque()
        # The highest LSN any commit reached (including op-less ones).
        self._last_lsn = 0
        # Records at or below this LSN are no longer in the ring.
        self._evicted_lsn = 0

    # ------------------------------------------------------------------
    @classmethod
    def install(
        cls,
        database: "Database",
        capacity: int = 4096,
        clock: Callable[[], float] = time.monotonic,
    ) -> "ReplicationLog":
        """Make ``database.delta_log`` a replication log.

        Idempotent: an already-installed replication log is returned as
        is.  A plain :class:`DeltaLog` (e.g. one ``dump_incremental``
        attached) is adopted — its committed records, pending buffer
        and file handle move over, so persistence keeps flowing through
        the same on-disk tail the replicas will fall back to.
        """
        existing = database.delta_log
        if isinstance(existing, cls):
            return existing
        log = cls(capacity=capacity, clock=clock)
        if existing is not None:
            with existing._lock:
                log._records = existing._records
                log._pending = existing._pending
                log._marks = existing._marks
                log._handle = existing._handle
                log._encoder = existing._encoder
                log._decoder = existing._decoder
                log.path = existing.path
                existing._handle = None
                existing.path = None
        # The ring starts empty: everything committed so far is covered
        # by the snapshot a replica bootstraps from, addressed by the
        # current generation.
        log._last_lsn = database.data_version
        log._evicted_lsn = log._last_lsn
        database.delta_log = log
        return log

    # ------------------------------------------------------------------
    # Writer side (called at the commit point, under the commit latch)
    # ------------------------------------------------------------------
    def commit(self, generation: int) -> bool:
        # Peek the pending buffer before the base class moves it into
        # its record list; ``pending`` is exactly the ops list the
        # flushed record carries.
        pending = self._pending
        wrote = super().commit(generation)
        if wrote:
            # Bound the base class's record list too: the ring (and the
            # on-disk tail, when attached) is the replication history,
            # so an unattached long-running primary must not grow an
            # unbounded duplicate.
            with self._lock:
                if len(self._records) > self.capacity:
                    del self._records[: -self.capacity]
        with self._cond:
            if wrote:
                self._ring.append(
                    LogRecord(generation, self.clock(), pending)
                )
                while len(self._ring) > self.capacity:
                    self._evicted_lsn = self._ring.popleft().lsn
            self._last_lsn = generation
            self._cond.notify_all()
        return wrote

    # ------------------------------------------------------------------
    # Reader side (appliers and the manager)
    # ------------------------------------------------------------------
    @property
    def last_lsn(self) -> int:
        with self._cond:
            return self._last_lsn

    @property
    def evicted_lsn(self) -> int:
        with self._cond:
            return self._evicted_lsn

    @property
    def ring_size(self) -> int:
        with self._cond:
            return len(self._ring)

    def records_since(
        self, lsn: int, limit: int | None = None
    ) -> tuple[list[LogRecord], int] | None:
        """Committed records after ``lsn``: ``(records, floor)``.

        ``floor`` is the LSN the reader may advance to once it applied
        every returned record — ``last_lsn`` when the batch is complete
        (fast-forwarding past op-less generations), the last returned
        record's LSN when ``limit`` cut the batch.

        Returns ``None`` when history after ``lsn`` was evicted from
        the ring and no on-disk tail exists — the reader must resync
        from a snapshot.
        """
        with self._cond:
            evicted = self._evicted_lsn
            if lsn >= evicted:
                records = [r for r in self._ring if r.lsn > lsn]
                floor = self._last_lsn
                if limit is not None and len(records) > limit:
                    records = records[:limit]
                    floor = records[-1].lsn
                return records, floor
            path = self.path
            decoder = self._decoder
        if path is None:
            return None
        # Ring overrun with a persistent tail: re-read the missing span
        # from disk.  The tolerant reader cuts any record the writer is
        # mid-appending; the next round picks it up from the ring.
        disk, __ = read_delta_records(path, decoder=decoder)
        records = [
            LogRecord(r["generation"], None, [list(op) for op in r["ops"]])
            for r in disk
            if r["generation"] > lsn
        ]
        if limit is not None:
            records = records[:limit]
        floor = records[-1].lsn if records else lsn
        return records, floor

    def oldest_stamp_after(self, lsn: int) -> float | None:
        """Commit stamp of the oldest ring record past ``lsn`` (the
        wall-clock age of the first change a reader at ``lsn`` has not
        seen), or ``None`` when unknown."""
        with self._cond:
            for record in self._ring:
                if record.lsn > lsn:
                    return record.stamp
        return None

    def wait_for_commit(
        self, after_lsn: int, timeout: float | None = None
    ) -> bool:
        """Block until ``last_lsn`` exceeds ``after_lsn``.

        Returns True when the frontier moved past ``after_lsn`` within
        ``timeout`` seconds (False on timeout; ``None`` waits forever).
        """
        deadline = None if timeout is None else self.clock() + timeout
        with self._cond:
            while self._last_lsn <= after_lsn:
                remaining = (
                    None if deadline is None else deadline - self.clock()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._cond.wait(remaining)
            return True
