"""Statement classification for HTAP routing.

One question, answered conservatively: *is this statement analytic* —
a whole-table shape that scans wide, benefits from the replica's
sealed-and-memoised banks, and tolerates bounded staleness?  Yes for
grouped/ungrouped aggregates and whole-table counts; no for anything
that might write (stored-procedure calls), point reads and narrow
filtered scans (the primary answers those at index speed with
read-your-writes), and anything unrecognised.

Misclassifying analytic→primary costs only performance; the reverse
would hand a transactional read a stale snapshot — hence every default
here is "primary".
"""

from __future__ import annotations

from typing import Any

from repro.db.api import CallStatement, SelectStatement
from repro.db.query import TruePredicate

__all__ = ["is_analytic_statement"]


def is_analytic_statement(statement: Any) -> bool:
    """True when ``statement`` should route to an analytic replica."""
    if isinstance(statement, CallStatement):
        # Procedures commit transactions; they must see (and mutate)
        # the primary.
        return False
    if not isinstance(statement, SelectStatement):
        return False
    if statement._aggregates or statement._group_by:
        return True
    if statement._count_only:
        # A whole-table COUNT(*) is a scan-everything statement; a
        # filtered count is a point/range read the primary's indexes
        # answer directly.
        return (
            isinstance(statement._predicate, TruePredicate)
            and not statement._joins
        )
    return False
