"""HTAP replication: log-shipped analytic replicas at bounded staleness.

The subsystem follows the HTAP co-design line of PAPERS.md (Polynesia's
specialised read engines fed by an update-shipping layer): transactions
commit on the primary exactly as before, every committed mutation flows
through the :class:`~repro.replication.log.ReplicationLog` (PR 8's
delta log with an LSN-addressed in-process ring and an on-disk tail),
and one or more replica databases replay it in batches — sealed,
compacted and statistics-warm, the shape analytic scans are fastest in.

Entry points:

* :class:`ReplicaManager` — bootstrap replicas from a v4 snapshot,
  expose ``lag()`` / ``wait_for(lsn)`` / ``read(max_staleness=)``;
* :class:`ReplicationLog` / :class:`ReplicaApplier` — the shipping and
  replay halves (internal to this package; the lint in
  ``tools/check_execution_api.py`` keeps it that way);
* :func:`is_analytic_statement` — the classification the Connection
  API and serving tier use to decide primary vs replica.
"""

from repro.replication.applier import ReplicaApplier
from repro.replication.log import LogRecord, ReplicationLog
from repro.replication.manager import ReplicaManager, ReplicationLag
from repro.replication.routing import is_analytic_statement

__all__ = [
    "LogRecord",
    "ReplicaApplier",
    "ReplicaManager",
    "ReplicationLag",
    "ReplicationLog",
    "is_analytic_statement",
]
