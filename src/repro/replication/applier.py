"""The replica applier: batched log replay into an analytic replica.

One :class:`ReplicaApplier` owns the catch-up loop of one replica
database.  It tails the primary's :class:`~repro.replication.log.ReplicationLog`
and applies each batch of committed records inside a single replica
transaction — one generation bump and one statistics invalidation per
batch instead of per record — then compacts immediately, so the
replica's banks stay sealed and its plan/statistics memos stay hot: the
shape the analytic read path is fastest in, and exactly the shape the
primary cannot hold under sustained OLTP commits.

Replay goes through :func:`repro.db.persistence.apply_log_ops` (the
same core snapshot restore uses), so a replica is indistinguishable
from a database that executed the committed workload live, and the
insert-id check catches a log/bootstrap mismatch instead of silently
diverging.

The applier usually runs on its own daemon thread (:meth:`start`), but
:meth:`catch_up` also works synchronously — tests and the manager's
bootstrap path drive it directly.  A dead or stopped applier never
blocks the primary: the log keeps committing, and the manager routes
reads around the stale replica.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

from repro.db.persistence import apply_log_ops
from repro.replication.log import LogRecord, ReplicationLog

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.db.database import Database

__all__ = ["ReplicaApplier"]

#: How long the tail loop blocks per wait slice; the stop flag is
#: re-checked between slices, bounding shutdown latency.
_WAIT_SLICE_S = 0.05


class ReplicaApplier:
    """Replays committed log records into one replica database."""

    def __init__(
        self,
        replica: "Database",
        log: ReplicationLog,
        start_lsn: int,
        batch_size: int = 256,
        compact_batches: bool = True,
        compact_min_ops: int = 64,
        apply_interval_s: float = 0.2,
        name: str = "replica",
    ) -> None:
        self.replica = replica
        self.log = log
        self.name = name
        self._batch_size = max(1, batch_size)
        self._compact_batches = compact_batches
        # Compacting is O(table) — folding a handful of delta rows into
        # a 16k-row sealed bank after every batch costs more wall-clock
        # than the merge it saves.  Let ops accumulate to this floor
        # first; below it the grouped-reduce memos merge the delta
        # cheaply anyway.
        self._compact_min_ops = max(1, compact_min_ops)
        self._ops_since_compact = 0
        # Debounce between applies: letting commits accumulate into one
        # batch is the whole point of the replica — one transaction,
        # one statistics invalidation and one compaction per *interval*
        # instead of per primary commit, so analytic reads in between
        # hit a sealed, memo-warm, completely static database.  The
        # interval bounds added staleness and stays far under the
        # manager's routing bound.
        self._apply_interval = max(0.0, apply_interval_s)
        self._cond = threading.Condition()
        self.applied_lsn = start_lsn
        self.records_applied = 0
        self.batches_applied = 0
        self.needs_resync = False
        self.last_error: str | None = None
        # Commit stamp of the newest applied record (the log's clock);
        # the manager's staleness estimate falls back to it when the
        # oldest unapplied stamp is unknown.
        self.progress_stamp: float | None = log.clock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start (or restart) the background tail loop; idempotent."""
        with self._cond:
            if self._thread is not None and self._thread.is_alive():
                return
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run,
                name=f"repro-applier-{self.name}",
                daemon=True,
            )
            self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the tail loop (a replica "kill"); safe to call twice."""
        self._stop.set()
        thread = self._thread
        if thread is not None and thread.is_alive():
            thread.join(timeout)

    @property
    def alive(self) -> bool:
        thread = self._thread
        return thread is not None and thread.is_alive()

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                self.catch_up()
            except BaseException as exc:  # noqa: BLE001 - surfaced as down
                with self._cond:
                    self.last_error = f"{type(exc).__name__}: {exc}"
                    self._cond.notify_all()
                return
            if self.needs_resync:
                return
            if self.log.wait_for_commit(
                self.applied_lsn, timeout=_WAIT_SLICE_S
            ) and self._apply_interval > 0:
                # New commits exist — debounce before replaying so they
                # coalesce into one batch (stop() cuts the wait short).
                self._stop.wait(self._apply_interval)

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def catch_up(self, max_batches: int | None = None) -> int:
        """Apply every available record; returns how many were applied.

        Sets :attr:`needs_resync` (and stops applying) when the log no
        longer holds the replica's next records — the manager must
        re-bootstrap from a fresh snapshot.
        """
        applied = 0
        batches = 0
        while not self._stop.is_set():
            batch = self.log.records_since(
                self.applied_lsn, limit=self._batch_size
            )
            if batch is None:
                with self._cond:
                    self.needs_resync = True
                    self._cond.notify_all()
                break
            records, floor = batch
            if not records and floor <= self.applied_lsn:
                break
            self._apply(records, floor)
            applied += len(records)
            batches += 1
            if max_batches is not None and batches >= max_batches:
                break
        return applied

    def _apply(self, records: list[LogRecord], floor: int) -> None:
        database = self.replica
        if records:
            # One replica transaction per batch: a single commit point
            # (one generation bump, one statistics invalidation) no
            # matter how many primary commits the batch spans.
            with database.write_locked():
                database.transactions.begin()
                try:
                    for record in records:
                        apply_log_ops(database, record.ops)
                except BaseException:
                    database.transactions.rollback()
                    raise
                database.transactions.commit()
            self._ops_since_compact += sum(len(r.ops) for r in records)
            if (
                self._compact_batches
                and self._ops_since_compact >= self._compact_min_ops
            ):
                # Fold the applied delta back into the sealed banks —
                # the replica exists to stay in its fastest read shape
                # — but amortized past the ops floor, so steady trickle
                # commits do not turn into O(table) compactions per
                # batch.  A live reader pin defers compaction (returns
                # 0); keep the counter so the next apply retries.
                if database.compact():
                    self._ops_since_compact = 0
        with self._cond:
            self.applied_lsn = max(self.applied_lsn, floor)
            if records:
                self.records_applied += len(records)
                self.batches_applied += 1
                for record in reversed(records):
                    if record.stamp is not None:
                        self.progress_stamp = record.stamp
                        break
                else:
                    self.progress_stamp = self.log.clock()
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # Waiting
    # ------------------------------------------------------------------
    def wait_until(self, lsn: int, timeout: float | None = None) -> bool:
        """Block until this replica applied at least ``lsn``.

        Returns False on timeout, a pending resync or an applier error
        — callers treat any False as "read the primary instead".
        """
        clock = self.log.clock
        deadline = None if timeout is None else clock() + timeout
        with self._cond:
            while self.applied_lsn < lsn:
                if self.needs_resync or self.last_error is not None:
                    return False
                remaining = (
                    None if deadline is None else deadline - clock()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._cond.wait(
                    _WAIT_SLICE_S
                    if remaining is None
                    else min(remaining, _WAIT_SLICE_S)
                )
            return True
