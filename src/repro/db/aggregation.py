"""Aggregation over query results: group-by with count/sum/avg/min/max.

Complements :mod:`repro.db.query` with the handful of aggregates an OLTP
workload needs (e.g. "seats already booked for this screening").
:func:`aggregate` reduces already-materialised rows;
:func:`aggregate_query` runs a :class:`~repro.db.query.Query` through
the planned executor first (and answers a bare ``COUNT(*)`` with a
CountOnly plan, skipping row materialisation entirely).

Example
-------
>>> from repro.db.aggregation import aggregate, count, sum_
>>> aggregate(rows, group_by=["screening_id"],
...           aggregates={"booked": sum_("no_tickets"),
...                       "reservations": count()})     # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.db.table import Row
from repro.errors import QueryError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.db.database import Database
    from repro.db.query import Predicate, Query

__all__ = [
    "Aggregate",
    "aggregate",
    "aggregate_query",
    "count",
    "sum_",
    "avg",
    "min_",
    "max_",
    "count_distinct",
]


@dataclass(frozen=True)
class Aggregate:
    """A named reduction over a group of rows.

    ``builtin`` marks instances made by this module's constructors,
    whose semantics the engine knows and may push down; a hand-built
    Aggregate (any custom reducer, whatever its name) always runs its
    own reducer on materialised rows.
    """

    name: str
    column: str | None
    reducer: Callable[[list[Any]], Any]
    builtin: bool = field(default=False, compare=False, repr=False)

    def apply(self, rows: list[Row]) -> Any:
        if self.column is None:
            values: list[Any] = rows  # count(*) semantics
        else:
            values = [
                row[self.column] for row in rows if row.get(self.column) is not None
            ]
        return self.reducer(values)


def count() -> Aggregate:
    """``COUNT(*)`` — number of rows in the group."""
    return Aggregate("count", None, len, builtin=True)


def count_distinct(column: str) -> Aggregate:
    """``COUNT(DISTINCT column)`` over non-NULL values."""
    return Aggregate("count_distinct", column, lambda vs: len(set(vs)),
                     builtin=True)


def sum_(column: str) -> Aggregate:
    """``SUM(column)`` over non-NULL values (0 for empty groups)."""
    return Aggregate("sum", column, lambda vs: sum(vs) if vs else 0,
                     builtin=True)


def avg(column: str) -> Aggregate:
    """``AVG(column)`` over non-NULL values (None for empty groups)."""
    return Aggregate("avg", column,
                     lambda vs: sum(vs) / len(vs) if vs else None,
                     builtin=True)


def min_(column: str) -> Aggregate:
    return Aggregate("min", column, lambda vs: min(vs) if vs else None,
                     builtin=True)


def max_(column: str) -> Aggregate:
    return Aggregate("max", column, lambda vs: max(vs) if vs else None,
                     builtin=True)


def aggregate(
    rows: list[Row],
    aggregates: dict[str, Aggregate],
    group_by: list[str] | None = None,
    having: "Predicate | None" = None,
) -> list[Row]:
    """Group ``rows`` and apply ``aggregates`` per group.

    Without ``group_by`` the whole input forms a single group (one output
    row).  Group keys appear in the output rows alongside the aggregate
    results; output order follows first appearance of each group.
    ``having`` filters the *output* rows (group keys + aggregate names),
    like SQL's HAVING clause.
    """
    if not aggregates:
        raise QueryError("at least one aggregate is required")
    keys = group_by or []
    groups: dict[tuple, list[Row]] = {}
    order: list[tuple] = []
    for row in rows:
        try:
            key = tuple(row[k] for k in keys)
        except KeyError as exc:
            raise QueryError(f"unknown group-by column {exc.args[0]!r}") from None
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(row)
    if not keys and not rows:
        groups[()] = []
        order.append(())
    result: list[Row] = []
    for key in order:
        out: Row = dict(zip(keys, key))
        for name, agg in aggregates.items():
            out[name] = agg.apply(groups[key])
        result.append(out)
    if having is not None:
        result = [row for row in result if having.matches(row)]
    return result


def _engine_exprs(aggregates: dict[str, Aggregate]):
    """The :class:`~repro.db.engine.plan.AggExpr` tuple for built-in
    aggregates, or ``None`` when any entry carries a custom reducer."""
    from repro.db.engine import AggExpr

    exprs = []
    for name, agg in aggregates.items():
        if not agg.builtin:
            return None
        if agg.name == "count" and agg.column is None:
            exprs.append(AggExpr(name, "count", None))
        elif (
            agg.name in ("sum", "avg", "min", "max", "count_distinct")
            and agg.column is not None
        ):
            exprs.append(AggExpr(name, agg.name, agg.column))
        else:  # pragma: no cover - constructors only emit the above
            return None
    return tuple(exprs)


def aggregate_query(
    database: "Database",
    query: "Query",
    aggregates: dict[str, Aggregate],
    group_by: list[str] | None = None,
    having: "Predicate | None" = None,
) -> list[Row]:
    """Aggregate the result of ``query`` inside the planned executor.

    .. deprecated::
        Thin shim over the unified execution API; prefer an aggregate
        statement through a connection::

            conn = database.connect()
            stmt = conn.prepare(
                api.aggregate("reservation", booked=sum_("no_tickets"))
                   .where(eq("screening_id", api.Param("s")))
            )
            booked = stmt.execute(s=screening_id).scalar()

        (see :mod:`repro.db.api`).

    Built-in aggregates (the constructors in this module) compile into
    the engine's streaming :class:`~repro.db.engine.plan.HashAggregate`
    (or, for whole-table MIN/MAX/COUNT, an
    :class:`~repro.db.engine.plan.IndexAggScan` that reads the answer
    from the indexes) through the database's prepared-plan cache.
    ``having`` filters the aggregate output rows inside the plan; an
    ungrouped, lone ``COUNT(*)`` without HAVING short-circuits to a
    CountOnly plan; aggregates with custom reducers fall back to
    materialise-then-reduce via :func:`aggregate`, whose results the
    engine path reproduces exactly.
    """
    return database.default_connection.run_aggregate(
        query, aggregates, group_by, having
    )
