"""Aggregation over query results: group-by with count/sum/avg/min/max.

Complements :mod:`repro.db.query` with the handful of aggregates an OLTP
workload needs (e.g. "seats already booked for this screening").
:func:`aggregate` reduces already-materialised rows;
:func:`aggregate_query` runs a :class:`~repro.db.query.Query` through
the planned executor first (and answers a bare ``COUNT(*)`` with a
CountOnly plan, skipping row materialisation entirely).

Example
-------
>>> from repro.db.aggregation import aggregate, count, sum_
>>> aggregate(rows, group_by=["screening_id"],
...           aggregates={"booked": sum_("no_tickets"),
...                       "reservations": count()})     # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.db.table import Row
from repro.errors import QueryError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.db.database import Database
    from repro.db.query import Query

__all__ = [
    "Aggregate",
    "aggregate",
    "aggregate_query",
    "count",
    "sum_",
    "avg",
    "min_",
    "max_",
    "count_distinct",
]


@dataclass(frozen=True)
class Aggregate:
    """A named reduction over a group of rows."""

    name: str
    column: str | None
    reducer: Callable[[list[Any]], Any]

    def apply(self, rows: list[Row]) -> Any:
        if self.column is None:
            values: list[Any] = rows  # count(*) semantics
        else:
            values = [
                row[self.column] for row in rows if row.get(self.column) is not None
            ]
        return self.reducer(values)


def count() -> Aggregate:
    """``COUNT(*)`` — number of rows in the group."""
    return Aggregate("count", None, len)


def count_distinct(column: str) -> Aggregate:
    """``COUNT(DISTINCT column)`` over non-NULL values."""
    return Aggregate("count_distinct", column, lambda vs: len(set(vs)))


def sum_(column: str) -> Aggregate:
    """``SUM(column)`` over non-NULL values (0 for empty groups)."""
    return Aggregate("sum", column, lambda vs: sum(vs) if vs else 0)


def avg(column: str) -> Aggregate:
    """``AVG(column)`` over non-NULL values (None for empty groups)."""
    return Aggregate("avg", column, lambda vs: sum(vs) / len(vs) if vs else None)


def min_(column: str) -> Aggregate:
    return Aggregate("min", column, lambda vs: min(vs) if vs else None)


def max_(column: str) -> Aggregate:
    return Aggregate("max", column, lambda vs: max(vs) if vs else None)


def aggregate(
    rows: list[Row],
    aggregates: dict[str, Aggregate],
    group_by: list[str] | None = None,
) -> list[Row]:
    """Group ``rows`` and apply ``aggregates`` per group.

    Without ``group_by`` the whole input forms a single group (one output
    row).  Group keys appear in the output rows alongside the aggregate
    results; output order follows first appearance of each group.
    """
    if not aggregates:
        raise QueryError("at least one aggregate is required")
    keys = group_by or []
    groups: dict[tuple, list[Row]] = {}
    order: list[tuple] = []
    for row in rows:
        try:
            key = tuple(row[k] for k in keys)
        except KeyError as exc:
            raise QueryError(f"unknown group-by column {exc.args[0]!r}") from None
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(row)
    if not keys and not rows:
        groups[()] = []
        order.append(())
    result: list[Row] = []
    for key in order:
        out: Row = dict(zip(keys, key))
        for name, agg in aggregates.items():
            out[name] = agg.apply(groups[key])
        result.append(out)
    return result


def aggregate_query(
    database: "Database",
    query: "Query",
    aggregates: dict[str, Aggregate],
    group_by: list[str] | None = None,
) -> list[Row]:
    """Aggregate the result of ``query`` via the planned executor.

    An ungrouped, lone ``COUNT(*)`` short-circuits to the engine's
    CountOnly plan — rows are counted by the executor without being
    materialised or projected.
    """
    if not aggregates:
        raise QueryError("at least one aggregate is required")
    if not group_by and len(aggregates) == 1:
        (name, agg), = aggregates.items()
        if agg.column is None and agg.name == "count":
            return [{name: query.count(database)}]
    return aggregate(query.run(database), aggregates, group_by)
