"""Column data types for the in-memory relational engine.

The engine supports a small, OLTP-flavoured type system: integers, floats,
text, booleans, dates and times.  Each type knows how to *coerce* loosely
typed Python values (as they arrive from user utterances or CSV-like
sources) into a canonical representation, and how to render a value back
into natural language for the agent's responses.
"""

from __future__ import annotations

import datetime as _dt
import enum
from typing import Any

from repro.errors import TypeMismatchError

__all__ = ["DataType", "coerce", "render", "is_null", "python_type"]


class DataType(enum.Enum):
    """Declared type of a table column."""

    INTEGER = "integer"
    FLOAT = "float"
    TEXT = "text"
    BOOLEAN = "boolean"
    DATE = "date"
    TIME = "time"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


_TRUE_WORDS = {"true", "t", "yes", "y", "1"}
_FALSE_WORDS = {"false", "f", "no", "n", "0"}

_DATE_FORMATS = ("%Y-%m-%d", "%d.%m.%Y", "%m/%d/%Y", "%B %d %Y", "%d %B %Y")
_TIME_FORMATS = ("%H:%M", "%H:%M:%S", "%I:%M %p", "%I %p")


def python_type(dtype: DataType) -> type:
    """Return the canonical Python type used to store values of ``dtype``."""
    return {
        DataType.INTEGER: int,
        DataType.FLOAT: float,
        DataType.TEXT: str,
        DataType.BOOLEAN: bool,
        DataType.DATE: _dt.date,
        DataType.TIME: _dt.time,
    }[dtype]


def is_null(value: Any) -> bool:
    """True when ``value`` represents SQL NULL."""
    return value is None


def coerce(value: Any, dtype: DataType) -> Any:
    """Coerce ``value`` into the canonical representation of ``dtype``.

    ``None`` passes through unchanged (NULL).  Strings are parsed leniently
    because values frequently originate from natural-language utterances.
    Raises :class:`TypeMismatchError` when the value cannot be interpreted.
    """
    if value is None:
        return None
    try:
        if dtype is DataType.INTEGER:
            return _coerce_int(value)
        if dtype is DataType.FLOAT:
            return _coerce_float(value)
        if dtype is DataType.TEXT:
            return _coerce_text(value)
        if dtype is DataType.BOOLEAN:
            return _coerce_bool(value)
        if dtype is DataType.DATE:
            return _coerce_date(value)
        if dtype is DataType.TIME:
            return _coerce_time(value)
    except TypeMismatchError:
        raise
    except (ValueError, TypeError) as exc:
        raise TypeMismatchError(f"cannot coerce {value!r} to {dtype}") from exc
    raise TypeMismatchError(f"unknown data type {dtype!r}")


def _coerce_int(value: Any) -> int:
    if isinstance(value, bool):
        raise TypeMismatchError(f"cannot coerce boolean {value!r} to integer")
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        if value != int(value):
            raise TypeMismatchError(f"cannot coerce non-integral {value!r} to integer")
        return int(value)
    if isinstance(value, str):
        return int(value.strip())
    raise TypeMismatchError(f"cannot coerce {type(value).__name__} to integer")


def _coerce_float(value: Any) -> float:
    if isinstance(value, bool):
        raise TypeMismatchError(f"cannot coerce boolean {value!r} to float")
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        return float(value.strip())
    raise TypeMismatchError(f"cannot coerce {type(value).__name__} to float")


def _coerce_text(value: Any) -> str:
    if isinstance(value, str):
        return value
    if isinstance(value, (int, float, bool, _dt.date, _dt.time)):
        return render(value, DataType.TEXT)
    raise TypeMismatchError(f"cannot coerce {type(value).__name__} to text")


def _coerce_bool(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, int) and value in (0, 1):
        return bool(value)
    if isinstance(value, str):
        word = value.strip().lower()
        if word in _TRUE_WORDS:
            return True
        if word in _FALSE_WORDS:
            return False
    raise TypeMismatchError(f"cannot coerce {value!r} to boolean")


def _coerce_date(value: Any) -> _dt.date:
    if isinstance(value, _dt.datetime):
        return value.date()
    if isinstance(value, _dt.date):
        return value
    if isinstance(value, str):
        text = value.strip()
        for fmt in _DATE_FORMATS:
            try:
                return _dt.datetime.strptime(text, fmt).date()
            except ValueError:
                continue
    raise TypeMismatchError(f"cannot coerce {value!r} to date")


def _coerce_time(value: Any) -> _dt.time:
    if isinstance(value, _dt.datetime):
        return value.time()
    if isinstance(value, _dt.time):
        return value
    if isinstance(value, str):
        text = value.strip().lower()
        for fmt in _TIME_FORMATS:
            try:
                return _dt.datetime.strptime(text.upper(), fmt).time()
            except ValueError:
                continue
    raise TypeMismatchError(f"cannot coerce {value!r} to time")


def render(value: Any, dtype: DataType) -> str:
    """Render a stored value as a human-readable string for agent output."""
    if value is None:
        return "unknown"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, _dt.date) and not isinstance(value, _dt.datetime):
        return value.isoformat()
    if isinstance(value, _dt.time):
        return value.strftime("%H:%M")
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)
