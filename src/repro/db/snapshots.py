"""MVCC snapshot management: the generation clock and reader pins.

This module is the concurrency heart of the post-RWLock database.  The
storage layer (:mod:`repro.db.table`) stamps every slot with the
generation that created it and, eventually, the generation that deleted
it; this module owns the two pieces that turn those stamps into
snapshot-isolated reads:

* :class:`GenerationClock` — the database-wide version counter.  A
  transaction's mutations are stamped with ``current + 1`` (*pending*)
  and become visible atomically when the commit advances the clock
  (one integer assignment, no reader coordination).
* :class:`SnapshotManager` — per-thread pin stacks plus a registry of
  pinned generations.  ``pinned()`` captures the current generation for
  the duration of a read scope (a serving turn, a streaming result, a
  cache rebuild); every Table read issued inside the scope resolves
  against that generation, so the whole turn observes one consistent
  database state while writers append freely.

Why this is safe without a readers–writer lock: bank cells of a
published (visible) slot are never mutated in place — updates append a
new version slot and tombstone the old one — so a reader holding a
slot list can dereference cells lock-free.  The only multi-step
structures (slot maps, index arrays, memo caches) are read and rebuilt
under each table's short structure latch, held per operation rather
than per turn.  Writers serialise whole transactions on the database's
:class:`~repro.db.locks.CommitLatch`.

Pin semantics:

* nested pins on one thread share the outermost pin's generation, so a
  turn's inner read scopes cannot drift forward mid-turn;
* a thread holding the commit latch reads *current* state regardless of
  its pins — a writing transaction sees its own uncommitted changes;
* committing refreshes the committing thread's own pins to the new
  generation, so the rest of its turn observes what it just wrote;
* ``read_only`` pins forbid writes: the database's write scope raises
  :class:`~repro.db.locks.LockUpgradeError` inside one, preserving the
  "declared read-only but attempted to write" procedure error.

The manager also answers :meth:`SnapshotManager.min_pinned`, the bound
below which the vacuum may physically reclaim superseded versions and
tombstones, and fires ``on_idle`` when the last pin drains so garbage
does not linger until the next mutation.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Iterator

from repro.db.locks import CommitLatch

__all__ = ["GenerationClock", "SnapshotManager", "SnapshotPin"]


class GenerationClock:
    """The database-wide MVCC version counter.

    ``current`` is the newest committed generation; ``pending`` is the
    stamp in-flight mutations carry (``current + 1``).  ``advance()``
    runs at commit points only — under the commit latch — so readers
    need no synchronisation beyond one atomic integer read.
    """

    __slots__ = ("current",)

    def __init__(self, start: int = 0) -> None:
        self.current = start

    @property
    def pending(self) -> int:
        """The stamp uncommitted mutations carry right now."""
        return self.current + 1

    def advance(self) -> int:
        """Publish the pending generation (commit point); returns it."""
        self.current += 1
        return self.current

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"GenerationClock(current={self.current})"


class SnapshotPin:
    """One pinned read scope on one thread."""

    __slots__ = ("generation", "read_only")

    def __init__(self, generation: int, read_only: bool) -> None:
        self.generation = generation
        self.read_only = read_only

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        ro = ", read_only" if self.read_only else ""
        return f"SnapshotPin(generation={self.generation}{ro})"


class SnapshotManager:
    """Per-thread snapshot pins over one :class:`GenerationClock`."""

    def __init__(
        self,
        clock: GenerationClock,
        latch: CommitLatch | None = None,
        on_idle: Callable[[], None] | None = None,
    ) -> None:
        self._clock = clock
        self._latch = latch
        self._on_idle = on_idle
        self._local = threading.local()
        self._mutex = threading.Lock()
        # generation -> number of live pins at it (across all threads).
        self._pinned: dict[int, int] = {}
        self.pins_taken = 0

    # ------------------------------------------------------------------
    def _stack(self) -> list[SnapshotPin]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    # ------------------------------------------------------------------
    @contextmanager
    def pinned(self, read_only: bool = False) -> Iterator[SnapshotPin]:
        """Pin the current generation for the scope's duration.

        Nested pins inherit the outer pin's generation (one turn, one
        snapshot).  The pin is registered so the vacuum keeps every
        version the scope can still see.
        """
        stack = self._stack()
        generation = stack[-1].generation if stack else self._clock.current
        pin = SnapshotPin(generation, read_only)
        with self._mutex:
            self._pinned[generation] = self._pinned.get(generation, 0) + 1
            self.pins_taken += 1
        stack.append(pin)
        try:
            yield pin
        finally:
            stack.pop()
            with self._mutex:
                self._unregister_locked(pin.generation)
                idle = not self._pinned
            if idle and self._on_idle is not None:
                # Outside the mutex: the idle hook vacuums, which takes
                # table latches — never while holding the pin registry.
                self._on_idle()

    def _unregister_locked(self, generation: int) -> None:
        count = self._pinned.get(generation, 0) - 1
        if count > 0:
            self._pinned[generation] = count
        else:
            self._pinned.pop(generation, None)

    # ------------------------------------------------------------------
    def active_generation(self) -> int | None:
        """The generation this thread's reads must honour.

        ``None`` means "read current state": the thread holds no pin, or
        it holds the commit latch (a writing transaction must see its
        own uncommitted changes).
        """
        stack = getattr(self._local, "stack", None)
        if not stack:
            return None
        latch = self._latch
        if latch is not None and latch.held_by_current_thread:
            return None
        return stack[-1].generation

    def writes_forbidden(self) -> bool:
        """True when any pin on this thread's stack is read-only."""
        stack = getattr(self._local, "stack", None)
        if not stack:
            return False
        return any(pin.read_only for pin in stack)

    def pin_depth(self) -> int:
        """This thread's pin nesting depth (observability)."""
        stack = getattr(self._local, "stack", None)
        return len(stack) if stack else 0

    # ------------------------------------------------------------------
    def min_pinned(self) -> int | None:
        """Oldest generation any live pin still needs (None when idle)."""
        with self._mutex:
            return min(self._pinned) if self._pinned else None

    def pin_count(self) -> int:
        with self._mutex:
            return sum(self._pinned.values())

    @contextmanager
    def pins_blocked(self) -> Iterator[bool]:
        """Hold new pin registration; yields whether no pin is live.

        The storage layer's in-place fast paths (mutating published
        cells directly, exactly as the pre-MVCC code did) are only
        sound while no reader is pinned *and* none can pin mid-write;
        they run inside this scope when it yields ``True``.
        """
        with self._mutex:
            yield not self._pinned

    # ------------------------------------------------------------------
    def refresh_current_thread(self) -> None:
        """Move this thread's pins to the current generation.

        Called after a commit advances the clock: the committing
        thread's enclosing turn pin must observe the state it just
        published, while other threads' pins stay where they are.
        """
        stack = getattr(self._local, "stack", None)
        if not stack:
            return
        current = self._clock.current
        with self._mutex:
            for pin in stack:
                if pin.generation != current:
                    self._unregister_locked(pin.generation)
                    self._pinned[current] = self._pinned.get(current, 0) + 1
                    pin.generation = current

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        with self._mutex:
            return (
                f"SnapshotManager(current={self._clock.current}, "
                f"pinned={dict(self._pinned)})"
            )
