"""The shared version-stamped cache protocol.

Every cache that derives data from the database (statistics catalog,
attribute-value maps, entity-linker text pools, plan templates) follows
one subtle concurrency protocol, kept in exactly one place here:

1. fast path — check the stamped entry under the cache mutex; a hit
   requires the stamp to equal the current data version;
2. miss — *release* the mutex (so a slow rebuild of one key never
   blocks hits on others), recompute under a pinned snapshot, stamping
   with the generation the pin observes (the snapshot is immutable, so
   the stamp is consistent with the data read);
3. store — re-take the mutex and replace the entry only when the
   stored stamp is not newer, so two racing rebuilds converge on the
   freshest value.

Caches whose key space is client-controlled (the plan cache: one key
per query *shape*) can pass ``max_entries`` to bound memory: entries
are then kept in least-recently-used order (hits refresh recency) and
storing beyond the cap evicts the coldest entry, counted in
``evictions`` — the same policy the serving session store applies.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Callable, Hashable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.db.database import Database

__all__ = ["VersionStampedCache"]


class VersionStampedCache:
    """Concurrency-safe ``key -> value`` cache stamped by data version."""

    def __init__(
        self,
        database: "Database",
        max_entries: int | None = None,
        version: Callable[[], int] | None = None,
    ) -> None:
        """``version`` overrides the stamp source: by default entries
        stamp on ``database.data_version`` (every commit invalidates);
        a cache whose values survive some commits — the plan cache
        stamps on ``database.plan_stamp``, which sealed-mode commits
        leave alone — passes its own monotonic counter.  The callable
        is read both at the hit check and, inside the pinned snapshot,
        at compute time, so the store-if-not-newer race rule is
        unchanged."""
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 (or None to disable)")
        self._database = database
        self._max_entries = max_entries
        self._version = version
        self._lock = threading.Lock()
        self._entries: OrderedDict[Hashable, tuple[int, Any]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def lookup(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        """The cached value for ``key``, recomputing if stale or absent.

        ``compute`` is invoked under a pinned snapshot and must derive
        the value purely from the database contents it observes.
        """
        bounded = self._max_entries is not None
        version_of = self._version
        with self._lock:
            entry = self._entries.get(key)
            current_version = (
                self._database.data_version
                if version_of is None
                else version_of()
            )
            if entry is not None and entry[0] == current_version:
                self.hits += 1
                if bounded:
                    self._entries.move_to_end(key)
                return entry[1]
            self.misses += 1
        with self._database.read_locked():
            version = (
                self._database.snapshot_version()
                if version_of is None
                else version_of()
            )
            value = compute()
            dirty = (
                self._database.commit_latch.held_by_current_thread
                and self._database.transactions.in_transaction()
            )
        if dirty:
            # Computed over uncommitted writes: correct for the caller,
            # poison for the cache (a rollback would leave it stamped
            # with a version that never carries these values).
            return value
        with self._lock:
            current = self._entries.get(key)
            if current is None or current[0] <= version:
                self._entries[key] = (version, value)
                if bounded:
                    self._entries.move_to_end(key)
                    while len(self._entries) > self._max_entries:
                        self._entries.popitem(last=False)
                        self.evictions += 1
        return value

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def invalidate(self) -> None:
        """Drop every entry (they also refresh lazily via the stamps)."""
        with self._lock:
            self._entries.clear()
