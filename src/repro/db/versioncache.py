"""The shared version-stamped cache protocol.

Every cache that derives data from the database (statistics catalog,
attribute-value maps, entity-linker text pools) follows one subtle
concurrency protocol, kept in exactly one place here:

1. fast path — check the stamped entry under the cache mutex; a hit
   requires the stamp to equal the current data version;
2. miss — *release* the mutex (so a slow rebuild of one key never
   blocks hits on others), recompute under the database's shared read
   lock, capturing the version inside that lock (writers are excluded,
   so the stamp is consistent with the data read);
3. store — re-take the mutex and replace the entry only when the
   stored stamp is not newer, so two racing rebuilds converge on the
   freshest value.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any, Callable, Hashable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.db.database import Database

__all__ = ["VersionStampedCache"]


class VersionStampedCache:
    """Concurrency-safe ``key -> value`` cache stamped by data version."""

    def __init__(self, database: "Database") -> None:
        self._database = database
        self._lock = threading.Lock()
        self._entries: dict[Hashable, tuple[int, Any]] = {}
        self.hits = 0
        self.misses = 0

    def lookup(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        """The cached value for ``key``, recomputing if stale or absent.

        ``compute`` is invoked under the database's read lock and must
        derive the value purely from the current database contents.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry[0] == self._database.data_version:
                self.hits += 1
                return entry[1]
            self.misses += 1
        with self._database.read_locked():
            version = self._database.data_version
            value = compute()
        with self._lock:
            current = self._entries.get(key)
            if current is None or current[0] <= version:
                self._entries[key] = (version, value)
        return value

    def invalidate(self) -> None:
        """Drop every entry (they also refresh lazily via the stamps)."""
        with self._lock:
            self._entries.clear()
