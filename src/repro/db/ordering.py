"""A total, deterministic ordering over heterogeneous column values.

``ORDER BY`` and the ordered secondary indexes must never raise on the
values a column can actually hold.  Python's ``<`` is partial across
types (``3 < "a"`` is a ``TypeError``), and the old sort key
``(value is None, value)`` crashed on mixed-type columns.  The key built
here ranks values by a type class first and compares within the class
second, so any two values are comparable:

* NULLs sort after every value (SQL's ``NULLS LAST`` for ascending
  scans; a descending stable sort with ``reverse=True`` flips them to
  the front, matching the previous behaviour on uniform columns),
* booleans, integers and floats share one numeric class (``1 < 1.5``
  stays numeric),
* remaining classes are ordered by a fixed rank, and unknown types fall
  back to comparing ``(type name, repr)`` — arbitrary but deterministic.
"""

from __future__ import annotations

import datetime as _dt
from typing import Any

__all__ = ["ordering_key"]

# Fixed ranks per type class; NULL is the largest so it sorts last.
_RANK_NUMERIC = 0
_RANK_TEXT = 1
_RANK_DATE = 2
_RANK_TIME = 3
_RANK_DATETIME = 4
_RANK_OTHER = 5
_RANK_NULL = 6


def ordering_key(value: Any) -> tuple:
    """A key making any two column values comparable and totally ordered."""
    if value is None:
        return (_RANK_NULL, 0)
    if isinstance(value, bool):
        # bool is an int subclass; keep it in the numeric class so mixed
        # int/bool columns order as 0/1 without a separate rank.
        return (_RANK_NUMERIC, int(value))
    if isinstance(value, (int, float)):
        return (_RANK_NUMERIC, value)
    if isinstance(value, str):
        return (_RANK_TEXT, value)
    if isinstance(value, _dt.datetime):
        return (_RANK_DATETIME, value)
    if isinstance(value, _dt.date):
        return (_RANK_DATE, value)
    if isinstance(value, _dt.time):
        return (_RANK_TIME, value)
    return (_RANK_OTHER, type(value).__name__, repr(value))
