"""Stored procedures (the paper's "transactions with user-defined functions").

A :class:`Procedure` declares a name, typed IN parameters and a Python
body that mutates the database.  Parameters may *reference* a table's key
column (``references=("customer", "customer_id")``): those are exactly the
parameters for which the runtime must uniquely identify an entity through
dialogue, which is what CAT's task extraction keys on (Section 2 of the
paper: "all this information is typically already available in the given
database and the set of its transactions").

Procedures run atomically: the registry wraps every call in a transaction
and rolls back if the body raises.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

from repro.db.locks import LockUpgradeError
from repro.db.types import DataType, coerce
from repro.errors import ProcedureError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.db.database import Database

__all__ = ["Parameter", "Procedure", "ProcedureRegistry", "ProcedureResult"]


@dataclass(frozen=True)
class Parameter:
    """A typed IN parameter of a stored procedure.

    Parameters
    ----------
    name:
        Identifier used for binding (and as the dialogue slot name).
    dtype:
        Declared data type.
    references:
        Optional ``(table, column)`` pair when the parameter is the key of
        an entity the user must identify (e.g. ``("customer",
        "customer_id")``).  ``None`` for plain values such as a ticket
        count.
    optional:
        Whether the parameter may be omitted (bound to NULL).
    """

    name: str
    dtype: DataType
    references: tuple[str, str] | None = None
    optional: bool = False

    @property
    def is_entity_reference(self) -> bool:
        return self.references is not None


@dataclass(frozen=True)
class ProcedureResult:
    """Outcome of a committed procedure call.

    Iterable like a query :class:`~repro.db.api.Result`, so procedure
    and query results are interchangeable at the agent-executor
    boundary: a row-shaped ``value`` (a mapping, or a sequence of
    mappings like ``list_screenings`` returns) iterates as those rows,
    a scalar value as a single ``{"value": ...}`` row, and ``None`` —
    the usual outcome of a parameter-less write — as no rows at all
    instead of bypassing the result protocol.
    """

    procedure: str
    arguments: dict[str, Any]
    value: Any

    @cached_property
    def _row_view(self) -> list[dict[str, Any]]:
        value = self.value
        if value is None:
            return []
        if isinstance(value, Mapping):
            return [dict(value)]
        if isinstance(value, Sequence) and not isinstance(value, (str, bytes)):
            if all(isinstance(item, Mapping) for item in value):
                return [dict(item) for item in value]
        return [{"value": value}]

    def rows(self) -> list[dict[str, Any]]:
        """The result as a list of rows (see class docstring).

        The row dicts are built once per result and shared between
        calls (each call returns a fresh list over them).
        """
        return list(self._row_view)

    def all(self) -> list[dict[str, Any]]:
        """Alias of :meth:`rows` (the :class:`Result` spelling)."""
        return self.rows()

    def __iter__(self):
        return iter(self._row_view)

    def __len__(self) -> int:
        return len(self._row_view)

    def __bool__(self) -> bool:
        # Without this, __len__ would make a None-valued outcome falsy;
        # a ProcedureResult is an outcome object and always truthy
        # (callers gate on `if outcome.result:`), whatever it returned.
        return True

    def scalar(self) -> Any:
        """First value of the first row (``None`` when there are none)."""
        rows = self._row_view
        if not rows:
            return None
        return next(iter(rows[0].values()), None)


class Procedure:
    """A named transaction with typed parameters and a Python body."""

    def __init__(
        self,
        name: str,
        parameters: list[Parameter],
        body: Callable[..., Any],
        description: str = "",
        reads: tuple[str, ...] = (),
        writes: tuple[str, ...] = (),
    ) -> None:
        if not name or not name.replace("_", "").isalnum():
            raise ProcedureError(f"invalid procedure name {name!r}")
        seen: set[str] = set()
        for parameter in parameters:
            if parameter.name in seen:
                raise ProcedureError(
                    f"procedure {name!r}: duplicate parameter {parameter.name!r}"
                )
            seen.add(parameter.name)
        self.name = name
        self.parameters: tuple[Parameter, ...] = tuple(parameters)
        self.body = body
        self.description = description or name.replace("_", " ")
        self.reads = reads
        self.writes = writes

    @property
    def parameter_names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.parameters)

    def parameter(self, name: str) -> Parameter:
        for parameter in self.parameters:
            if parameter.name == name:
                return parameter
        raise ProcedureError(f"procedure {self.name!r} has no parameter {name!r}")

    def bind(self, arguments: dict[str, Any]) -> dict[str, Any]:
        """Coerce and validate ``arguments`` against the declared parameters."""
        unknown = set(arguments) - set(self.parameter_names)
        if unknown:
            raise ProcedureError(
                f"procedure {self.name!r}: unknown arguments {sorted(unknown)}"
            )
        bound: dict[str, Any] = {}
        for parameter in self.parameters:
            if parameter.name in arguments and arguments[parameter.name] is not None:
                bound[parameter.name] = coerce(
                    arguments[parameter.name], parameter.dtype
                )
            elif parameter.optional:
                bound[parameter.name] = None
            else:
                raise ProcedureError(
                    f"procedure {self.name!r}: missing argument {parameter.name!r}"
                )
        return bound

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        params = ", ".join(f"{p.name}:{p.dtype}" for p in self.parameters)
        return f"Procedure({self.name!r}, [{params}])"


class ProcedureRegistry:
    """Registry and atomic executor for a database's stored procedures."""

    def __init__(self, database: "Database") -> None:
        self._database = database
        self._procedures: dict[str, Procedure] = {}

    def register(self, procedure: Procedure) -> Procedure:
        if procedure.name in self._procedures:
            raise ProcedureError(f"duplicate procedure {procedure.name!r}")
        for parameter in procedure.parameters:
            if parameter.references is not None:
                table, column = parameter.references
                self._database.schema.table(table).column(column)
        self._procedures[procedure.name] = procedure
        return procedure

    def names(self) -> tuple[str, ...]:
        return tuple(self._procedures)

    def __contains__(self, name: str) -> bool:
        return name in self._procedures

    def __iter__(self):
        return iter(self._procedures.values())

    def get(self, name: str) -> Procedure:
        try:
            return self._procedures[name]
        except KeyError:
            raise ProcedureError(f"no procedure named {name!r}") from None

    def call(self, name: str, **arguments: Any) -> ProcedureResult:
        """Run a procedure atomically; rolls back and re-raises on failure.

        Writing procedures hold the database's exclusive write lock for
        the whole call, so concurrent readers never observe a
        half-applied transaction and concurrent calls serialise cleanly
        instead of tripping over the single active transaction.
        Procedures declared read-only (``writes`` empty) run under the
        shared read lock instead — concurrently with each other and
        with read-only dialogue turns — and skip the transaction
        entirely, so they neither queue behind the write lock nor bump
        the data version (which would needlessly invalidate every
        statistics/value cache).
        """
        procedure = self.get(name)
        bound = procedure.bind(arguments)
        if not procedure.writes:
            with self._database.read_locked(read_only=True):
                try:
                    value = procedure.body(self._database, **bound)
                except LockUpgradeError as exc:
                    # A declared-read-only body that mutates trips the
                    # snapshot pin's write refusal; name the real culprit.
                    raise ProcedureError(
                        f"procedure {name!r} is declared read-only but "
                        f"attempted to write: {exc}"
                    ) from exc
            return ProcedureResult(procedure=name, arguments=bound, value=value)
        with self._database.write_locked():
            txn_manager = self._database.transactions
            owns_txn = not txn_manager.in_transaction()
            if owns_txn:
                txn_manager.begin()
            try:
                value = procedure.body(self._database, **bound)
            except Exception:
                if owns_txn:
                    txn_manager.rollback()
                raise
            if owns_txn:
                txn_manager.commit()
        return ProcedureResult(procedure=name, arguments=bound, value=value)
