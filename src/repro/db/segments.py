"""Sealed-segment storage support: grouped-reduce views and the delta log.

The storage layer splits each table's column banks into an immutable
*sealed* prefix and a small mutable *delta* tail (see
:mod:`repro.db.table`).  This module holds the pieces of that design
that are not bank plumbing:

* :class:`GroupedReduce` — the executor-facing view of a two-part
  grouped aggregation: group keys and sizes merged from the memoised
  sealed state plus the live delta, with per-group sums/counts resolved
  lazily (and memoised) per value column.
* :class:`TableStorageStats` — the per-table storage figures the
  serving tier's ``:stats`` surface reports (sealed/delta/retired rows,
  epoch, compaction count and duration).
* :class:`DeltaLog` — an append-only log of committed logical
  mutations.  While attached to a database it buffers each statement's
  ops, mirrors the transaction manager's savepoints, and flushes one
  record per commit point; attached to a file it doubles as the
  incremental half of snapshot format v4 (one JSON line per commit,
  CRC-protected), which :func:`repro.db.persistence.load_incremental`
  replays on restart.
* :func:`read_delta_records` — the tolerant log reader: it stops at the
  first truncated or corrupt line, so a crash mid-append recovers to
  the last fully committed generation instead of failing the restore.

Only :mod:`repro.db.table` and this module may touch sealed/delta
internals — ``tools/check_execution_api.py`` lints every other module
onto the public ``Table``/``Database`` surfaces.
"""

from __future__ import annotations

import json
import threading
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.errors import DatabaseError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.db.table import Table

__all__ = [
    "DeltaLog",
    "GroupedReduce",
    "TableStorageStats",
    "read_delta_records",
]

# One logical mutation: (kind, table, row_id, payload).  ``kind`` is
# "insert" (payload: the full coerced row), "update" (payload: the new
# values of the changed columns) or "delete" (payload: None).
DeltaOp = tuple[str, str, int, Any]


@dataclass(frozen=True)
class TableStorageStats:
    """Storage-layer figures for one table (the ``:stats`` surface).

    ``sealed_rows`` counts the slots inside the sealed segment (live or
    retired); ``delta_rows`` the slots past it — the part every write
    since the last compaction rescans; ``retired_rows`` the sealed
    slots tombstoned since the seal (reclaimed only by compaction).
    """

    table: str
    sealed_rows: int
    delta_rows: int
    retired_rows: int
    sealed_epoch: int
    compactions: int
    last_compaction_seconds: float


class GroupedReduce:
    """A two-part grouped aggregation over one table's group column.

    Built by :meth:`repro.db.table.Table.grouped_reduce`: ``keys`` are
    the group keys in first-appearance scan order (ascending minimum
    row id, exactly the order a scan-built accumulator would emit) and
    ``sizes`` the matching group cardinalities.  Per-group integer sums
    and non-NULL counts over any value column come from :meth:`sums`,
    which differences the memoised sealed per-group totals by the
    retired and delta slots recorded here — O(groups + delta) per
    write instead of a whole-table pass.
    """

    __slots__ = (
        "column",
        "generation",
        "keys",
        "sizes",
        "removed_slots",
        "added_slots",
        "_table",
    )

    def __init__(
        self,
        table: "Table",
        column: str,
        generation: int,
        keys: list,
        sizes: list[int],
        removed_slots: dict[Any, Sequence[int]],
        added_slots: dict[Any, Sequence[int]],
    ) -> None:
        self._table = table
        self.column = column
        self.generation = generation
        self.keys = keys
        self.sizes = sizes
        # key -> sealed slots retired since the seal / delta slots added
        # since it; the sums pass adjusts the sealed totals by exactly
        # these cells.
        self.removed_slots = removed_slots
        self.added_slots = added_slots

    def __len__(self) -> int:
        return len(self.keys)

    def sums(self, value_column: str) -> tuple[list, list[int]]:
        """``(per-group sums, per-group non-NULL counts)`` aligned with
        :attr:`keys`.  NULL values contribute 0 to the sum; exact for
        integer/boolean columns (the only ones the executor routes
        here)."""
        return self._table.reduce_sums(self, value_column)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"GroupedReduce({self.column!r}, groups={len(self.keys)}, "
            f"delta_keys={len(self.added_slots)})"
        )


def _record_crc(generation: int, ops: list) -> int:
    """CRC32 over the canonical encoding of one record's content."""
    canonical = json.dumps(
        [generation, ops], separators=(",", ":"), sort_keys=True
    )
    return zlib.crc32(canonical.encode("utf-8"))


def _identity(value: Any) -> Any:
    return value


class DeltaLog:
    """Append-only log of committed logical mutations.

    The database records each statement's op into a pending buffer;
    :meth:`commit` flushes the buffer as one atomic record tagged with
    the committed generation.  Savepoints mirror the transaction
    manager's: :meth:`rollback_to` truncates the pending tail exactly
    like the undo log replays its inverse tail, and :meth:`discard`
    drops a rolled-back transaction's ops entirely — only committed
    state ever reaches the log.

    When attached to a file each record is one JSON line carrying a
    CRC32 of its content, flushed at the commit point, so a reader can
    always cut a torn tail back to the last fully committed record.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._pending: list[list] = []
        self._marks: dict[str, int] = {}
        self._records: list[dict[str, Any]] = []
        self._handle = None
        self._encoder: Callable[[Any], Any] = _identity
        self._decoder: Callable[[Any], Any] = _identity
        self.path: str | None = None

    # ------------------------------------------------------------------
    # Recording (called under the database's commit latch)
    # ------------------------------------------------------------------
    def record(
        self, kind: str, table: str, row_id: int, payload: Any = None
    ) -> None:
        """Buffer one logical op until the owning commit point."""
        self._pending.append([kind, table, row_id, payload])

    def savepoint(self, name: str) -> None:
        self._marks[name] = len(self._pending)

    def rollback_to(self, name: str) -> None:
        mark = self._marks.get(name)
        if mark is not None:
            del self._pending[mark:]

    def discard(self) -> None:
        """Drop the pending buffer (transaction rollback)."""
        self._pending.clear()
        self._marks.clear()

    def commit(self, generation: int) -> bool:
        """Flush pending ops as one record; True when one was written."""
        ops = self._pending
        if not ops:
            self._marks.clear()
            return False
        self._pending = []
        self._marks.clear()
        record = {"generation": generation, "ops": ops}
        with self._lock:
            self._records.append(record)
            if self._handle is not None:
                self._write_locked(record)
        return True

    def _write_locked(self, record: dict[str, Any]) -> None:
        encoder = self._encoder
        ops = [
            [kind, table, row_id,
             None if payload is None else {
                 column: encoder(value)
                 for column, value in payload.items()
             }]
            for kind, table, row_id, payload in record["ops"]
        ]
        generation = record["generation"]
        line = json.dumps(
            {
                "generation": generation,
                "ops": ops,
                "crc": _record_crc(generation, ops),
            },
            separators=(",", ":"),
        )
        self._handle.write(line + "\n")
        self._handle.flush()

    # ------------------------------------------------------------------
    # Introspection / persistence wiring
    # ------------------------------------------------------------------
    def records(self) -> list[dict[str, Any]]:
        """Committed records (oldest first); copies, safe to inspect."""
        with self._lock:
            return [
                {"generation": r["generation"], "ops": list(r["ops"])}
                for r in self._records
            ]

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    @property
    def pending_ops(self) -> int:
        return len(self._pending)

    def attach(
        self,
        path: str,
        encoder: Callable[[Any], Any] | None = None,
        truncate: bool = False,
        decoder: Callable[[Any], Any] | None = None,
    ) -> None:
        """Mirror committed records to ``path`` (one JSON line each).

        ``truncate=True`` starts the file (and the in-memory record
        list) fresh — the caller just wrote a base image that already
        contains everything committed so far.  ``decoder`` is the
        inverse of ``encoder``; readers that tail the on-disk file (the
        replication log's ring-overrun fallback) apply it to payload
        values they read back.
        """
        with self._lock:
            if self._handle is not None:
                self._handle.close()
            self._encoder = encoder if encoder is not None else _identity
            self._decoder = decoder if decoder is not None else _identity
            if truncate:
                self._records.clear()
            self._handle = open(path, "w" if truncate else "a")
            self.path = path
            if not truncate:
                for record in self._records:
                    self._write_locked(record)

    def detach(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
            self.path = None


def read_delta_records(
    path: str, decoder: Callable[[Any], Any] | None = None
) -> tuple[list[dict[str, Any]], bool]:
    """Read a delta-log file tolerantly: ``(records, clean)``.

    Stops at the first torn or corrupt line — a truncated JSON tail, a
    CRC mismatch, a malformed record or a non-monotonic generation —
    and returns everything before it.  ``clean`` is False when such a
    tail was cut, which is exactly the crash-mid-append case: the
    records returned are the last fully committed state.
    """
    decode = decoder if decoder is not None else _identity
    records: list[dict[str, Any]] = []
    clean = True
    last_generation = None
    # Frame in binary: a crash (or a copy taken mid-append) can cut the
    # file at *any* byte offset, including inside a multi-byte UTF-8
    # sequence — text-mode iteration would raise UnicodeDecodeError on
    # such a tail instead of cutting it.  Split on the newline framing
    # first, decode each complete line on its own, and treat any decode
    # failure like every other torn-tail symptom.
    with open(path, "rb") as handle:
        raw = handle.read()
    chunks = raw.split(b"\n")
    if chunks[-1] != b"":
        # No trailing newline: the final chunk is a torn append (the
        # writer emits record+terminator in one write), however far it
        # got — zero bytes of payload or all of them.
        clean = False
    chunks = chunks[:-1]
    for chunk in chunks:
        try:
            line = chunk.decode("utf-8")
            body = json.loads(line)
            generation = body["generation"]
            ops = body["ops"]
            crc = body["crc"]
        except (UnicodeDecodeError, json.JSONDecodeError, KeyError, TypeError):
            clean = False
            break
        if not isinstance(generation, int) or not isinstance(ops, list):
            clean = False
            break
        if crc != _record_crc(generation, ops):
            clean = False
            break
        if last_generation is not None and generation <= last_generation:
            clean = False
            break
        try:
            decoded_ops = [
                (
                    kind,
                    table,
                    row_id,
                    None if payload is None else {
                        column: decode(value)
                        for column, value in payload.items()
                    },
                )
                for kind, table, row_id, payload in ops
            ]
        except (TypeError, ValueError, AttributeError, DatabaseError):
            clean = False
            break
        last_generation = generation
        records.append({"generation": generation, "ops": decoded_ops})
    return records, clean
