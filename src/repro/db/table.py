"""Row storage for one relation, with hash + ordered indexes and checks.

Rows are stored as dictionaries keyed by an internal, monotonically
increasing row id.  Every column can carry a hash index (value -> set of
row ids); primary-key and unique columns always do, since the constraint
check needs the index anyway.  Columns can additionally carry an
*ordered* secondary index (a bisect-maintained sorted array of
``(ordering key, row id)`` pairs) so the query engine can push range
predicates and ``ORDER BY`` down instead of scanning and sorting.  The
:class:`Table` exposes a low-level mutation API
(``insert``/``update``/``delete``) used by
:class:`repro.db.database.Database`, which layers transactions and
foreign-key enforcement on top.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right, insort
from typing import Any, Callable, Iterator

from repro.db.ordering import ordering_key
from repro.db.schema import TableSchema
from repro.db.types import coerce, is_null
from repro.errors import ConstraintViolation, UnknownColumnError

__all__ = ["Row", "Table"]

Row = dict[str, Any]
"""A materialised row: column name -> value."""


class _HashIndex:
    """A simple hash index mapping column values to sets of row ids."""

    def __init__(self) -> None:
        self._buckets: dict[Any, set[int]] = {}

    def add(self, value: Any, row_id: int) -> None:
        if is_null(value):
            return
        self._buckets.setdefault(value, set()).add(row_id)

    def remove(self, value: Any, row_id: int) -> None:
        if is_null(value):
            return
        bucket = self._buckets.get(value)
        if bucket is not None:
            bucket.discard(row_id)
            if not bucket:
                del self._buckets[value]

    def lookup(self, value: Any) -> set[int]:
        return set(self._buckets.get(value, ()))

    def has(self, value: Any) -> bool:
        return value in self._buckets

    def count(self, value: Any) -> int:
        return len(self._buckets.get(value, ()))

    def distinct_values(self) -> list[Any]:
        return list(self._buckets)

    def __len__(self) -> int:
        return len(self._buckets)


class _OrderedIndex:
    """A sorted-array index of ``(ordering key, row id)`` pairs.

    NULLs are excluded (as in the hash index); key collisions keep row
    ids ascending, so an in-order walk is exactly the stable sort of a
    row-id scan by the column — which is what lets the executor drop the
    Sort node when it scans through this index.
    """

    def __init__(self) -> None:
        self._entries: list[tuple[tuple, int]] = []

    def add(self, value: Any, row_id: int) -> None:
        if is_null(value):
            return
        insort(self._entries, (ordering_key(value), row_id))

    def remove(self, value: Any, row_id: int) -> None:
        if is_null(value):
            return
        entry = (ordering_key(value), row_id)
        i = bisect_left(self._entries, entry)
        if i < len(self._entries) and self._entries[i] == entry:
            del self._entries[i]

    def __len__(self) -> int:
        return len(self._entries)

    def first_id(self) -> int | None:
        """Row id of the smallest key (smallest row id on ties)."""
        return self._entries[0][1] if self._entries else None

    def last_id(self) -> int | None:
        """Row id of the largest key (largest row id on ties)."""
        return self._entries[-1][1] if self._entries else None

    def _bounds(
        self,
        low: Any,
        high: Any,
        low_inclusive: bool,
        high_inclusive: bool,
    ) -> tuple[int, int]:
        start = 0
        end = len(self._entries)
        if low is not None:
            key = ordering_key(low)
            if low_inclusive:
                start = bisect_left(self._entries, (key,))
            else:
                start = bisect_right(self._entries, (key, math.inf))
        if high is not None:
            key = ordering_key(high)
            if high_inclusive:
                end = bisect_right(self._entries, (key, math.inf))
            else:
                end = bisect_left(self._entries, (key,))
        return start, max(start, end)

    def range_ids(
        self,
        low: Any = None,
        high: Any = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> list[int]:
        """Row ids with ``low <op> column <op> high``, in value order.

        ``None`` bounds are open.  Ties on the key come out in row-id
        order (stable).
        """
        start, end = self._bounds(low, high, low_inclusive, high_inclusive)
        return [rid for __, rid in self._entries[start:end]]

    def descending_range_ids(
        self,
        low: Any = None,
        high: Any = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[int]:
        """Row ids by key descending, ties in *ascending* row-id order.

        This mirrors a stable ``sort(reverse=True)``, which keeps equal
        keys in their original (row-id) order rather than reversing them.
        """
        start, i = self._bounds(low, high, low_inclusive, high_inclusive)
        while i > start:
            key = self._entries[i - 1][0]
            j = bisect_left(self._entries, (key,), start, i)
            for __, rid in self._entries[j:i]:
                yield rid
            i = j


class Table:
    """Mutable storage for the rows of one table schema."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._rows: dict[int, Row] = {}
        self._next_row_id = 1
        self._indexes: dict[str, _HashIndex] = {}
        self._ordered_indexes: dict[str, _OrderedIndex] = {}
        if schema.primary_key:
            self.create_index(schema.primary_key)
        for column in schema.columns:
            if column.unique:
                self.create_index(column.name)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.schema.name

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        """Iterate over copies of all rows (stable order by row id)."""
        for row_id in sorted(self._rows):
            yield dict(self._rows[row_id])

    def row_ids(self) -> list[int]:
        return sorted(self._rows)

    def has_row(self, row_id: int) -> bool:
        return row_id in self._rows

    def get(self, row_id: int) -> Row:
        """Return a copy of the row with internal id ``row_id``."""
        return dict(self._rows[row_id])

    def row_view(self, row_id: int) -> Row:
        """The *internal* row dict — read-only by convention.

        The query executor filters and joins over views to avoid one
        dict copy per visited row; anything handed back to callers is
        copied (or rebuilt) at the output boundary.
        """
        return self._rows[row_id]

    def iter_view_items(self) -> Iterator[tuple[int, Row]]:
        """``(row_id, internal row)`` pairs in row-id order (read-only)."""
        for row_id in sorted(self._rows):
            yield row_id, self._rows[row_id]

    def iter_views(self) -> Iterator[Row]:
        """Internal rows in row-id order (read-only) — the sequential
        scan's row stream, without the ``(id, row)`` tuple per row."""
        rows = self._rows
        return map(rows.__getitem__, sorted(rows))

    def has_index(self, column: str) -> bool:
        return column in self._indexes

    def has_ordered_index(self, column: str) -> bool:
        return column in self._ordered_indexes

    def ordered_index(self, column: str) -> _OrderedIndex:
        return self._ordered_indexes[column]

    def hash_index_columns(self) -> list[str]:
        """Columns carrying a hash index (sorted; includes pk/unique)."""
        return sorted(self._indexes)

    def ordered_index_columns(self) -> list[str]:
        """Columns carrying an ordered secondary index (sorted)."""
        return sorted(self._ordered_indexes)

    # ------------------------------------------------------------------
    # Index management
    # ------------------------------------------------------------------
    def create_index(self, column: str) -> None:
        """Build (or rebuild) a hash index on ``column``."""
        self.schema.column(column)  # raises UnknownColumnError
        index = _HashIndex()
        for row_id, row in self._rows.items():
            index.add(row[column], row_id)
        self._indexes[column] = index

    def create_ordered_index(self, column: str) -> None:
        """Build (or rebuild) an ordered secondary index on ``column``."""
        self.schema.column(column)  # raises UnknownColumnError
        index = _OrderedIndex()
        for row_id, row in self._rows.items():
            index.add(row[column], row_id)
        self._ordered_indexes[column] = index

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, values: dict[str, Any]) -> int:
        """Insert one row; returns the internal row id.

        Values are coerced to the declared column types; missing columns
        default to NULL.  Raises :class:`ConstraintViolation` on NOT NULL,
        primary-key or unique violations, and
        :class:`UnknownColumnError` for unexpected keys.
        """
        row = self._normalise(values)
        self._check_not_null(row)
        self._check_unique(row, exclude_row_id=None)
        row_id = self._next_row_id
        self._next_row_id += 1
        self._rows[row_id] = row
        for column, index in self._indexes.items():
            index.add(row[column], row_id)
        for column, ordered in self._ordered_indexes.items():
            ordered.add(row[column], row_id)
        return row_id

    def update(self, row_id: int, changes: dict[str, Any]) -> Row:
        """Apply ``changes`` to an existing row; returns a copy of the old row."""
        old = self._rows[row_id]
        new = dict(old)
        for column, value in changes.items():
            col = self.schema.column(column)
            new[column] = coerce(value, col.dtype)
        self._check_not_null(new)
        self._check_unique(new, exclude_row_id=row_id)
        for column, index in self._indexes.items():
            if old[column] != new[column]:
                index.remove(old[column], row_id)
                index.add(new[column], row_id)
        for column, ordered in self._ordered_indexes.items():
            if old[column] != new[column]:
                ordered.remove(old[column], row_id)
                ordered.add(new[column], row_id)
        self._rows[row_id] = new
        return dict(old)

    def delete(self, row_id: int) -> Row:
        """Delete a row; returns a copy of it (for undo logs)."""
        row = self._rows.pop(row_id)
        for column, index in self._indexes.items():
            index.remove(row[column], row_id)
        for column, ordered in self._ordered_indexes.items():
            ordered.remove(row[column], row_id)
        return dict(row)

    def restore(self, row_id: int, row: Row) -> None:
        """Re-insert a previously deleted row under its original id (undo)."""
        if row_id in self._rows:
            raise ConstraintViolation(
                f"table {self.name!r}: cannot restore row {row_id}, id in use"
            )
        self._rows[row_id] = dict(row)
        self._next_row_id = max(self._next_row_id, row_id + 1)
        for column, index in self._indexes.items():
            index.add(row[column], row_id)
        for column, ordered in self._ordered_indexes.items():
            ordered.add(row[column], row_id)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def lookup(self, column: str, value: Any) -> list[int]:
        """Row ids where ``column == value`` (uses index when available)."""
        col = self.schema.column(column)
        needle = coerce(value, col.dtype)
        if needle is None:
            return []
        index = self._indexes.get(column)
        if index is not None:
            return sorted(index.lookup(needle))
        return [rid for rid, row in self._rows.items() if row[column] == needle]

    def scan(self, predicate: Callable[[Row], bool] | None = None) -> list[int]:
        """Row ids of rows matching ``predicate`` (all rows when ``None``)."""
        if predicate is None:
            return self.row_ids()
        return [rid for rid in sorted(self._rows) if predicate(self._rows[rid])]

    def column_values(self, column: str, row_ids: list[int] | None = None) -> list[Any]:
        """Values of one column, over all rows or a row-id subset."""
        self.schema.column(column)
        if row_ids is None:
            return [self._rows[rid][column] for rid in sorted(self._rows)]
        return [self._rows[rid][column] for rid in row_ids]

    def distinct_count(self, column: str) -> int:
        """Number of distinct non-NULL values in ``column``."""
        index = self._indexes.get(column)
        if index is not None:
            return len(index)
        values = {
            row[column] for row in self._rows.values() if not is_null(row[column])
        }
        return len(values)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _normalise(self, values: dict[str, Any]) -> Row:
        for key in values:
            if not self.schema.has_column(key):
                raise UnknownColumnError(
                    f"table {self.name!r} has no column {key!r}"
                )
        row: Row = {}
        for column in self.schema.columns:
            raw = values.get(column.name)
            row[column.name] = coerce(raw, column.dtype)
        return row

    def _check_not_null(self, row: Row) -> None:
        for column in self.schema.columns:
            required = not column.nullable or column.name == self.schema.primary_key
            if required and is_null(row[column.name]):
                raise ConstraintViolation(
                    f"table {self.name!r}: column {column.name!r} may not be NULL"
                )

    def _check_unique(self, row: Row, exclude_row_id: int | None) -> None:
        unique_columns = [
            c.name
            for c in self.schema.columns
            if c.unique or c.name == self.schema.primary_key
        ]
        for column in unique_columns:
            value = row[column]
            if is_null(value):
                continue
            existing = self._indexes[column].lookup(value)
            existing.discard(exclude_row_id)  # type: ignore[arg-type]
            if existing:
                raise ConstraintViolation(
                    f"table {self.name!r}: duplicate value {value!r} "
                    f"for unique column {column!r}"
                )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Table({self.name!r}, rows={len(self)})"
