"""Columnar MVCC row storage for one relation, with hash + ordered indexes.

Rows are stored column-oriented: one append-only Python list per column
(a *bank*), parallel by storage *slot*.  A row id — internal and
monotonically increasing, exactly as before the columnar refactor —
maps to its current slot through ``_slot_of``; reclaimed slots are
recycled through a free list, so long-lived tables do not leak bank
entries.  The columnar layout is what the engine's batched execution
mode runs on: predicates and reductions evaluate directly over the
column lists with C-level builtins instead of materialising one dict
per row (see :mod:`repro.db.engine.executor`).

On top of the banks sits a multi-version store.  Every slot carries two
stamps from the database's :class:`~repro.db.snapshots.GenerationClock`:
the generation that created it and (eventually) the generation that
deleted it.  Writers never mutate a published cell — an update appends
a fresh version slot for the same row id and tombstones the old one; a
delete just tombstones — so readers pinned at generation ``g`` (see
:class:`~repro.db.snapshots.SnapshotManager`) resolve a consistent
snapshot by filtering slots with ``created <= g < deleted`` and can
dereference bank cells lock-free.  Physical reclamation is deferred to
:meth:`Table.vacuum`, gated on the oldest pinned generation.  Two fast
paths keep the common case at pre-MVCC speed: a pinned read whose
generation covers every stamp (``_max_stamp <= g``) uses the exact
current-state structures, and a table not attached to a database (or
one with no pinned reader) mutates in place exactly as the pre-MVCC
code did.

Once a table has been *compacted* (:meth:`Table.compact`) its banks
additionally split into an immutable **sealed segment** — the slot
prefix below ``_sealed_len``, dense and in row-id order, whose cells,
ids and creation stamps never change again — and a small mutable
**delta** past it, where every subsequent append, version-append and
free-slot reuse lands.  Tombstoning a sealed slot *retires* it (the
cells stay readable) rather than freeing it; only the next compaction
reclaims sealed space.  The payoff is cache stability: the expensive
batch structures (join build buckets, grouped-aggregate state, column
value counts) memoise their sealed part keyed by ``_sealed_epoch`` —
bumped once per compaction, never per write — and merge in the delta
per mutation generation, so analytic reads survive writer traffic at
O(delta) instead of rebuilding O(table).  A table that was never
compacted has ``_sealed_len == 0`` and behaves exactly as before.

Structure reads and mutations synchronise on a short per-table latch
(``_latch``) held per operation — never for a whole turn; whole writer
transactions serialise on the database's commit latch above this layer.

Row-oriented access survives as views: :meth:`Table.row_view` returns a
lazy :class:`RowView` mapping backed by the banks (read-only by
convention), and :meth:`Table.get` materialises a fresh dict.  Every
column can carry a hash index (value -> set of row ids); primary-key
and unique columns always do, since the constraint check needs the
index anyway.  Columns can additionally carry an *ordered* secondary
index (a bisect-maintained sorted array of ``(ordering key, row id)``
pairs) so the query engine can push range predicates and ``ORDER BY``
down instead of scanning and sorting.  Indexes describe the *current*
state (writers maintain them eagerly); a pinned reader whose snapshot
is older falls back to visibility-filtered scans and a memoised
snapshot-built ordered index.  The :class:`Table` exposes a low-level
mutation API (``insert``/``update``/``delete``) used by
:class:`repro.db.database.Database`, which layers transactions and
foreign-key enforcement on top.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left, bisect_right, insort
from collections import Counter
from collections.abc import Mapping
from itertools import accumulate, repeat
from operator import itemgetter
from time import perf_counter
from typing import Any, Callable, Iterator, Sequence

from repro.db.ordering import ordering_key
from repro.db.schema import TableSchema
from repro.db.segments import GroupedReduce, TableStorageStats
from repro.db.snapshots import GenerationClock, SnapshotManager
from repro.db.types import coerce, is_null
from repro.errors import ConstraintViolation, UnknownColumnError

__all__ = ["Row", "RowView", "Table"]

Row = dict[str, Any]
"""A materialised row: column name -> value."""

# Bounded memo sizes for per-generation snapshot structures.  Stale
# pins are transient (one serving turn overlapping one commit), so a
# handful of generations in flight is already a pathological case.
_VISIBLE_CACHE_CAP = 8
_ORDERED_CACHE_CAP = 16


class RowView(Mapping):
    """A lazy, read-only row over the table's column banks.

    Indexing reads straight from the banks (``banks[column][slot]``), so
    constructing a view copies nothing.  Views compare equal to dicts
    with the same items (via the :class:`Mapping` protocol) and support
    everything the executor and predicates need: ``row[col]``,
    ``col in row``, ``row.get``, ``row.items()`` and ``dict(row)``.
    Views are valid for as long as their slot's version is visible to
    the reading snapshot — published cells are never overwritten, and
    the vacuum only reclaims slots no live snapshot can see.
    """

    __slots__ = ("_banks", "_slot")

    def __init__(self, banks: dict[str, list], slot: int) -> None:
        self._banks = banks
        self._slot = slot

    def __getitem__(self, key: str) -> Any:
        return self._banks[key][self._slot]

    def __contains__(self, key: object) -> bool:
        return key in self._banks

    def get(self, key: str, default: Any = None) -> Any:
        bank = self._banks.get(key)
        return default if bank is None else bank[self._slot]

    def __iter__(self) -> Iterator[str]:
        return iter(self._banks)

    def __len__(self) -> int:
        return len(self._banks)

    def keys(self):
        return self._banks.keys()

    def items(self) -> list[tuple[str, Any]]:
        slot = self._slot
        return [(column, bank[slot]) for column, bank in self._banks.items()]

    def values(self) -> list[Any]:
        slot = self._slot
        return [bank[slot] for bank in self._banks.values()]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RowView({dict(self)!r})"


class _HashIndex:
    """A simple hash index mapping column values to sets of row ids."""

    def __init__(self) -> None:
        self._buckets: dict[Any, set[int]] = {}

    def add(self, value: Any, row_id: int) -> None:
        if is_null(value):
            return
        self._buckets.setdefault(value, set()).add(row_id)

    def remove(self, value: Any, row_id: int) -> None:
        if is_null(value):
            return
        bucket = self._buckets.get(value)
        if bucket is not None:
            bucket.discard(row_id)
            if not bucket:
                del self._buckets[value]

    def lookup(self, value: Any) -> set[int]:
        return set(self._buckets.get(value, ()))

    def has(self, value: Any) -> bool:
        return value in self._buckets

    def count(self, value: Any) -> int:
        return len(self._buckets.get(value, ()))

    def distinct_values(self) -> list[Any]:
        return list(self._buckets)

    def __len__(self) -> int:
        return len(self._buckets)


class _OrderedIndex:
    """A sorted-array index of ``(ordering key, row id)`` pairs.

    NULLs are excluded (as in the hash index); key collisions keep row
    ids ascending, so an in-order walk is exactly the stable sort of a
    row-id scan by the column — which is what lets the executor drop the
    Sort node when it scans through this index.
    """

    def __init__(self) -> None:
        self._entries: list[tuple[tuple, int]] = []

    def add(self, value: Any, row_id: int) -> None:
        if is_null(value):
            return
        insort(self._entries, (ordering_key(value), row_id))

    def remove(self, value: Any, row_id: int) -> None:
        if is_null(value):
            return
        entry = (ordering_key(value), row_id)
        i = bisect_left(self._entries, entry)
        if i < len(self._entries) and self._entries[i] == entry:
            del self._entries[i]

    def __len__(self) -> int:
        return len(self._entries)

    def first_id(self) -> int | None:
        """Row id of the smallest key (smallest row id on ties)."""
        return self._entries[0][1] if self._entries else None

    def last_id(self) -> int | None:
        """Row id of the largest key (largest row id on ties)."""
        return self._entries[-1][1] if self._entries else None

    def _bounds(
        self,
        low: Any,
        high: Any,
        low_inclusive: bool,
        high_inclusive: bool,
    ) -> tuple[int, int]:
        start = 0
        end = len(self._entries)
        if low is not None:
            key = ordering_key(low)
            if low_inclusive:
                start = bisect_left(self._entries, (key,))
            else:
                start = bisect_right(self._entries, (key, math.inf))
        if high is not None:
            key = ordering_key(high)
            if high_inclusive:
                end = bisect_right(self._entries, (key, math.inf))
            else:
                end = bisect_left(self._entries, (key,))
        return start, max(start, end)

    def range_ids(
        self,
        low: Any = None,
        high: Any = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> list[int]:
        """Row ids with ``low <op> column <op> high``, in value order.

        ``None`` bounds are open.  Ties on the key come out in row-id
        order (stable).
        """
        start, end = self._bounds(low, high, low_inclusive, high_inclusive)
        return [rid for __, rid in self._entries[start:end]]

    def descending_range_ids(
        self,
        low: Any = None,
        high: Any = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[int]:
        """Row ids by key descending, ties in *ascending* row-id order.

        This mirrors a stable ``sort(reverse=True)``, which keeps equal
        keys in their original (row-id) order rather than reversing them.
        """
        start, i = self._bounds(low, high, low_inclusive, high_inclusive)
        while i > start:
            key = self._entries[i - 1][0]
            j = bisect_left(self._entries, (key,), start, i)
            for __, rid in self._entries[j:i]:
                yield rid
            i = j


class _OrderedIndexHandle:
    """The ordered index as seen by one reader.

    The executor holds this handle across a scan; every call resolves
    the right structure under the table latch — the live bisect index
    for current-state reads, a memoised snapshot-built copy for a
    pinned reader whose generation predates newer stamps — and extracts
    what it needs before releasing the latch, so a concurrent writer's
    ``insort`` can never tear a bisect walk.
    """

    __slots__ = ("_table", "_column")

    def __init__(self, table: "Table", column: str) -> None:
        self._table = table
        self._column = column

    def __len__(self) -> int:
        table = self._table
        with table._latch:
            return len(table._ordered_for_read(self._column))

    def first_id(self) -> int | None:
        table = self._table
        with table._latch:
            return table._ordered_for_read(self._column).first_id()

    def last_id(self) -> int | None:
        table = self._table
        with table._latch:
            return table._ordered_for_read(self._column).last_id()

    def range_ids(self, *args, **kwargs) -> list[int]:
        table = self._table
        with table._latch:
            return table._ordered_for_read(self._column).range_ids(
                *args, **kwargs
            )

    def descending_range_ids(self, *args, **kwargs) -> Iterator[int]:
        # Materialised under the latch: the laziness of the underlying
        # generator is not worth letting it race writer insorts.
        table = self._table
        with table._latch:
            index = table._ordered_for_read(self._column)
            return iter(list(index.descending_range_ids(*args, **kwargs)))


class Table:
    """Mutable columnar MVCC storage for the rows of one table schema."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._columns: tuple[str, ...] = tuple(schema.column_names)
        self._banks: dict[str, list] = {c: [] for c in self._columns}
        self._bank_list: list[list] = [self._banks[c] for c in self._columns]
        self._slot_of: dict[int, int] = {}
        self._id_at: list[int | None] = []
        self._free: set[int] = set()
        # MVCC stamps, parallel to the banks by slot: the generation
        # that created the version and the generation that ended it
        # (None while live).  ``_dead`` holds ended-but-unreclaimed
        # slots (tombstones and superseded versions) until vacuum.
        self._created: list[int] = []
        self._deleted: list[int | None] = []
        self._dead: set[int] = set()
        self._max_stamp = 0
        # Standalone tables own a private clock and advance it per
        # mutation (single-threaded semantics, immediate reclamation);
        # Database rebinds both to its shared clock/snapshot manager.
        self._clock = GenerationClock()
        self._snapshots: SnapshotManager | None = None
        self._in_transaction: Callable[[], bool] | None = None
        self._latch = threading.RLock()
        # _dense: slots, walked front to back, are exactly the rows in
        # ascending row-id order with no holes — the common append-only
        # case, where a scan is the banks themselves.  _id_ordered:
        # active slots are in ascending id order (holes allowed); while
        # it holds, draining the free set makes the table dense again.
        self._dense = True
        self._id_ordered = True
        self._next_row_id = 1
        self._indexes: dict[str, _HashIndex] = {}
        self._ordered_indexes: dict[str, _OrderedIndex] = {}
        # Grouped scan layouts derived from the hash indexes, memoised
        # per mutation generation (see grouped_layout()).
        self._mutations = 0
        self._group_layouts: dict[str, tuple[int, Any]] = {}
        self._group_tallies: dict[tuple[str, str], tuple[int, Any]] = {}
        self._slot_bucket_cache: dict[str, tuple[int, Any]] = {}
        # Sealed-segment state (see module docstring).  The sealed-part
        # memos are keyed by the epoch they were built at and survive
        # every write; the merged two-part memos below them are keyed
        # per mutation generation like the caches above.
        self._sealed_len = 0
        self._sealed_epoch = 0
        self._compactions = 0
        self._last_compaction_seconds = 0.0
        self._sealed_buckets: dict[str, tuple[int, dict]] = {}
        self._sealed_sums: dict[tuple[str, str], tuple[int, dict]] = {}
        self._sealed_counts: dict[str, tuple[int, tuple]] = {}
        self._delta_cache: tuple[int, tuple] | None = None
        self._scan_cache: tuple[int, list[int]] | None = None
        self._reduce_cache: dict[str, tuple[int, GroupedReduce | None]] = {}
        self._reduce_sums_cache: dict[tuple[str, str], tuple[int, tuple]] = {}
        self._counts_cache: dict[str, tuple[int, tuple]] = {}
        # Per-generation snapshot structures for stale pinned readers:
        # generation -> (epoch, visible slots ascending by rid, rid map)
        # and (column, generation) -> (epoch, snapshot ordered index).
        self._visible_cache: dict[
            int, tuple[int, list[int], dict[int, int]]
        ] = {}
        self._ordered_cache: dict[
            tuple[str, int], tuple[int, _OrderedIndex]
        ] = {}
        if schema.primary_key:
            self.create_index(schema.primary_key)
        for column in schema.columns:
            if column.unique:
                self.create_index(column.name)

    # ------------------------------------------------------------------
    # MVCC wiring
    # ------------------------------------------------------------------
    def bind_versioning(
        self,
        clock: GenerationClock,
        snapshots: SnapshotManager,
        in_transaction: Callable[[], bool] | None = None,
    ) -> None:
        """Attach the database's shared clock and snapshot manager.

        Called by :class:`~repro.db.database.Database` on (empty)
        tables it owns; from then on commit points advance the shared
        clock and reclamation is gated on pinned snapshots.
        ``in_transaction`` reports an open multi-statement transaction —
        while one is open, updates must version-append even with no
        reader pinned, because a reader pinning *before the commit*
        must not see any of the transaction's writes.
        """
        self._clock = clock
        self._snapshots = snapshots
        self._in_transaction = in_transaction

    def _pin_generation(self) -> int | None:
        """The calling thread's pinned generation, or None for current."""
        snapshots = self._snapshots
        if snapshots is None:
            return None
        return snapshots.active_generation()

    def _stale(self, generation: int | None) -> bool:
        """Latch-held: must this read take the visibility-filtered path?"""
        return generation is not None and self._max_stamp > generation

    def _autocommit(self) -> None:
        """Standalone-table mode: each mutation is its own commit."""
        if self._snapshots is None:
            self._clock.advance()
            if self._dead:
                self.vacuum()

    # ------------------------------------------------------------------
    # Snapshot structures (built and memoised under the latch)
    # ------------------------------------------------------------------
    def _visible(
        self, generation: int
    ) -> tuple[list[int], dict[int, int]]:
        """Latch-held: (slots ascending by rid, rid -> slot) at ``generation``."""
        entry = self._visible_cache.get(generation)
        if entry is not None and entry[0] == self._mutations:
            return entry[1], entry[2]
        created = self._created
        deleted = self._deleted
        pairs: list[tuple[int, int]] = []
        for slot, rid in enumerate(self._id_at):
            if rid is None or created[slot] > generation:
                continue
            ended = deleted[slot]
            if ended is not None and ended <= generation:
                continue
            pairs.append((rid, slot))
        # At most one version of a row id is visible at any generation
        # (an update ends the old version at the exact generation that
        # creates the new one), so the pairs sort to unique rids.
        pairs.sort()
        slots = [slot for __, slot in pairs]
        rid_map = dict(pairs)
        if len(self._visible_cache) >= _VISIBLE_CACHE_CAP:
            self._visible_cache.pop(next(iter(self._visible_cache)))
        self._visible_cache[generation] = (self._mutations, slots, rid_map)
        return slots, rid_map

    def _visible_map(self) -> dict[int, int]:
        """rid -> slot for the calling thread's read (pin-aware)."""
        generation = self._pin_generation()
        if generation is None:
            return self._slot_of
        with self._latch:
            if not self._stale(generation):
                return self._slot_of
            return self._visible(generation)[1]

    def _snapshot_ordered(
        self, column: str, generation: int
    ) -> _OrderedIndex:
        """Latch-held: ordered index over the rows visible at ``generation``."""
        key = (column, generation)
        entry = self._ordered_cache.get(key)
        if entry is not None and entry[0] == self._mutations:
            return entry[1]
        slots, __ = self._visible(generation)
        bank = self._banks[column]
        id_at = self._id_at
        index = _OrderedIndex()
        entries = index._entries
        for slot in slots:
            value = bank[slot]
            if not is_null(value):
                entries.append((ordering_key(value), id_at[slot]))
        entries.sort()
        if len(self._ordered_cache) >= _ORDERED_CACHE_CAP:
            self._ordered_cache.pop(next(iter(self._ordered_cache)))
        self._ordered_cache[key] = (self._mutations, index)
        return index

    def _ordered_for_read(self, column: str) -> _OrderedIndex:
        """Latch-held: the right ordered index for the calling reader."""
        generation = self._pin_generation()
        if self._stale(generation):
            return self._snapshot_ordered(column, generation)
        return self._ordered_indexes[column]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.schema.name

    def __len__(self) -> int:
        generation = self._pin_generation()
        if generation is None:
            return len(self._slot_of)
        with self._latch:
            if not self._stale(generation):
                return len(self._slot_of)
            return len(self._visible(generation)[0])

    def __iter__(self) -> Iterator[Row]:
        """Iterate over copies of all rows (stable order by row id).

        The rows are snapshotted (columnwise) up front, so mutating the
        table mid-iteration affects neither the count nor the contents
        of the rows already promised.
        """
        return iter(self.materialise_slots(self.scan_slots()))

    def row_ids(self) -> list[int]:
        generation = self._pin_generation()
        with self._latch:
            if self._stale(generation):
                # The visible map iterates in ascending-rid order.
                return list(self._visible(generation)[1])
            return sorted(self._slot_of)

    def has_row(self, row_id: int) -> bool:
        return row_id in self._visible_map()

    def _row_at(self, slot: int) -> Row:
        """Fresh dict of the row at ``slot`` (bank layout's single exit)."""
        return dict(
            zip(self._columns, (bank[slot] for bank in self._bank_list))
        )

    def get(self, row_id: int) -> Row:
        """Return a fresh dict copy of the row with internal id ``row_id``."""
        return self._row_at(self._visible_map()[row_id])

    def row_view(self, row_id: int) -> RowView:
        """A lazy bank-backed view of one row — read-only by convention.

        The query executor filters and joins over views to avoid one
        dict copy per visited row; anything handed back to callers is
        copied (or rebuilt) at the output boundary.
        """
        return RowView(self._banks, self._visible_map()[row_id])

    def iter_view_items(self) -> Iterator[tuple[int, RowView]]:
        """``(row_id, row view)`` pairs in row-id order (read-only)."""
        banks = self._banks
        id_at = self._id_at
        return ((id_at[s], RowView(banks, s)) for s in self.scan_slots())

    def iter_views(self) -> Iterator[RowView]:
        """Row views in row-id order (read-only) — the sequential scan's
        row stream for the executor's row-at-a-time mode."""
        banks = self._banks
        return (RowView(banks, s) for s in self.scan_slots())

    @property
    def mutation_count(self) -> int:
        """Monotonic per-table write generation (DML + index DDL).

        Exposed so observers (the autotune policy, benchmarks) can
        measure write rates without reaching into storage internals.
        """
        return self._mutations

    def has_index(self, column: str) -> bool:
        return column in self._indexes

    def has_ordered_index(self, column: str) -> bool:
        return column in self._ordered_indexes

    def ordered_index(self, column: str) -> _OrderedIndexHandle:
        if column not in self._ordered_indexes:
            raise KeyError(column)
        return _OrderedIndexHandle(self, column)

    def hash_index_columns(self) -> list[str]:
        """Columns carrying a hash index (sorted; includes pk/unique)."""
        return sorted(self._indexes)

    def ordered_index_columns(self) -> list[str]:
        """Columns carrying an ordered secondary index (sorted)."""
        return sorted(self._ordered_indexes)

    # ------------------------------------------------------------------
    # Columnar access (the batched executor's surface)
    # ------------------------------------------------------------------
    def bank_map(self) -> dict[str, list]:
        """The internal ``column -> bank`` mapping (read-only by
        convention).  Banks are parallel by slot; entries at free slots
        are ``None`` and must only be reached through active slots."""
        return self._banks

    def scan_slots(self) -> "range | list[int]":
        """Slots visible to the calling reader, in ascending row-id order.

        Returns a :class:`range` covering the banks whole when the table
        is dense (no holes, slots already in id order) so batched
        operators can run directly over the full column lists.  A
        pinned reader whose generation predates newer stamps gets the
        visibility-filtered slot list instead.
        """
        generation = self._pin_generation()
        with self._latch:
            if self._stale(generation):
                return self._visible(generation)[0]
            if self._dense:
                return range(len(self._id_at))
            if self._sealed_len:
                cached = self._scan_cache
                if cached is not None and cached[0] == self._mutations:
                    return cached[1]
                merged = self._merged_scan()
                self._scan_cache = (self._mutations, merged)
                return merged
            slot_of = self._slot_of
            return [slot_of[rid] for rid in sorted(slot_of)]

    def ids_for_slots(self, slots: Sequence[int]) -> list[int]:
        """Row ids of ``slots``, preserving the given slot order."""
        id_at = self._id_at
        return [id_at[s] for s in slots]

    def slots_for_ids(self, row_ids: Sequence[int]) -> list[int]:
        """Slots of ``row_ids``, preserving the given id order.

        The bridge from index lookups (which speak row ids) back into
        the batched executor's slot world.
        """
        slot_of = self._visible_map()
        return [slot_of[r] for r in row_ids]

    def index_buckets(self, column: str) -> dict[Any, set[int]]:
        """The hash index's ``value -> row-id set`` buckets for
        ``column`` (read-only by convention; current state — pinned
        readers resolve through the visibility-aware surfaces instead).
        NULLs are not indexed, so the buckets cover ``len(table)`` rows
        only when the column holds no NULL.  Raises ``KeyError`` when
        the column is unindexed."""
        return self._indexes[column]._buckets

    def grouped_layout(
        self, column: str
    ) -> tuple[list, list[int], list[int]] | None:
        """``(keys, flat_slots, bounds)``: the table regrouped by the
        hash index on ``column``.

        ``flat_slots`` lists every active slot, clustered by group;
        group ``i`` holds key ``keys[i]`` and spans
        ``flat_slots[bounds[i]:bounds[i + 1]]``.  Groups appear in
        first-appearance scan order and each group's slots stay in scan
        order, so walking the layout visits exactly the rows a
        sequential scan would — just pre-clustered, which lets grouped
        aggregates reduce each segment with C-level primitives instead
        of scattering row-at-a-time into an accumulator dict.

        The layout is pure index structure (no cell values), so it is
        memoised until the next mutation.  Returns ``None`` when the
        column is unindexed or holds NULLs (NULL keys never enter the
        index, so the buckets would not cover the table), and for a
        pinned reader whose snapshot predates newer stamps — the index
        describes current state, so the executor falls back to its
        scan-based grouping for that turn.
        """
        index = self._indexes.get(column)
        if index is None:
            return None
        with self._latch:
            if self._stale(self._pin_generation()):
                return None
            generation = self._mutations
            cached = self._group_layouts.get(column)
            if cached is not None and cached[0] == generation:
                return cached[1]
            buckets = index._buckets
            layout: tuple[list, list[int], list[int]] | None
            if sum(map(len, buckets.values())) != len(self._slot_of):
                layout = None
            else:
                # First-appearance order == ascending minimum row id;
                # the minima are distinct across groups, so the tuple
                # sort never falls through to comparing (possibly
                # mixed-type) keys.
                groups = []
                for value, ids in buckets.items():
                    ordered = sorted(ids)
                    groups.append((ordered[0], value, ordered))
                groups.sort()
                keys: list = []
                flat_ids: list[int] = []
                bounds: list[int] = [0]
                for __, value, ordered in groups:
                    keys.append(value)
                    flat_ids.extend(ordered)
                    bounds.append(len(flat_ids))
                slot_of = self._slot_of
                layout = (keys, [slot_of[r] for r in flat_ids], bounds)
            self._group_layouts[column] = (generation, layout)
            return layout

    def slot_buckets(self, column: str) -> dict[Any, list[int]]:
        """``value -> visible slots`` (scan order) for ``column``.

        The build side of a batched hash join, memoised per mutation
        generation like :meth:`grouped_layout` — a join index in slot
        space, so repeated probes skip both the per-query build pass
        and any row-id-to-slot translation.  NULLs never match an
        equi-join, so they get no bucket.  Works for any column,
        indexed or not.  A stale pinned reader gets a fresh (unmemoised)
        build over its visible slots.
        """
        generation = self._pin_generation()
        with self._latch:
            if self._stale(generation):
                return self._bucket_build(
                    column, self._visible(generation)[0]
                )
            epoch = self._mutations
            cached = self._slot_bucket_cache.get(column)
            if cached is not None and cached[0] == epoch:
                return cached[1]
            if self._sealed_len:
                buckets = self._merged_buckets(column)
            else:
                buckets = self._bucket_build(column, self.scan_slots())
            self._slot_bucket_cache[column] = (epoch, buckets)
            return buckets

    def _bucket_build(
        self, column: str, slots: Sequence[int]
    ) -> dict[Any, list[int]]:
        bank = self._banks[column]
        buckets: dict[Any, list[int]] = {}
        get = buckets.get
        for slot in slots:
            value = bank[slot]
            if value is None:
                continue
            bucket = get(value)
            if bucket is None:
                buckets[value] = [slot]
            else:
                bucket.append(slot)
        return buckets

    def grouped_tallies(
        self, column: str, value_column: str
    ) -> tuple[list, list[int] | None] | None:
        """``(tallies, counts)``: prefix sums of ``value_column`` over
        the grouped layout for ``column``.

        ``tallies[i]`` is the sum of the first ``i`` clustered values
        (NULLs contribute 0), so any group's sum is one subtraction of
        its layout bounds.  ``counts`` is the matching prefix count of
        non-NULL values — ``None`` when the segment holds no NULL, in
        which case group sizes already are the non-NULL counts.

        Like the layout itself this is pure per-generation structure
        (a materialised segment tally, the hash-index analogue of a
        count-augmented B-tree): any mutation invalidates it.  Returns
        ``None`` when there is no layout for ``column``.
        """
        with self._latch:
            layout = self.grouped_layout(column)
            if layout is None:
                return None
            generation = self._mutations
            memo_key = (column, value_column)
            cached = self._group_tallies.get(memo_key)
            if cached is not None and cached[0] == generation:
                return cached[1]
            values = list(
                map(self._banks[value_column].__getitem__, layout[1])
            )
            counts: list[int] | None
            if None in values:
                tallies = list(accumulate(
                    (0 if v is None else v for v in values), initial=0
                ))
                counts = list(accumulate(
                    (v is not None for v in values), initial=0
                ))
            else:
                tallies = list(accumulate(values, initial=0))
                counts = None
            result = (tallies, counts)
            self._group_tallies[memo_key] = (generation, result)
            return result

    def views_for_slots(self, slots: Sequence[int]) -> Iterator[RowView]:
        """Lazy row views over ``slots``, preserving the given order."""
        banks = self._banks
        return (RowView(banks, s) for s in slots)

    def materialise_slots(
        self, slots: Sequence[int], columns: Sequence[str] | None = None
    ) -> list[Row]:
        """Fresh row dicts for ``slots``, built columnwise.

        ``columns`` restricts (and orders) the output keys — the batched
        Project path; unknown names raise ``KeyError`` exactly like
        ``row[column]`` on the row path would.
        """
        if not len(slots):
            # The row path never touches a column for zero rows, so an
            # unknown projected name must not raise here either.
            return []
        names = self._columns if columns is None else tuple(columns)
        banks = [self._banks[c] for c in names]
        if type(slots) is range:
            # A pinned reader's range is a *prefix*: writers may have
            # appended past it since the snapshot was taken, so only
            # treat the banks as whole when the lengths still agree.
            if banks and len(banks[0]) != slots.stop:
                selected: Sequence[Sequence[Any]] = [
                    bank[: slots.stop] for bank in banks
                ]
            else:
                selected = banks
        elif len(slots) > 1:
            # One C-level gather per bank instead of a Python loop per
            # bank — this is what keeps wide projections columnar.
            fetch = itemgetter(*slots)
            selected = [fetch(bank) for bank in banks]
        else:
            selected = [[bank[s] for s in slots] for bank in banks]
        if not banks:  # pragma: no cover - schemas always carry columns
            return [{} for __ in slots]
        # One C pipeline: transpose the selected banks and build every
        # row dict without a per-row Python frame.
        return list(map(dict, map(zip, repeat(names), zip(*selected))))

    # ------------------------------------------------------------------
    # Index management
    # ------------------------------------------------------------------
    def create_index(self, column: str) -> None:
        """Build (or rebuild) a hash index on ``column``."""
        self.schema.column(column)  # raises UnknownColumnError
        with self._latch:
            self._mutations += 1
            index = _HashIndex()
            bank = self._banks[column]
            for row_id, slot in self._slot_of.items():
                index.add(bank[slot], row_id)
            self._indexes[column] = index

    def create_ordered_index(self, column: str) -> None:
        """Build (or rebuild) an ordered secondary index on ``column``."""
        self.schema.column(column)  # raises UnknownColumnError
        with self._latch:
            index = _OrderedIndex()
            bank = self._banks[column]
            for row_id, slot in self._slot_of.items():
                index.add(bank[slot], row_id)
            self._ordered_indexes[column] = index

    def _constraint_backed(self, column: str) -> bool:
        """Whether the hash index on ``column`` enforces pk/unique."""
        if column == self.schema.primary_key:
            return True
        spec = self.schema.column(column)
        return bool(spec.unique)

    def drop_index(self, column: str) -> None:
        """Drop the hash index on ``column``.

        Constraint-backing indexes (primary key, unique columns) cannot
        be dropped: duplicate detection on insert/update relies on them.
        """
        self.schema.column(column)  # raises UnknownColumnError
        with self._latch:
            if column not in self._indexes:
                raise KeyError(column)
            if self._constraint_backed(column):
                raise ConstraintViolation(
                    f"index on {self.name}.{column} backs a "
                    "primary-key/unique constraint and cannot be dropped"
                )
            self._mutations += 1
            del self._indexes[column]
            self._group_layouts.pop(column, None)
            self._slot_bucket_cache.pop(column, None)

    def drop_ordered_index(self, column: str) -> None:
        """Drop the ordered secondary index on ``column``."""
        self.schema.column(column)  # raises UnknownColumnError
        with self._latch:
            if column not in self._ordered_indexes:
                raise KeyError(column)
            del self._ordered_indexes[column]
            stale = [k for k in self._ordered_cache if k[0] == column]
            for key in stale:
                del self._ordered_cache[key]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def _allocate_slot(self, row_id: int, stamp: int) -> int:
        """Claim a slot for ``row_id``: reuse a freed one or append."""
        if self._free:
            # A recycled slot sits in front of newer ids: the id order
            # of the slot walk is broken until the table fully empties.
            slot = self._free.pop()
            self._id_at[slot] = row_id
            self._created[slot] = stamp
            self._deleted[slot] = None
            self._id_ordered = False
        else:
            slot = len(self._id_at)
            self._id_at.append(row_id)
            self._created.append(stamp)
            self._deleted.append(None)
            for bank in self._bank_list:
                bank.append(None)
            if slot > 0:
                previous = self._id_at[slot - 1]
                if previous is not None and previous > row_id:
                    # An out-of-order restore (or version append) at
                    # the tail.
                    self._dense = False
                    self._id_ordered = False
        self._slot_of[row_id] = slot
        return slot

    def _write_slot(self, slot: int, row: Row) -> None:
        for column, bank in zip(self._columns, self._bank_list):
            bank[slot] = row[column]

    def _stamp(self) -> int:
        """The pending generation, recorded as this table's newest stamp."""
        stamp = self._clock.pending
        if stamp > self._max_stamp:
            self._max_stamp = stamp
        return stamp

    def insert(self, values: dict[str, Any]) -> int:
        """Insert one row; returns the internal row id.

        Values are coerced to the declared column types; missing columns
        default to NULL.  Raises :class:`ConstraintViolation` on NOT NULL,
        primary-key or unique violations, and
        :class:`UnknownColumnError` for unexpected keys.  The new
        version is stamped with the pending generation: invisible to
        pinned snapshots until the owning commit advances the clock.
        """
        row = self._normalise(values)
        self._check_not_null(row)
        self._check_unique(row, exclude_row_id=None)
        with self._latch:
            self._mutations += 1
            stamp = self._stamp()
            row_id = self._next_row_id
            self._next_row_id += 1
            slot = self._allocate_slot(row_id, stamp)
            self._write_slot(slot, row)
            for column, index in self._indexes.items():
                index.add(row[column], row_id)
            for column, ordered in self._ordered_indexes.items():
                ordered.add(row[column], row_id)
        self._autocommit()
        return row_id

    def update(self, row_id: int, changes: dict[str, Any]) -> Row:
        """Apply ``changes`` to an existing row; returns a copy of the old row.

        Version semantics: while any reader is pinned, the update
        appends a fresh version slot and tombstones the old one, so the
        pinned snapshot keeps reading the old cells.  With no pins live
        (and registration blocked for the duration), or when the slot
        was created by the still-uncommitted pending generation (its
        cells are invisible to every snapshot), the update writes in
        place — the pre-MVCC fast path, which also preserves density.
        """
        slot = self._slot_of[row_id]
        old = self._row_at(slot)
        new = dict(old)
        for column, value in changes.items():
            col = self.schema.column(column)
            new[column] = coerce(value, col.dtype)
        self._check_not_null(new)
        self._check_unique(new, exclude_row_id=row_id)
        snapshots = self._snapshots
        with self._latch:
            if slot < self._sealed_len:
                # Sealed cells are immutable even with no reader pinned:
                # the epoch-keyed sealed memos reference them, and the
                # next merge must still read the pre-update image to
                # subtract it.  Version-append into the delta instead.
                self._append_version(row_id, slot, old, new)
            elif snapshots is None or self._created[slot] == self._clock.pending:
                self._update_in_place(row_id, slot, old, new)
            elif self._in_transaction is not None and self._in_transaction():
                # Mid-transaction, "no pins right now" is not enough: a
                # reader pinning before the commit must see none of the
                # transaction's writes, so the committed slot must
                # survive untouched until then.
                self._append_version(row_id, slot, old, new)
            else:
                with snapshots.pins_blocked() as unpinned:
                    if unpinned:
                        self._update_in_place(row_id, slot, old, new)
                    else:
                        self._append_version(row_id, slot, old, new)
        self._autocommit()
        return old

    def _update_in_place(
        self, row_id: int, slot: int, old: Row, new: Row
    ) -> None:
        """Latch-held: overwrite the slot's cells (no visible snapshot)."""
        self._mutations += 1
        for column, index in self._indexes.items():
            if old[column] != new[column]:
                index.remove(old[column], row_id)
                index.add(new[column], row_id)
        for column, ordered in self._ordered_indexes.items():
            if old[column] != new[column]:
                ordered.remove(old[column], row_id)
                ordered.add(new[column], row_id)
        banks = self._banks
        for column, value in new.items():
            if old[column] is not value:
                banks[column][slot] = value

    def _append_version(
        self, row_id: int, slot: int, old: Row, new: Row
    ) -> None:
        """Latch-held: publish ``new`` as a fresh version of ``row_id``."""
        self._mutations += 1
        stamp = self._stamp()
        self._deleted[slot] = stamp
        self._dead.add(slot)
        new_slot = self._allocate_slot(row_id, stamp)
        self._write_slot(new_slot, new)
        # The superseded slot stays occupied until vacuum: the layout
        # has a non-live resident, so the dense fast path is off.
        self._dense = False
        for column, index in self._indexes.items():
            if old[column] != new[column]:
                index.remove(old[column], row_id)
                index.add(new[column], row_id)
        for column, ordered in self._ordered_indexes.items():
            if old[column] != new[column]:
                ordered.remove(old[column], row_id)
                ordered.add(new[column], row_id)

    def delete(self, row_id: int) -> Row:
        """Delete a row; returns a copy of it (for undo logs).

        The slot is tombstoned (stamped dead at the pending generation),
        not cleared: pinned snapshots older than the delete keep reading
        it until :meth:`vacuum` reclaims it.  Standalone tables vacuum
        immediately, reproducing the pre-MVCC physical layout exactly.
        """
        with self._latch:
            slot = self._slot_of.pop(row_id)
            row = self._row_at(slot)
            self._mutations += 1
            stamp = self._stamp()
            self._deleted[slot] = stamp
            self._dead.add(slot)
            self._dense = False
            for column, index in self._indexes.items():
                index.remove(row[column], row_id)
            for column, ordered in self._ordered_indexes.items():
                ordered.remove(row[column], row_id)
        self._autocommit()
        return row

    def restore(self, row_id: int, row: Row) -> None:
        """Re-insert a previously deleted row under its original id (undo)."""
        if row_id in self._slot_of:
            raise ConstraintViolation(
                f"table {self.name!r}: cannot restore row {row_id}, id in use"
            )
        with self._latch:
            self._mutations += 1
            stamp = self._stamp()
            slot = self._allocate_slot(row_id, stamp)
            for column, bank in zip(self._columns, self._bank_list):
                bank[slot] = row.get(column)
            self._next_row_id = max(self._next_row_id, row_id + 1)
            for column, index in self._indexes.items():
                index.add(row.get(column), row_id)
            for column, ordered in self._ordered_indexes.items():
                ordered.add(row.get(column), row_id)
        self._autocommit()

    # ------------------------------------------------------------------
    # Vacuum (physical reclamation)
    # ------------------------------------------------------------------
    def vacuum(self, min_pinned: int | None = None) -> int:
        """Reclaim dead versions no snapshot can see; returns the count.

        A slot is reclaimable when its delete stamp is at or below the
        oldest pinned generation (every live and future pin reads past
        it) or when it was created and deleted at the same generation
        (a rolled-back birth: visible at no generation at all).  The
        pass also restores the dense-scan invariants the pre-MVCC
        delete maintained inline: trailing holes are shed, a fully
        emptied table resets its banks wholesale, and density returns
        once no hole or dead slot remains.
        """
        with self._latch:
            if not self._dead:
                return 0
            pending = self._clock.pending
            if self._in_transaction is None or not self._in_transaction():
                # Aborted version-appends: the rollback restored the old
                # image into a pending-created duplicate while the
                # original sits tombstoned at the same (never-committed)
                # pending stamp.  Revert physically — un-tombstone the
                # original, retire the duplicate — so aborts leave no
                # residue behind.  Safe under live pins: the original
                # was visible to them either way, the duplicate never
                # was.
                for slot in list(self._dead):
                    if self._deleted[slot] != pending:
                        continue
                    rid = self._id_at[slot]
                    dup = self._slot_of.get(rid) if rid is not None else None
                    if dup is None or self._created[dup] != pending:
                        continue
                    if any(
                        bank[slot] != bank[dup] for bank in self._bank_list
                    ):
                        # Not a rollback residue: the duplicate carries a
                        # different image (e.g. a manual delete+restore
                        # awaiting its commit).  Leave both versions be.
                        continue
                    self._mutations += 1
                    self._deleted[slot] = None
                    self._slot_of[rid] = slot
                    self._deleted[dup] = self._created[dup]
                    self._dead.discard(slot)
                    self._dead.add(dup)
                if not self._dead:
                    return 0
            bound = self._clock.current
            if min_pinned is not None and min_pinned < bound:
                bound = min_pinned
            created = self._created
            deleted = self._deleted
            sealed_len = self._sealed_len
            # Sealed slots are never freed here: their cells must stay
            # readable so the two-part merges can subtract the retired
            # values from the epoch-keyed sealed memos.  Compaction is
            # what reclaims sealed space.
            freed = [
                slot
                for slot in self._dead
                if slot >= sealed_len
                and (deleted[slot] <= bound or created[slot] == deleted[slot])
            ]
            if not freed:
                return 0
            self._mutations += 1
            for slot in freed:
                self._dead.discard(slot)
                self._id_at[slot] = None
                self._created[slot] = 0
                self._deleted[slot] = None
                for bank in self._bank_list:
                    bank[slot] = None
                self._free.add(slot)
            if not self._slot_of and not self._dead:
                # Table emptied: reset the banks wholesale so a refill
                # is append-only (dense) again.  (With sealed content
                # resident the retired slots keep ``_dead`` non-empty,
                # so this branch implies the sealed segment is gone.)
                self._id_at.clear()
                self._free.clear()
                self._created.clear()
                self._deleted.clear()
                for bank in self._bank_list:
                    bank.clear()
                self._dense = True
                self._id_ordered = True
                self._sealed_len = 0
                if self._sealed_epoch:
                    self._sealed_epoch += 1
            else:
                # Shed trailing holes so tail-heavy delete patterns keep
                # the layout hole-free, exactly as the in-delete
                # compaction used to.  (Sealed slots never become holes,
                # so the shed cannot cross into the sealed prefix.)
                while (
                    len(self._id_at) > self._sealed_len
                    and self._id_at[-1] is None
                ):
                    tail = len(self._id_at) - 1
                    self._id_at.pop()
                    self._created.pop()
                    self._deleted.pop()
                    for bank in self._bank_list:
                        bank.pop()
                    self._free.discard(tail)
                self._dense = (
                    self._id_ordered and not self._free and not self._dead
                )
            self._drop_derived_memos()
            # Recompute the newest stamp still resident: once the clock
            # has advanced past every remaining stamp, pinned readers
            # get their exact fast paths back.
            stamp = 0
            created = self._created
            deleted = self._deleted
            for slot, rid in enumerate(self._id_at):
                if rid is None:
                    continue
                if created[slot] > stamp:
                    stamp = created[slot]
                ended = deleted[slot]
                if ended is not None and ended > stamp:
                    stamp = ended
            self._max_stamp = stamp
            return len(freed)

    # ------------------------------------------------------------------
    # Sealed segment: storage introspection
    # ------------------------------------------------------------------
    @property
    def is_sealed(self) -> bool:
        """True once :meth:`compact` has sealed this table at least once."""
        return self._sealed_epoch > 0

    @property
    def sealed_epoch(self) -> int:
        """Bumped once per compaction — the sealed memos' cache key."""
        return self._sealed_epoch

    @property
    def sealed_rows(self) -> int:
        """Slots inside the sealed segment (live or retired)."""
        return self._sealed_len

    @property
    def delta_rows(self) -> int:
        """Slots past the sealed segment — the per-write rescan cost."""
        return len(self._id_at) - self._sealed_len

    @property
    def compactions(self) -> int:
        return self._compactions

    @property
    def last_compaction_seconds(self) -> float:
        return self._last_compaction_seconds

    @property
    def next_row_id(self) -> int:
        """The id the next insert will take (snapshot bookkeeping)."""
        return self._next_row_id

    def advance_row_counter(self, next_row_id: int) -> None:
        """Raise the id counter to at least ``next_row_id`` (restore path:
        a dumped table may have deleted its highest-id rows, and replaying
        its delta log needs inserts to re-take the exact ids they had)."""
        with self._latch:
            if next_row_id > self._next_row_id:
                self._next_row_id = next_row_id

    def storage_stats(self) -> TableStorageStats:
        with self._latch:
            sealed_len = self._sealed_len
            return TableStorageStats(
                table=self.name,
                sealed_rows=sealed_len,
                delta_rows=len(self._id_at) - sealed_len,
                retired_rows=sum(1 for s in self._dead if s < sealed_len),
                sealed_epoch=self._sealed_epoch,
                compactions=self._compactions,
                last_compaction_seconds=self._last_compaction_seconds,
            )

    # ------------------------------------------------------------------
    # Sealed segment: memo management
    # ------------------------------------------------------------------
    def _drop_derived_memos(self) -> None:
        """Latch-held: drop every memo keyed to the current slot layout.

        The single place vacuum, compaction and index rebuilds clear
        slot-addressed derived state, instead of each surface trusting
        the mutation counter alone — a freed slot's id must never leak
        through a stale layout into a join build (the regression
        ``tests/db/test_segments.py`` pins down).  Sealed-part memos are
        *not* dropped here: they are epoch-keyed and stay valid across
        vacuum, which is the whole point of the sealed split.
        """
        self._group_layouts.clear()
        self._group_tallies.clear()
        self._slot_bucket_cache.clear()
        self._visible_cache.clear()
        self._ordered_cache.clear()
        self._scan_cache = None
        self._delta_cache = None
        self._reduce_cache.clear()
        self._reduce_sums_cache.clear()
        self._counts_cache.clear()

    def _drop_sealed_memos(self) -> None:
        """Latch-held: drop the epoch-keyed sealed structures (compaction
        re-seals over a new layout, so every sealed memo is obsolete)."""
        self._sealed_buckets.clear()
        self._sealed_sums.clear()
        self._sealed_counts.clear()

    # ------------------------------------------------------------------
    # Sealed segment: two-part read surfaces
    # ------------------------------------------------------------------
    def _delta_state(self) -> tuple[list[int], list[tuple[int, int]]]:
        """Latch-held: ``(retired sealed slots asc, delta (rid, slot)
        pairs asc by rid)`` for the current state — the cheap half every
        two-part merge recomputes per mutation generation."""
        cached = self._delta_cache
        if cached is not None and cached[0] == self._mutations:
            return cached[1]
        sealed_len = self._sealed_len
        dead = self._dead
        dead_sealed = sorted(s for s in dead if s < sealed_len)
        id_at = self._id_at
        pairs = sorted(
            (rid, slot)
            for slot in range(sealed_len, len(id_at))
            if (rid := id_at[slot]) is not None and slot not in dead
        )
        state = (dead_sealed, pairs)
        self._delta_cache = (self._mutations, state)
        return state

    def _merged_scan(self) -> list[int]:
        """Latch-held: live slots in ascending row-id order, merged from
        the sealed prefix (already rid-ordered) and the sorted delta."""
        dead_sealed, delta = self._delta_state()
        if dead_sealed:
            gone = set(dead_sealed)
            sealed = [s for s in range(self._sealed_len) if s not in gone]
        else:
            sealed = list(range(self._sealed_len))
        if not delta:
            return sealed
        id_at = self._id_at
        out: list[int] = []
        i, n = 0, len(sealed)
        for rid, slot in delta:
            while i < n and id_at[sealed[i]] < rid:
                out.append(sealed[i])
                i += 1
            out.append(slot)
        out.extend(sealed[i:])
        return out

    def _sealed_bucket_build(self, column: str) -> dict[Any, list[int]]:
        """Latch-held: ``value -> sealed slots`` exactly as at the seal.

        Built over the whole sealed prefix (every sealed slot was live
        at the seal; retired cells are unchanged), so the memo is valid
        for the epoch's entire lifetime — merges subtract retirements.
        Bucket insertion order is first-appearance order: the sealed
        prefix is rid-ordered by construction.
        """
        entry = self._sealed_buckets.get(column)
        if entry is not None and entry[0] == self._sealed_epoch:
            return entry[1]
        buckets = self._bucket_build(column, range(self._sealed_len))
        self._sealed_buckets[column] = (self._sealed_epoch, buckets)
        return buckets

    def _merged_buckets(self, column: str) -> dict[Any, list[int]]:
        """Latch-held: current-state slot buckets, sealed part shared.

        Untouched keys reuse the sealed bucket lists by reference (the
        surface is read-only by convention); only keys with retired or
        delta rows rebuild, each by one rid-ordered merge — O(touched +
        delta) per mutation generation instead of O(table).
        """
        sealed = self._sealed_bucket_build(column)
        dead_sealed, delta = self._delta_state()
        if not dead_sealed and not delta:
            return sealed
        bank = self._banks[column]
        id_at = self._id_at
        removed: dict[Any, set[int]] = {}
        for slot in dead_sealed:
            value = bank[slot]
            if value is None:
                continue
            removed.setdefault(value, set()).add(slot)
        added: dict[Any, list[int]] = {}
        for __, slot in delta:
            value = bank[slot]
            if value is None:
                continue
            added.setdefault(value, []).append(slot)
        merged = dict(sealed)
        for value in removed.keys() | added.keys():
            base = sealed.get(value, ())
            gone = removed.get(value)
            live = [s for s in base if s not in gone] if gone else list(base)
            extra = added.get(value)
            if extra:
                out: list[int] = []
                i, n = 0, len(live)
                for slot in extra:
                    rid = id_at[slot]
                    while i < n and id_at[live[i]] < rid:
                        out.append(live[i])
                        i += 1
                    out.append(slot)
                out.extend(live[i:])
                live = out
            if live:
                merged[value] = live
            else:
                merged.pop(value, None)
        return merged

    def _sealed_sum_state(
        self, column: str, value_column: str
    ) -> dict[Any, tuple[int, int]]:
        """Latch-held: per-group ``(sum, non-NULL count)`` of
        ``value_column`` over the sealed segment, grouped by ``column``
        — computed once per epoch."""
        memo_key = (column, value_column)
        entry = self._sealed_sums.get(memo_key)
        if entry is not None and entry[0] == self._sealed_epoch:
            return entry[1]
        vbank = self._banks[value_column]
        state: dict[Any, tuple[int, int]] = {}
        for key, slots in self._sealed_bucket_build(column).items():
            total = 0
            nn = 0
            for slot in slots:
                value = vbank[slot]
                if value is not None:
                    total += value
                    nn += 1
            state[key] = (total, nn)
        self._sealed_sums[memo_key] = (self._sealed_epoch, state)
        return state

    def _sealed_count_state(self, column: str) -> tuple[Counter, int]:
        """Latch-held: ``(value Counter, NULL count)`` over the sealed
        segment — computed once per epoch."""
        entry = self._sealed_counts.get(column)
        if entry is not None and entry[0] == self._sealed_epoch:
            return entry[1]
        counts = Counter(self._banks[column][: self._sealed_len])
        nulls = counts.pop(None, 0)
        state = (counts, nulls)
        self._sealed_counts[column] = (self._sealed_epoch, state)
        return state

    def grouped_reduce(self, column: str) -> GroupedReduce | None:
        """Two-part grouped-aggregation state for ``column``.

        The sealed counterpart of :meth:`grouped_layout` +
        :meth:`grouped_tallies`: group keys in first-appearance scan
        order with sizes, and per-group sums on demand — but built by
        adjusting the epoch-keyed sealed group state with the retired
        and delta rows, so a commit between two analytic turns costs
        O(groups + delta) instead of an O(table) rebuild.  Returns
        ``None`` when the table was never compacted, the column is
        unindexed or holds NULL keys (same coverage rule as the
        layout), or the reader's snapshot is stale — the executor falls
        back to the existing paths in each case.
        """
        if not self._sealed_epoch:
            return None
        index = self._indexes.get(column)
        if index is None:
            return None
        with self._latch:
            if self._stale(self._pin_generation()):
                return None
            generation = self._mutations
            cached = self._reduce_cache.get(column)
            if cached is not None and cached[0] == generation:
                return cached[1]
            buckets = index._buckets
            result: GroupedReduce | None
            if sum(map(len, buckets.values())) != len(self._slot_of):
                result = None  # NULL group keys: buckets do not cover
            else:
                result = self._build_reduce(column, generation)
            self._reduce_cache[column] = (generation, result)
            return result

    def _build_reduce(self, column: str, generation: int) -> GroupedReduce:
        """Latch-held: merge sealed group state with the delta."""
        sealed = self._sealed_bucket_build(column)
        dead_sealed, delta = self._delta_state()
        id_at = self._id_at
        bank = self._banks[column]
        if not dead_sealed and not delta:
            keys = list(sealed)
            sizes = [len(sealed[k]) for k in keys]
            return GroupedReduce(
                self, column, generation, keys, sizes, {}, {}
            )
        removed: dict[Any, set[int]] = {}
        for slot in dead_sealed:
            value = bank[slot]
            if value is None:
                continue
            removed.setdefault(value, set()).add(slot)
        added: dict[Any, list[int]] = {}
        for __, slot in delta:
            value = bank[slot]
            if value is None:  # pragma: no cover - coverage check forbids
                continue
            added.setdefault(value, []).append(slot)
        # Rebuild the first-appearance order: retiring a group's oldest
        # row, or a delta row undercutting it, moves the group — the
        # minima stay distinct across groups, so the sort never falls
        # through to comparing (possibly mixed-type) keys.
        groups: list[tuple[int, Any, int, list[int] | None]] = []
        for key, base in sealed.items():
            gone = removed.get(key)
            extra = added.get(key)
            if gone is None and extra is None:
                groups.append((id_at[base[0]], key, len(base), None))
                continue
            live = [s for s in base if s not in gone] if gone else base
            min_rid = id_at[live[0]] if live else None
            if extra:
                rid = id_at[extra[0]]
                if min_rid is None or rid < min_rid:
                    min_rid = rid
            size = len(live) + (len(extra) if extra else 0)
            if size:
                groups.append((min_rid, key, size, extra))
        for key, extra in added.items():
            if key not in sealed:
                groups.append((id_at[extra[0]], key, len(extra), extra))
        groups.sort(key=itemgetter(0))
        keys = [g[1] for g in groups]
        sizes = [g[2] for g in groups]
        return GroupedReduce(
            self, column, generation, keys, sizes, removed, added
        )

    def reduce_sums(
        self, reduce: GroupedReduce, value_column: str
    ) -> tuple[list, list[int]]:
        """``(sums, non-NULL counts)`` per group of ``reduce`` — the
        sealed per-group totals adjusted by the retired/delta cells the
        reduce recorded.  Called through :meth:`GroupedReduce.sums`."""
        with self._latch:
            memo_key = (reduce.column, value_column)
            cached = self._reduce_sums_cache.get(memo_key)
            if cached is not None and cached[0] == reduce.generation:
                return cached[1]
            sealed = self._sealed_sum_state(reduce.column, value_column)
            vbank = self._banks[value_column]
            removed = reduce.removed_slots
            added = reduce.added_slots
            sums: list = []
            nns: list[int] = []
            for key in reduce.keys:
                total, nn = sealed.get(key, (0, 0))
                for slot in removed.get(key, ()):
                    value = vbank[slot]
                    if value is not None:
                        total -= value
                        nn -= 1
                for slot in added.get(key, ()):
                    value = vbank[slot]
                    if value is not None:
                        total += value
                        nn += 1
                sums.append(total)
                nns.append(nn)
            result = (sums, nns)
            self._reduce_sums_cache[memo_key] = (reduce.generation, result)
            return result

    def column_counts(self, column: str) -> tuple[Counter, int] | None:
        """``(non-NULL value Counter, NULL count)`` for the calling
        reader, or ``None`` when the table was never compacted or the
        snapshot is stale.  The statistics catalog derives per-column
        summaries from this instead of rescanning: the sealed counter
        is built once per epoch and merged with the delta per mutation
        generation.  Read-only by convention — the no-write fast path
        returns the sealed counter itself.
        """
        if not self._sealed_epoch:
            return None
        self.schema.column(column)  # raises UnknownColumnError
        with self._latch:
            if self._stale(self._pin_generation()):
                return None
            generation = self._mutations
            cached = self._counts_cache.get(column)
            if cached is not None and cached[0] == generation:
                return cached[1]
            sealed_counts, sealed_nulls = self._sealed_count_state(column)
            dead_sealed, delta = self._delta_state()
            if not dead_sealed and not delta:
                result = (sealed_counts, sealed_nulls)
            else:
                counts = sealed_counts.copy()
                nulls = sealed_nulls
                bank = self._banks[column]
                for slot in dead_sealed:
                    value = bank[slot]
                    if value is None:
                        nulls -= 1
                    else:
                        remaining = counts[value] - 1
                        if remaining:
                            counts[value] = remaining
                        else:
                            del counts[value]
                for __, slot in delta:
                    value = bank[slot]
                    if value is None:
                        nulls += 1
                    else:
                        counts[value] += 1
                result = (counts, nulls)
            self._counts_cache[column] = (generation, result)
            return result

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def compact(self, min_pinned: int | None = None) -> bool:
        """Fold the delta into a fresh sealed segment; True if resealed.

        Re-densifies the banks in ascending row-id order, reclaims
        retired sealed slots and superseded delta versions, seals the
        whole table and bumps the epoch once.  Requires quiesced MVCC
        state — no uncommitted stamps and no dead versions a pinned
        snapshot might still need — and returns ``False`` (leaving the
        table exactly as it was) when that does not hold;
        :meth:`repro.db.database.Database.compact` blocks pin
        registration around the call to guarantee it.  The swap
        publishes entirely new structures, so readers holding the old
        banks (row views, in-flight scans) stay consistent.
        """
        started = perf_counter()
        with self._latch:
            self.vacuum(min_pinned)
            if self._max_stamp > self._clock.current:
                return False  # uncommitted stamps resident
            bound = self._clock.current
            if min_pinned is not None and min_pinned < bound:
                bound = min_pinned
            deleted = self._deleted
            sealed_len = self._sealed_len
            for slot in self._dead:
                if slot >= sealed_len:
                    # Vacuum left it: a pinned snapshot still reads it.
                    return False
                if deleted[slot] > bound:
                    return False  # retired version still pinned
            if (
                self._sealed_epoch
                and sealed_len == len(self._id_at)
                and not self._free
                and not self._dead
            ):
                return False  # fully sealed already: nothing to fold
            if self._dense:
                # Append-only since the last seal (or a fresh dense
                # table): the layout is already the sealed shape, so
                # sealing is just moving the boundary.
                self._sealed_len = len(self._id_at)
            else:
                pairs = sorted(self._slot_of.items())
                slots = [slot for __, slot in pairs]
                columns = self._columns
                if len(slots) > 1:
                    fetch = itemgetter(*slots)
                    banks = {
                        column: list(fetch(bank))
                        for column, bank in zip(columns, self._bank_list)
                    }
                elif slots:
                    only = slots[0]
                    banks = {
                        column: [bank[only]]
                        for column, bank in zip(columns, self._bank_list)
                    }
                else:
                    banks = {column: [] for column in columns}
                created = self._created
                self._banks = banks
                self._bank_list = [banks[c] for c in columns]
                self._id_at = [rid for rid, __ in pairs]
                self._slot_of = {
                    rid: slot for slot, (rid, __) in enumerate(pairs)
                }
                self._created = [created[s] for s in slots]
                self._deleted = [None] * len(slots)
                self._free = set()
                self._dead = set()
                self._dense = True
                self._id_ordered = True
                self._sealed_len = len(slots)
            self._sealed_epoch += 1
            self._mutations += 1
            self._drop_derived_memos()
            self._drop_sealed_memos()
            self._compactions += 1
            self._last_compaction_seconds = perf_counter() - started
            return True

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def lookup(self, column: str, value: Any) -> list[int]:
        """Row ids where ``column == value`` (uses index when available)."""
        col = self.schema.column(column)
        needle = coerce(value, col.dtype)
        if needle is None:
            return []
        generation = self._pin_generation()
        with self._latch:
            if self._stale(generation):
                # The index describes current state; filter the
                # snapshot's visible slots instead (rid-sorted already).
                slots, __ = self._visible(generation)
                bank = self._banks[column]
                id_at = self._id_at
                return [id_at[s] for s in slots if bank[s] == needle]
            index = self._indexes.get(column)
            if index is not None:
                return sorted(index.lookup(needle))
            bank = self._banks[column]
            id_at = self._id_at
            return [
                id_at[slot]
                for slot in self.scan_slots()
                if bank[slot] == needle
            ]

    def scan(self, predicate: Callable[[Row], bool] | None = None) -> list[int]:
        """Row ids of rows matching ``predicate`` (all rows when ``None``)."""
        if predicate is None:
            return self.row_ids()
        banks = self._banks
        id_at = self._id_at
        return [
            id_at[slot]
            for slot in self.scan_slots()
            if predicate(RowView(banks, slot))
        ]

    def column_values(self, column: str, row_ids: list[int] | None = None) -> list[Any]:
        """Values of one column, over all rows or a row-id subset.

        Reads straight from the column's bank — no row materialisation;
        this is what the statistics catalog builds its summaries from.
        """
        self.schema.column(column)
        bank = self._banks[column]
        if row_ids is None:
            slots = self.scan_slots()
            if type(slots) is range:
                # Slice to the snapshot prefix: the bank may have grown.
                return bank[: slots.stop]
            return [bank[s] for s in slots]
        slot_of = self._visible_map()
        return [bank[slot_of[rid]] for rid in row_ids]

    def column_arrays(self) -> dict[str, list]:
        """Every column's values in row-id order, from one slot pass.

        What a whole-table consumer (statistics rebuild, snapshot dump)
        should use instead of per-column :meth:`column_values` calls,
        which would each re-derive the slot order on non-dense tables.
        """
        slots = self.scan_slots()
        if type(slots) is range:
            return {
                column: bank[: slots.stop]
                for column, bank in zip(self._columns, self._bank_list)
            }
        return {
            column: [bank[s] for s in slots]
            for column, bank in zip(self._columns, self._bank_list)
        }

    def distinct_count(self, column: str) -> int:
        """Number of distinct non-NULL values in ``column``."""
        generation = self._pin_generation()
        with self._latch:
            if self._stale(generation):
                slots, __ = self._visible(generation)
                bank = self._banks[column]
                return len({
                    bank[s] for s in slots if not is_null(bank[s])
                })
            index = self._indexes.get(column)
            if index is not None:
                return len(index)
            bank = self._banks[column]
            values = {
                bank[slot]
                for slot in self.scan_slots()
                if not is_null(bank[slot])
            }
            return len(values)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _normalise(self, values: dict[str, Any]) -> Row:
        for key in values:
            if not self.schema.has_column(key):
                raise UnknownColumnError(
                    f"table {self.name!r} has no column {key!r}"
                )
        row: Row = {}
        for column in self.schema.columns:
            raw = values.get(column.name)
            row[column.name] = coerce(raw, column.dtype)
        return row

    def _check_not_null(self, row: Row) -> None:
        for column in self.schema.columns:
            required = not column.nullable or column.name == self.schema.primary_key
            if required and is_null(row[column.name]):
                raise ConstraintViolation(
                    f"table {self.name!r}: column {column.name!r} may not be NULL"
                )

    def _check_unique(self, row: Row, exclude_row_id: int | None) -> None:
        unique_columns = [
            c.name
            for c in self.schema.columns
            if c.unique or c.name == self.schema.primary_key
        ]
        for column in unique_columns:
            value = row[column]
            if is_null(value):
                continue
            existing = self._indexes[column].lookup(value)
            existing.discard(exclude_row_id)  # type: ignore[arg-type]
            if existing:
                raise ConstraintViolation(
                    f"table {self.name!r}: duplicate value {value!r} "
                    f"for unique column {column!r}"
                )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Table({self.name!r}, rows={len(self)})"
