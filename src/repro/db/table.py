"""Columnar row storage for one relation, with hash + ordered indexes.

Rows are stored column-oriented: one append-only Python list per column
(a *bank*), parallel by storage *slot*.  A row id — internal and
monotonically increasing, exactly as before the columnar refactor —
maps to its slot through ``_slot_of``; deleted slots are recycled
through a free list, so long-lived tables do not leak bank entries.
The columnar layout is what the engine's batched execution mode runs
on: predicates and reductions evaluate directly over the column lists
with C-level builtins instead of materialising one dict per row (see
:mod:`repro.db.engine.executor`).

Row-oriented access survives as views: :meth:`Table.row_view` returns a
lazy :class:`RowView` mapping backed by the banks (read-only by
convention), and :meth:`Table.get` materialises a fresh dict.  Every
column can carry a hash index (value -> set of row ids); primary-key
and unique columns always do, since the constraint check needs the
index anyway.  Columns can additionally carry an *ordered* secondary
index (a bisect-maintained sorted array of ``(ordering key, row id)``
pairs) so the query engine can push range predicates and ``ORDER BY``
down instead of scanning and sorting.  The :class:`Table` exposes a
low-level mutation API (``insert``/``update``/``delete``) used by
:class:`repro.db.database.Database`, which layers transactions and
foreign-key enforcement on top.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right, insort
from collections.abc import Mapping
from itertools import accumulate, repeat
from operator import itemgetter
from typing import Any, Callable, Iterator, Sequence

from repro.db.ordering import ordering_key
from repro.db.schema import TableSchema
from repro.db.types import coerce, is_null
from repro.errors import ConstraintViolation, UnknownColumnError

__all__ = ["Row", "RowView", "Table"]

Row = dict[str, Any]
"""A materialised row: column name -> value."""


class RowView(Mapping):
    """A lazy, read-only row over the table's column banks.

    Indexing reads straight from the banks (``banks[column][slot]``), so
    constructing a view copies nothing.  Views compare equal to dicts
    with the same items (via the :class:`Mapping` protocol) and support
    everything the executor and predicates need: ``row[col]``,
    ``col in row``, ``row.get``, ``row.items()`` and ``dict(row)``.
    Views are invalidated by any mutation of their row's slot — hold
    them only within one read-locked operation.
    """

    __slots__ = ("_banks", "_slot")

    def __init__(self, banks: dict[str, list], slot: int) -> None:
        self._banks = banks
        self._slot = slot

    def __getitem__(self, key: str) -> Any:
        return self._banks[key][self._slot]

    def __contains__(self, key: object) -> bool:
        return key in self._banks

    def get(self, key: str, default: Any = None) -> Any:
        bank = self._banks.get(key)
        return default if bank is None else bank[self._slot]

    def __iter__(self) -> Iterator[str]:
        return iter(self._banks)

    def __len__(self) -> int:
        return len(self._banks)

    def keys(self):
        return self._banks.keys()

    def items(self) -> list[tuple[str, Any]]:
        slot = self._slot
        return [(column, bank[slot]) for column, bank in self._banks.items()]

    def values(self) -> list[Any]:
        slot = self._slot
        return [bank[slot] for bank in self._banks.values()]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RowView({dict(self)!r})"


class _HashIndex:
    """A simple hash index mapping column values to sets of row ids."""

    def __init__(self) -> None:
        self._buckets: dict[Any, set[int]] = {}

    def add(self, value: Any, row_id: int) -> None:
        if is_null(value):
            return
        self._buckets.setdefault(value, set()).add(row_id)

    def remove(self, value: Any, row_id: int) -> None:
        if is_null(value):
            return
        bucket = self._buckets.get(value)
        if bucket is not None:
            bucket.discard(row_id)
            if not bucket:
                del self._buckets[value]

    def lookup(self, value: Any) -> set[int]:
        return set(self._buckets.get(value, ()))

    def has(self, value: Any) -> bool:
        return value in self._buckets

    def count(self, value: Any) -> int:
        return len(self._buckets.get(value, ()))

    def distinct_values(self) -> list[Any]:
        return list(self._buckets)

    def __len__(self) -> int:
        return len(self._buckets)


class _OrderedIndex:
    """A sorted-array index of ``(ordering key, row id)`` pairs.

    NULLs are excluded (as in the hash index); key collisions keep row
    ids ascending, so an in-order walk is exactly the stable sort of a
    row-id scan by the column — which is what lets the executor drop the
    Sort node when it scans through this index.
    """

    def __init__(self) -> None:
        self._entries: list[tuple[tuple, int]] = []

    def add(self, value: Any, row_id: int) -> None:
        if is_null(value):
            return
        insort(self._entries, (ordering_key(value), row_id))

    def remove(self, value: Any, row_id: int) -> None:
        if is_null(value):
            return
        entry = (ordering_key(value), row_id)
        i = bisect_left(self._entries, entry)
        if i < len(self._entries) and self._entries[i] == entry:
            del self._entries[i]

    def __len__(self) -> int:
        return len(self._entries)

    def first_id(self) -> int | None:
        """Row id of the smallest key (smallest row id on ties)."""
        return self._entries[0][1] if self._entries else None

    def last_id(self) -> int | None:
        """Row id of the largest key (largest row id on ties)."""
        return self._entries[-1][1] if self._entries else None

    def _bounds(
        self,
        low: Any,
        high: Any,
        low_inclusive: bool,
        high_inclusive: bool,
    ) -> tuple[int, int]:
        start = 0
        end = len(self._entries)
        if low is not None:
            key = ordering_key(low)
            if low_inclusive:
                start = bisect_left(self._entries, (key,))
            else:
                start = bisect_right(self._entries, (key, math.inf))
        if high is not None:
            key = ordering_key(high)
            if high_inclusive:
                end = bisect_right(self._entries, (key, math.inf))
            else:
                end = bisect_left(self._entries, (key,))
        return start, max(start, end)

    def range_ids(
        self,
        low: Any = None,
        high: Any = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> list[int]:
        """Row ids with ``low <op> column <op> high``, in value order.

        ``None`` bounds are open.  Ties on the key come out in row-id
        order (stable).
        """
        start, end = self._bounds(low, high, low_inclusive, high_inclusive)
        return [rid for __, rid in self._entries[start:end]]

    def descending_range_ids(
        self,
        low: Any = None,
        high: Any = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[int]:
        """Row ids by key descending, ties in *ascending* row-id order.

        This mirrors a stable ``sort(reverse=True)``, which keeps equal
        keys in their original (row-id) order rather than reversing them.
        """
        start, i = self._bounds(low, high, low_inclusive, high_inclusive)
        while i > start:
            key = self._entries[i - 1][0]
            j = bisect_left(self._entries, (key,), start, i)
            for __, rid in self._entries[j:i]:
                yield rid
            i = j


class Table:
    """Mutable columnar storage for the rows of one table schema."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._columns: tuple[str, ...] = tuple(schema.column_names)
        self._banks: dict[str, list] = {c: [] for c in self._columns}
        self._bank_list: list[list] = [self._banks[c] for c in self._columns]
        self._slot_of: dict[int, int] = {}
        self._id_at: list[int | None] = []
        self._free: set[int] = set()
        # _dense: slots, walked front to back, are exactly the rows in
        # ascending row-id order with no holes — the common append-only
        # case, where a scan is the banks themselves.  _id_ordered:
        # active slots are in ascending id order (holes allowed); while
        # it holds, draining the free set makes the table dense again.
        self._dense = True
        self._id_ordered = True
        self._next_row_id = 1
        self._indexes: dict[str, _HashIndex] = {}
        self._ordered_indexes: dict[str, _OrderedIndex] = {}
        # Grouped scan layouts derived from the hash indexes, memoised
        # per mutation generation (see grouped_layout()).
        self._mutations = 0
        self._group_layouts: dict[str, tuple[int, Any]] = {}
        self._group_tallies: dict[tuple[str, str], tuple[int, Any]] = {}
        self._slot_bucket_cache: dict[str, tuple[int, Any]] = {}
        if schema.primary_key:
            self.create_index(schema.primary_key)
        for column in schema.columns:
            if column.unique:
                self.create_index(column.name)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.schema.name

    def __len__(self) -> int:
        return len(self._slot_of)

    def __iter__(self) -> Iterator[Row]:
        """Iterate over copies of all rows (stable order by row id).

        The rows are snapshotted (columnwise) up front, so mutating the
        table mid-iteration affects neither the count nor the contents
        of the rows already promised.
        """
        return iter(self.materialise_slots(self.scan_slots()))

    def row_ids(self) -> list[int]:
        return sorted(self._slot_of)

    def has_row(self, row_id: int) -> bool:
        return row_id in self._slot_of

    def _row_at(self, slot: int) -> Row:
        """Fresh dict of the row at ``slot`` (bank layout's single exit)."""
        return dict(
            zip(self._columns, (bank[slot] for bank in self._bank_list))
        )

    def get(self, row_id: int) -> Row:
        """Return a fresh dict copy of the row with internal id ``row_id``."""
        return self._row_at(self._slot_of[row_id])

    def row_view(self, row_id: int) -> RowView:
        """A lazy bank-backed view of one row — read-only by convention.

        The query executor filters and joins over views to avoid one
        dict copy per visited row; anything handed back to callers is
        copied (or rebuilt) at the output boundary.
        """
        return RowView(self._banks, self._slot_of[row_id])

    def iter_view_items(self) -> Iterator[tuple[int, RowView]]:
        """``(row_id, row view)`` pairs in row-id order (read-only)."""
        banks = self._banks
        id_at = self._id_at
        return ((id_at[s], RowView(banks, s)) for s in self.scan_slots())

    def iter_views(self) -> Iterator[RowView]:
        """Row views in row-id order (read-only) — the sequential scan's
        row stream for the executor's row-at-a-time mode."""
        banks = self._banks
        return (RowView(banks, s) for s in self.scan_slots())

    def has_index(self, column: str) -> bool:
        return column in self._indexes

    def has_ordered_index(self, column: str) -> bool:
        return column in self._ordered_indexes

    def ordered_index(self, column: str) -> _OrderedIndex:
        return self._ordered_indexes[column]

    def hash_index_columns(self) -> list[str]:
        """Columns carrying a hash index (sorted; includes pk/unique)."""
        return sorted(self._indexes)

    def ordered_index_columns(self) -> list[str]:
        """Columns carrying an ordered secondary index (sorted)."""
        return sorted(self._ordered_indexes)

    # ------------------------------------------------------------------
    # Columnar access (the batched executor's surface)
    # ------------------------------------------------------------------
    def bank_map(self) -> dict[str, list]:
        """The internal ``column -> bank`` mapping (read-only by
        convention).  Banks are parallel by slot; entries at free slots
        are ``None`` and must only be reached through active slots."""
        return self._banks

    def scan_slots(self) -> "range | list[int]":
        """Active slots in ascending row-id order.

        Returns a :class:`range` covering the banks whole when the table
        is dense (no holes, slots already in id order) so batched
        operators can run directly over the full column lists.
        """
        if self._dense:
            return range(len(self._id_at))
        slot_of = self._slot_of
        return [slot_of[rid] for rid in sorted(slot_of)]

    def ids_for_slots(self, slots: Sequence[int]) -> list[int]:
        """Row ids of ``slots``, preserving the given slot order."""
        id_at = self._id_at
        return [id_at[s] for s in slots]

    def slots_for_ids(self, row_ids: Sequence[int]) -> list[int]:
        """Slots of ``row_ids``, preserving the given id order.

        The bridge from index lookups (which speak row ids) back into
        the batched executor's slot world.
        """
        slot_of = self._slot_of
        return [slot_of[r] for r in row_ids]

    def index_buckets(self, column: str) -> dict[Any, set[int]]:
        """The hash index's ``value -> row-id set`` buckets for
        ``column`` (read-only by convention).  NULLs are not indexed, so
        the buckets cover ``len(table)`` rows only when the column holds
        no NULL.  Raises ``KeyError`` when the column is unindexed."""
        return self._indexes[column]._buckets

    def grouped_layout(
        self, column: str
    ) -> tuple[list, list[int], list[int]] | None:
        """``(keys, flat_slots, bounds)``: the table regrouped by the
        hash index on ``column``.

        ``flat_slots`` lists every active slot, clustered by group;
        group ``i`` holds key ``keys[i]`` and spans
        ``flat_slots[bounds[i]:bounds[i + 1]]``.  Groups appear in
        first-appearance scan order and each group's slots stay in scan
        order, so walking the layout visits exactly the rows a
        sequential scan would — just pre-clustered, which lets grouped
        aggregates reduce each segment with C-level primitives instead
        of scattering row-at-a-time into an accumulator dict.

        The layout is pure index structure (no cell values), so it is
        memoised until the next mutation.  Returns ``None`` when the
        column is unindexed or holds NULLs (NULL keys never enter the
        index, so the buckets would not cover the table).
        """
        index = self._indexes.get(column)
        if index is None:
            return None
        generation = self._mutations
        cached = self._group_layouts.get(column)
        if cached is not None and cached[0] == generation:
            return cached[1]
        buckets = index._buckets
        layout: tuple[list, list[int], list[int]] | None
        if sum(map(len, buckets.values())) != len(self._slot_of):
            layout = None
        else:
            # First-appearance order == ascending minimum row id; the
            # minima are distinct across groups, so the tuple sort never
            # falls through to comparing (possibly mixed-type) keys.
            groups = []
            for value, ids in buckets.items():
                ordered = sorted(ids)
                groups.append((ordered[0], value, ordered))
            groups.sort()
            keys: list = []
            flat_ids: list[int] = []
            bounds: list[int] = [0]
            for __, value, ordered in groups:
                keys.append(value)
                flat_ids.extend(ordered)
                bounds.append(len(flat_ids))
            layout = (keys, self.slots_for_ids(flat_ids), bounds)
        self._group_layouts[column] = (generation, layout)
        return layout

    def slot_buckets(self, column: str) -> dict[Any, list[int]]:
        """``value -> active slots`` (scan order) for ``column``.

        The build side of a batched hash join, memoised per mutation
        generation like :meth:`grouped_layout` — a join index in slot
        space, so repeated probes skip both the per-query build pass
        and any row-id-to-slot translation.  NULLs never match an
        equi-join, so they get no bucket.  Works for any column,
        indexed or not.
        """
        generation = self._mutations
        cached = self._slot_bucket_cache.get(column)
        if cached is not None and cached[0] == generation:
            return cached[1]
        bank = self._banks[column]
        buckets: dict[Any, list[int]] = {}
        get = buckets.get
        for slot in self.scan_slots():
            value = bank[slot]
            if value is None:
                continue
            bucket = get(value)
            if bucket is None:
                buckets[value] = [slot]
            else:
                bucket.append(slot)
        self._slot_bucket_cache[column] = (generation, buckets)
        return buckets

    def grouped_tallies(
        self, column: str, value_column: str
    ) -> tuple[list, list[int] | None] | None:
        """``(tallies, counts)``: prefix sums of ``value_column`` over
        the grouped layout for ``column``.

        ``tallies[i]`` is the sum of the first ``i`` clustered values
        (NULLs contribute 0), so any group's sum is one subtraction of
        its layout bounds.  ``counts`` is the matching prefix count of
        non-NULL values — ``None`` when the segment holds no NULL, in
        which case group sizes already are the non-NULL counts.

        Like the layout itself this is pure per-generation structure
        (a materialised segment tally, the hash-index analogue of a
        count-augmented B-tree): any mutation invalidates it.  Returns
        ``None`` when there is no layout for ``column``.
        """
        layout = self.grouped_layout(column)
        if layout is None:
            return None
        generation = self._mutations
        memo_key = (column, value_column)
        cached = self._group_tallies.get(memo_key)
        if cached is not None and cached[0] == generation:
            return cached[1]
        values = list(map(self._banks[value_column].__getitem__, layout[1]))
        counts: list[int] | None
        if None in values:
            tallies = list(accumulate(
                (0 if v is None else v for v in values), initial=0
            ))
            counts = list(accumulate(
                (v is not None for v in values), initial=0
            ))
        else:
            tallies = list(accumulate(values, initial=0))
            counts = None
        result = (tallies, counts)
        self._group_tallies[memo_key] = (generation, result)
        return result

    def views_for_slots(self, slots: Sequence[int]) -> Iterator[RowView]:
        """Lazy row views over ``slots``, preserving the given order."""
        banks = self._banks
        return (RowView(banks, s) for s in slots)

    def materialise_slots(
        self, slots: Sequence[int], columns: Sequence[str] | None = None
    ) -> list[Row]:
        """Fresh row dicts for ``slots``, built columnwise.

        ``columns`` restricts (and orders) the output keys — the batched
        Project path; unknown names raise ``KeyError`` exactly like
        ``row[column]`` on the row path would.
        """
        if not len(slots):
            # The row path never touches a column for zero rows, so an
            # unknown projected name must not raise here either.
            return []
        names = self._columns if columns is None else tuple(columns)
        banks = [self._banks[c] for c in names]
        if type(slots) is range:
            selected = banks
        elif len(slots) > 1:
            # One C-level gather per bank instead of a Python loop per
            # bank — this is what keeps wide projections columnar.
            fetch = itemgetter(*slots)
            selected = [fetch(bank) for bank in banks]
        else:
            selected = [[bank[s] for s in slots] for bank in banks]
        if not banks:  # pragma: no cover - schemas always carry columns
            return [{} for __ in slots]
        # One C pipeline: transpose the selected banks and build every
        # row dict without a per-row Python frame.
        return list(map(dict, map(zip, repeat(names), zip(*selected))))

    # ------------------------------------------------------------------
    # Index management
    # ------------------------------------------------------------------
    def create_index(self, column: str) -> None:
        """Build (or rebuild) a hash index on ``column``."""
        self.schema.column(column)  # raises UnknownColumnError
        self._mutations += 1
        index = _HashIndex()
        bank = self._banks[column]
        for row_id, slot in self._slot_of.items():
            index.add(bank[slot], row_id)
        self._indexes[column] = index

    def create_ordered_index(self, column: str) -> None:
        """Build (or rebuild) an ordered secondary index on ``column``."""
        self.schema.column(column)  # raises UnknownColumnError
        index = _OrderedIndex()
        bank = self._banks[column]
        for row_id, slot in self._slot_of.items():
            index.add(bank[slot], row_id)
        self._ordered_indexes[column] = index

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def _allocate_slot(self, row_id: int) -> int:
        """Claim a slot for ``row_id``: reuse a freed one or append."""
        if self._free:
            # A recycled slot sits in front of newer ids: the id order
            # of the slot walk is broken until the table fully empties.
            slot = self._free.pop()
            self._id_at[slot] = row_id
            self._id_ordered = False
        else:
            slot = len(self._id_at)
            self._id_at.append(row_id)
            for bank in self._bank_list:
                bank.append(None)
            if slot > 0:
                previous = self._id_at[slot - 1]
                if previous is not None and previous > row_id:
                    # An out-of-order restore at the tail.
                    self._dense = False
                    self._id_ordered = False
        self._slot_of[row_id] = slot
        return slot

    def _write_slot(self, slot: int, row: Row) -> None:
        for column, bank in zip(self._columns, self._bank_list):
            bank[slot] = row[column]

    def insert(self, values: dict[str, Any]) -> int:
        """Insert one row; returns the internal row id.

        Values are coerced to the declared column types; missing columns
        default to NULL.  Raises :class:`ConstraintViolation` on NOT NULL,
        primary-key or unique violations, and
        :class:`UnknownColumnError` for unexpected keys.
        """
        row = self._normalise(values)
        self._check_not_null(row)
        self._check_unique(row, exclude_row_id=None)
        row_id = self._next_row_id
        self._next_row_id += 1
        self._mutations += 1
        slot = self._allocate_slot(row_id)
        self._write_slot(slot, row)
        for column, index in self._indexes.items():
            index.add(row[column], row_id)
        for column, ordered in self._ordered_indexes.items():
            ordered.add(row[column], row_id)
        return row_id

    def update(self, row_id: int, changes: dict[str, Any]) -> Row:
        """Apply ``changes`` to an existing row; returns a copy of the old row."""
        slot = self._slot_of[row_id]
        old = self._row_at(slot)
        new = dict(old)
        for column, value in changes.items():
            col = self.schema.column(column)
            new[column] = coerce(value, col.dtype)
        self._check_not_null(new)
        self._check_unique(new, exclude_row_id=row_id)
        self._mutations += 1
        for column, index in self._indexes.items():
            if old[column] != new[column]:
                index.remove(old[column], row_id)
                index.add(new[column], row_id)
        for column, ordered in self._ordered_indexes.items():
            if old[column] != new[column]:
                ordered.remove(old[column], row_id)
                ordered.add(new[column], row_id)
        banks = self._banks
        for column, value in new.items():
            if old[column] is not value:
                banks[column][slot] = value
        return old

    def delete(self, row_id: int) -> Row:
        """Delete a row; returns a copy of it (for undo logs)."""
        slot = self._slot_of.pop(row_id)
        row = self._row_at(slot)
        self._mutations += 1
        for column, index in self._indexes.items():
            index.remove(row[column], row_id)
        for column, ordered in self._ordered_indexes.items():
            ordered.remove(row[column], row_id)
        if not self._slot_of:
            # Table emptied: reset the banks wholesale so a refill is
            # append-only (dense) again.
            self._id_at.clear()
            self._free.clear()
            for bank in self._bank_list:
                bank.clear()
            self._dense = True
            self._id_ordered = True
        elif slot == len(self._id_at) - 1:
            # Popping the tail keeps the layout hole-free; also shed any
            # freed slots that become trailing.
            self._id_at.pop()
            for bank in self._bank_list:
                bank.pop()
            while self._id_at and self._id_at[-1] is None:
                tail = len(self._id_at) - 1
                self._id_at.pop()
                for bank in self._bank_list:
                    bank.pop()
                self._free.discard(tail)
            if self._id_ordered and not self._free:
                # Hole-free and id-ordered again: the scan fast path is
                # back (density recovers once the free set drains).
                self._dense = True
        else:
            self._id_at[slot] = None
            for bank in self._bank_list:
                bank[slot] = None
            self._free.add(slot)
            self._dense = False
        return row

    def restore(self, row_id: int, row: Row) -> None:
        """Re-insert a previously deleted row under its original id (undo)."""
        if row_id in self._slot_of:
            raise ConstraintViolation(
                f"table {self.name!r}: cannot restore row {row_id}, id in use"
            )
        self._mutations += 1
        slot = self._allocate_slot(row_id)
        for column, bank in zip(self._columns, self._bank_list):
            bank[slot] = row.get(column)
        self._next_row_id = max(self._next_row_id, row_id + 1)
        for column, index in self._indexes.items():
            index.add(row.get(column), row_id)
        for column, ordered in self._ordered_indexes.items():
            ordered.add(row.get(column), row_id)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def lookup(self, column: str, value: Any) -> list[int]:
        """Row ids where ``column == value`` (uses index when available)."""
        col = self.schema.column(column)
        needle = coerce(value, col.dtype)
        if needle is None:
            return []
        index = self._indexes.get(column)
        if index is not None:
            return sorted(index.lookup(needle))
        bank = self._banks[column]
        id_at = self._id_at
        return [
            id_at[slot]
            for slot in self.scan_slots()
            if bank[slot] == needle
        ]

    def scan(self, predicate: Callable[[Row], bool] | None = None) -> list[int]:
        """Row ids of rows matching ``predicate`` (all rows when ``None``)."""
        if predicate is None:
            return self.row_ids()
        banks = self._banks
        id_at = self._id_at
        return [
            id_at[slot]
            for slot in self.scan_slots()
            if predicate(RowView(banks, slot))
        ]

    def column_values(self, column: str, row_ids: list[int] | None = None) -> list[Any]:
        """Values of one column, over all rows or a row-id subset.

        Reads straight from the column's bank — no row materialisation;
        this is what the statistics catalog builds its summaries from.
        """
        self.schema.column(column)
        bank = self._banks[column]
        if row_ids is None:
            slots = self.scan_slots()
            if type(slots) is range:
                return bank[:]
            return [bank[s] for s in slots]
        slot_of = self._slot_of
        return [bank[slot_of[rid]] for rid in row_ids]

    def column_arrays(self) -> dict[str, list]:
        """Every column's values in row-id order, from one slot pass.

        What a whole-table consumer (statistics rebuild, snapshot dump)
        should use instead of per-column :meth:`column_values` calls,
        which would each re-derive the slot order on non-dense tables.
        """
        slots = self.scan_slots()
        if type(slots) is range:
            return {
                column: bank[:]
                for column, bank in zip(self._columns, self._bank_list)
            }
        return {
            column: [bank[s] for s in slots]
            for column, bank in zip(self._columns, self._bank_list)
        }

    def distinct_count(self, column: str) -> int:
        """Number of distinct non-NULL values in ``column``."""
        index = self._indexes.get(column)
        if index is not None:
            return len(index)
        bank = self._banks[column]
        values = {
            bank[slot]
            for slot in self.scan_slots()
            if not is_null(bank[slot])
        }
        return len(values)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _normalise(self, values: dict[str, Any]) -> Row:
        for key in values:
            if not self.schema.has_column(key):
                raise UnknownColumnError(
                    f"table {self.name!r} has no column {key!r}"
                )
        row: Row = {}
        for column in self.schema.columns:
            raw = values.get(column.name)
            row[column.name] = coerce(raw, column.dtype)
        return row

    def _check_not_null(self, row: Row) -> None:
        for column in self.schema.columns:
            required = not column.nullable or column.name == self.schema.primary_key
            if required and is_null(row[column.name]):
                raise ConstraintViolation(
                    f"table {self.name!r}: column {column.name!r} may not be NULL"
                )

    def _check_unique(self, row: Row, exclude_row_id: int | None) -> None:
        unique_columns = [
            c.name
            for c in self.schema.columns
            if c.unique or c.name == self.schema.primary_key
        ]
        for column in unique_columns:
            value = row[column]
            if is_null(value):
                continue
            existing = self._indexes[column].lookup(value)
            existing.discard(exclude_row_id)  # type: ignore[arg-type]
            if existing:
                raise ConstraintViolation(
                    f"table {self.name!r}: duplicate value {value!r} "
                    f"for unique column {column!r}"
                )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Table({self.name!r}, rows={len(self)})"
