"""In-memory relational OLTP engine: the paper's database substrate.

Public surface:

* :class:`~repro.db.database.Database` — tables, FK enforcement,
  transactions, stored procedures, change notification.
* :mod:`~repro.db.schema` — declarative schemas.
* :mod:`~repro.db.query` — predicates and single-root queries with joins.
* :mod:`~repro.db.statistics` — entropy/selectivity statistics with a
  version-stamped cache.
* :class:`~repro.db.catalog.Catalog` — introspection for task extraction.
"""

from repro.db.catalog import Catalog, ColumnRef
from repro.db.database import Database
from repro.db.locks import RWLock
from repro.db.procedures import Parameter, Procedure, ProcedureResult
from repro.db.query import (
    Query,
    and_,
    contains,
    eq,
    ge,
    gt,
    in_,
    le,
    lt,
    ne,
    not_,
    or_,
)
from repro.db.schema import Column, DatabaseSchema, ForeignKey, TableSchema
from repro.db.statistics import (
    ColumnStatistics,
    StatisticsCatalog,
    TableStatistics,
    entropy,
    gini_impurity,
    normalized_entropy,
)
from repro.db.types import DataType, coerce, render

__all__ = [
    "Catalog",
    "Column",
    "ColumnRef",
    "ColumnStatistics",
    "DataType",
    "Database",
    "DatabaseSchema",
    "ForeignKey",
    "Parameter",
    "Procedure",
    "ProcedureResult",
    "Query",
    "RWLock",
    "StatisticsCatalog",
    "TableSchema",
    "TableStatistics",
    "and_",
    "coerce",
    "contains",
    "entropy",
    "eq",
    "ge",
    "gini_impurity",
    "gt",
    "in_",
    "le",
    "lt",
    "ne",
    "normalized_entropy",
    "not_",
    "or_",
    "render",
]

from repro.db.persistence import (
    dump_database,
    dump_incremental,
    dumps_database,
    load_database,
    load_incremental,
    loads_database,
)

__all__ += [
    "dump_database",
    "dump_incremental",
    "dumps_database",
    "load_database",
    "load_incremental",
    "loads_database",
]

from repro.db.aggregation import (
    Aggregate,
    aggregate,
    aggregate_query,
    avg,
    count,
    count_distinct,
    max_,
    min_,
    sum_,
)

__all__ += [
    "Aggregate",
    "aggregate",
    "aggregate_query",
    "avg",
    "count",
    "count_distinct",
    "max_",
    "min_",
    "sum_",
]

# The unified execution API (Connection / PreparedStatement / Result).
# The aggregate-statement builder is NOT re-exported here because its
# name collides with the row reducer above; reach it via
# ``from repro.db import api`` → ``api.aggregate(...)``.
from repro.db import api
from repro.db.api import (
    CallStatement,
    Connection,
    ConnectionStats,
    IndexAdvisor,
    IndexSuggestion,
    Param,
    PreparedStatement,
    Result,
    SelectStatement,
    Statement,
    call,
    select,
)

__all__ += [
    "CallStatement",
    "Connection",
    "ConnectionStats",
    "IndexAdvisor",
    "IndexSuggestion",
    "Param",
    "PreparedStatement",
    "Result",
    "SelectStatement",
    "Statement",
    "api",
    "call",
    "select",
]
