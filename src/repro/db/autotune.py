"""The self-driving policy: budgeted auto-indexing + index retirement.

PR 5's :class:`~repro.db.api.IndexAdvisor` ranks ``CREATE INDEX``
candidates but leaves the DDL to an operator.  This module closes that
loop the way the self-tuning literature (the Cambridge Report's
"autonomous operation" challenge, PAPERS.md) frames it: a feedback
controller that observes the workload and acts on the database without
anyone in the loop.

The controller is deliberately boring — three decayed counters and two
threshold rules:

* **Create**: the database-wide advisor's miss stream (exponentially
  decayed, see ``IndexAdvisor.half_life``) ranks missing indexes by the
  scan work they would have saved.  The top suggestion is applied when
  its decayed miss volume clears the policy floors, the estimated index
  footprint (non-null cardinality from the
  :class:`~repro.db.statistics.StatisticsCatalog`) fits the remaining
  memory budget, and the table's observed write rate (mutation
  generation counter deltas per tick) does not drown the expected
  benefit.
* **Retire**: every auto-created index carries decayed hit counters
  (``hit_rows`` — scan rows the probes avoided, attributed per
  execution by the connection layer's plan walk) and a decayed
  maintenance counter (charged per DML touching the indexed column).
  Once an index is old enough, ``maintenance_weight * maintenance >
  hit_rows`` drops it — which covers both a write-hot table and plain
  disuse after a workload shift, since the hit side decays to zero.
  Retired candidates enter a cooldown so the (also decayed, but maybe
  not yet drained) miss history cannot immediately re-create them.

Both actions run off :meth:`Database._on_idle` — the same pin-drain
hook that drives vacuum and compaction — and take the commit latch for
the DDL itself, so readers never block and writers only wait for the
index build proper.  The tick is reentrancy-guarded: evaluating
statistics pins a snapshot whose drain re-enters ``_on_idle``, and the
non-blocking tick lock turns that recursion into a no-op.

Everything is observable through :meth:`Autotuner.status`, surfaced as
``Connection.autotune()`` and the serving REPL's ``:autotune`` command.
Disable the whole loop with ``Database(schema, autotune=False)`` or at
runtime via ``database.autotuner.enabled = False``.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping

from repro.errors import ConstraintViolation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.db.database import Database

__all__ = ["Autotuner"]

#: (table, column, kind) — kind is "hash" or "ordered", as everywhere.
_Key = tuple[str, str, str]


class _IndexUsage:
    """Decayed usage counters of one auto-created index."""

    __slots__ = ("hits", "hit_rows", "maintenance", "created_tick")

    def __init__(self, created_tick: int) -> None:
        self.hits = 0.0        # executions that probed this index
        self.hit_rows = 0.0    # scan rows those probes avoided
        self.maintenance = 0.0  # DML events that had to update it
        self.created_tick = created_tick


class Autotuner:
    """Feedback-driven index management for one :class:`Database`.

    Created eagerly by ``Database.__init__`` (the DML charge and hit
    attribution hooks need a stable target), but inert until the
    workload produces advisor misses that clear the policy floors.  The
    floors default high enough that unit-test-sized tables never
    trigger; benchmarks and deployments tune them via the public
    attributes or :meth:`configure`.
    """

    def __init__(
        self,
        database: "Database",
        enabled: bool = True,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._database = database
        self._clock = clock
        self.enabled = enabled
        # ---- policy knobs (documented in README "Self-driving") ----
        #: total estimated entries across auto-created indexes
        self.memory_budget_rows = 1_000_000
        #: decayed advisor misses an index candidate needs
        self.min_misses = 32.0
        #: decayed scan rows an index candidate must have cost
        self.min_rows_scanned = 32_768.0
        #: tables smaller than this never get auto indexes
        self.min_table_rows = 512
        #: half-life (seconds) of every decayed counter
        self.decay_half_life = 300.0
        #: scanned-rows-equivalent cost of one index maintenance event
        self.maintenance_weight = 64.0
        #: ticks an auto index must age before retirement is considered
        self.retire_after_ticks = 8
        #: ticks a retired candidate stays ineligible for re-creation
        self.cooldown_ticks = 16
        # ---- state ----
        self._lock = threading.Lock()
        self._tick_lock = threading.Lock()
        self._tick = 0
        self._decayed_at = clock()
        self._usage: dict[_Key, _IndexUsage] = {}
        self._by_table: dict[str, tuple[_Key, ...]] = {}
        self._cooldown: dict[_Key, int] = {}
        self._write_marks: dict[str, int] = {}
        self._write_window: dict[str, float] = {}
        self._applied = 0
        self._retired = 0
        self._actions: list[dict[str, Any]] = []

    # ------------------------------------------------------------------
    # Hot-path hooks (called by Database.insert/update/delete and the
    # connection layer's execution accounting; must stay near-free when
    # no auto index exists)
    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """Whether hit attribution is worth the plan walk right now."""
        return self.enabled and bool(self._usage)

    def charge_dml(
        self, table: str, changes: Mapping[str, Any] | None
    ) -> None:
        """One DML against ``table`` (``changes`` is the updated-column
        mapping for updates, ``None`` for insert/delete, which touch
        every index on the table)."""
        if not self.enabled:
            return
        keys = self._by_table.get(table)
        if not keys:
            return
        with self._lock:
            for key in keys:
                if changes is not None and key[1] not in changes:
                    continue
                entry = self._usage.get(key)
                if entry is not None:
                    entry.maintenance += 1.0

    def record_hits(self, hits: Iterable[_Key]) -> None:
        """Index probes one plan execution performed (plan-walk
        attribution — (table, column, kind) triples)."""
        if not self.enabled or not self._usage:
            return
        database = self._database
        with self._lock:
            for key in hits:
                entry = self._usage.get(key)
                if entry is not None:
                    entry.hits += 1.0
                    entry.hit_rows += len(database.table(key[0]))

    # ------------------------------------------------------------------
    # The idle tick
    # ------------------------------------------------------------------
    def on_idle(self) -> None:
        """One policy tick, fired when the last snapshot pin drains.

        Skips (rather than waits) whenever acting now could interfere:
        another tick is already running (including the reentrant case —
        reading statistics pins a snapshot whose drain re-enters here),
        a transaction is open, a writer holds the latch, or the calling
        thread is inside a read-only scope.
        """
        if not self.enabled:
            return
        if not self._tick_lock.acquire(blocking=False):
            return
        try:
            database = self._database
            if (
                database.transactions.in_transaction()
                or database.commit_latch.locked
                or database.snapshots.writes_forbidden()
            ):
                return
            self._tick += 1
            self._decay()
            self._observe_writes()
            advisor = database.index_advisor
            if advisor.half_life is None:
                # The database-wide advisor adopts the policy's decay so
                # rankings follow the workload; per-connection advisors
                # keep their exact accumulate-forever tallies.
                advisor.half_life = self.decay_half_life
            self._maybe_create()
            self._maybe_retire()
        finally:
            self._tick_lock.release()

    def _decay(self) -> None:
        now = self._clock()
        half_life = self.decay_half_life
        with self._lock:
            elapsed = now - self._decayed_at
            self._decayed_at = now
            if half_life <= 0 or elapsed <= 0:
                return
            factor = 0.5 ** (elapsed / half_life)
            for entry in self._usage.values():
                entry.hits *= factor
                entry.hit_rows *= factor
                entry.maintenance *= factor
            for table in self._write_window:
                self._write_window[table] *= factor

    def _observe_writes(self) -> None:
        """Fold mutation-generation deltas into the decayed write window."""
        database = self._database
        for name in database.table_names:
            current = database.table(name).mutation_count
            last = self._write_marks.get(name)
            self._write_marks[name] = current
            if last is None:
                continue
            delta = current - last
            if delta > 0:
                self._write_window[name] = (
                    self._write_window.get(name, 0.0) + delta
                )

    # ------------------------------------------------------------------
    # Create side
    # ------------------------------------------------------------------
    def _maybe_create(self) -> None:
        database = self._database
        budget_used = self._auto_rows_used()
        for suggestion in database.index_advisor.suggestions(database):
            if suggestion.rows_scanned < self.min_rows_scanned:
                break  # ranked by rows_scanned: nothing below clears it
            if suggestion.misses < self.min_misses:
                continue
            key = (suggestion.table, suggestion.column, suggestion.kind)
            if self._cooldown.get(key, 0) > self._tick:
                continue
            try:
                stats = database.statistics.column(
                    suggestion.table, suggestion.column
                )
            except KeyError:  # pragma: no cover - racing DDL
                continue
            entries = stats.row_count - stats.null_count
            if stats.row_count < self.min_table_rows or entries <= 0:
                continue
            if budget_used + entries > self.memory_budget_rows:
                continue
            writes = self._write_window.get(suggestion.table, 0.0)
            if self.maintenance_weight * writes > suggestion.rows_scanned:
                # Write-hot table: projected upkeep outweighs the scans
                # the index would save.
                continue
            if not suggestion.apply(database):
                continue  # raced an equivalent index; nothing to track
            with self._lock:
                self._usage[key] = _IndexUsage(self._tick)
                self._rebuild_by_table()
                self._applied += 1
                self._log_action("create", key, rows=int(entries))
            database.index_advisor.forget(*key)
            return  # at most one build per tick keeps pauses bounded

    def _auto_rows_used(self) -> int:
        database = self._database
        return sum(
            len(database.table(table))
            for table, __, __kind in self._usage
            if table in database
        )

    # ------------------------------------------------------------------
    # Retire side
    # ------------------------------------------------------------------
    def _maybe_retire(self) -> None:
        database = self._database
        with self._lock:
            candidates = [
                (key, entry)
                for key, entry in self._usage.items()
                if self._tick - entry.created_tick >= self.retire_after_ticks
            ]
        for key, entry in candidates:
            cost = self.maintenance_weight * entry.maintenance
            if cost <= entry.hit_rows or cost <= 0.0:
                continue
            table, column, kind = key
            try:
                if kind == "ordered":
                    database.drop_ordered_index(table, column)
                else:
                    database.drop_index(table, column)
            except (KeyError, ConstraintViolation):
                # Already dropped externally, or adopted a constraint
                # backing index: stop tracking it, count no action.
                with self._lock:
                    self._usage.pop(key, None)
                    self._rebuild_by_table()
                continue
            with self._lock:
                self._usage.pop(key, None)
                self._rebuild_by_table()
                self._retired += 1
                self._cooldown[key] = self._tick + self.cooldown_ticks
                self._log_action(
                    "retire",
                    key,
                    hit_rows=round(entry.hit_rows, 1),
                    maintenance=round(entry.maintenance, 1),
                )
            database.index_advisor.forget(*key)
            return  # one drop per tick, symmetric with the create side

    # ------------------------------------------------------------------
    # Bookkeeping / surface
    # ------------------------------------------------------------------
    def _rebuild_by_table(self) -> None:
        by_table: dict[str, list[_Key]] = {}
        for key in self._usage:
            by_table.setdefault(key[0], []).append(key)
        self._by_table = {
            table: tuple(keys) for table, keys in by_table.items()
        }

    def _log_action(self, action: str, key: _Key, **detail: Any) -> None:
        self._actions.append(
            {
                "action": action,
                "table": key[0],
                "column": key[1],
                "kind": key[2],
                "tick": self._tick,
                **detail,
            }
        )
        del self._actions[:-64]  # bounded history

    def track(self, table: str, column: str, kind: str) -> None:
        """Adopt an existing index into the managed (retirable) set —
        test/benchmark hook; production entries come from creates."""
        with self._lock:
            self._usage[(table, column, kind)] = _IndexUsage(self._tick)
            self._rebuild_by_table()

    def configure(self, **knobs: Any) -> None:
        """Set policy knobs by name (unknown names raise); the
        divergence knobs forward to the plan cache's respecialisation
        policy so one surface configures the whole loop."""
        forwarded = {"divergence_ratio", "fork_threshold", "respec_min_rows"}
        for name, value in knobs.items():
            if name in forwarded:
                setattr(self._database.plan_cache, name, value)
            elif hasattr(self, name) and not name.startswith("_"):
                setattr(self, name, value)
            else:
                raise AttributeError(f"unknown autotune knob {name!r}")
        if "decay_half_life" in knobs:
            self._database.index_advisor.half_life = self.decay_half_life

    def status(self) -> dict[str, Any]:
        """The ``:autotune`` payload: knobs, per-index usage, actions,
        budget and the plan cache's respecialisation counters."""
        database = self._database
        self._decay()
        with self._lock:
            indexes = [
                {
                    "table": key[0],
                    "column": key[1],
                    "kind": key[2],
                    "hits": round(entry.hits, 1),
                    "hit_rows": round(entry.hit_rows, 1),
                    "maintenance": round(entry.maintenance, 1),
                    "age_ticks": self._tick - entry.created_tick,
                }
                for key, entry in self._usage.items()
            ]
            actions = list(self._actions)
            applied, retired, tick = self._applied, self._retired, self._tick
        cache = database._plan_cache
        return {
            "enabled": self.enabled,
            "tick": tick,
            "applied": applied,
            "retired": retired,
            "budget": {
                "memory_budget_rows": self.memory_budget_rows,
                "rows_used": self._auto_rows_used(),
            },
            "knobs": {
                "min_misses": self.min_misses,
                "min_rows_scanned": self.min_rows_scanned,
                "min_table_rows": self.min_table_rows,
                "decay_half_life": self.decay_half_life,
                "maintenance_weight": self.maintenance_weight,
                "retire_after_ticks": self.retire_after_ticks,
                "cooldown_ticks": self.cooldown_ticks,
            },
            "indexes": indexes,
            "actions": actions,
            "respec": (
                cache.respec_counters() if cache is not None else None
            ),
        }
