"""Locks for the concurrent serving runtime.

Two primitives live here:

* :class:`CommitLatch` — the narrow writer latch of the MVCC design.
  Whole transactions serialise on it, but readers never touch it: read
  scopes pin a snapshot (:mod:`repro.db.snapshots`) instead of sharing
  a lock with writers.  It counts contended acquisitions (``waits``)
  for the serving tier's ``:stats`` surface.
* :class:`RWLock` — the database-wide readers–writer lock the serving
  tier used before snapshot reads.  It no longer sits on the turn
  critical path (``tools/check_execution_api.py`` lints against
  reintroducing it outside this module and the snapshot layer), but
  remains available as a general-purpose primitive.

RWLock semantics:

* many readers OR one writer;
* writer preference — new readers queue once a writer is waiting, so a
  steady read load cannot starve transactions;
* reentrant for the owning thread: a writer may re-enter the write lock
  and may take read locks while writing, which lets stored procedures
  call the database's read paths freely; a read still held when the
  write lock is released is downgraded atomically to a real shared
  lock;
* lock upgrades (read → write while holding the read side) are refused
  explicitly instead of deadlocking — use
  :meth:`RWLock.suspend_reads`/:meth:`RWLock.resume_reads` around the
  write instead.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

__all__ = ["CommitLatch", "LockUpgradeError", "RWLock"]


class LockUpgradeError(RuntimeError):
    """A read-only scope attempted a write.

    Raised by :class:`RWLock` on a read→write upgrade attempt (which
    would deadlock as soon as two readers tried simultaneously) and by
    the database's write scope when entered inside a read-only snapshot
    pin — the MVCC replacement for the same refusal.
    """


class CommitLatch:
    """A reentrant mutex serialising writer transactions.

    This is the only lock a transaction holds for its duration under
    the MVCC design; readers pin snapshots and never queue here.  The
    latch is reentrant for its owning thread (stored procedures nest
    write scopes freely) and counts contended acquisitions in
    ``waits`` — the ``commit_waits`` number the serving stats report,
    a direct measure of writer-writer interference.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._owner: int | None = None
        self._depth = 0
        self.waits = 0

    @property
    def held_by_current_thread(self) -> bool:
        return self._owner == threading.get_ident()

    @property
    def locked(self) -> bool:
        """Whether any thread currently owns the latch (racy peek)."""
        return self._owner is not None

    def acquire(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._owner == me:
                self._depth += 1
                return
            if self._owner is not None:
                self.waits += 1
                while self._owner is not None:
                    self._cond.wait()
            self._owner = me
            self._depth = 1

    def release(self) -> None:
        with self._cond:
            if self._owner != threading.get_ident():
                raise RuntimeError("release() by a non-owning thread")
            self._depth -= 1
            if self._depth == 0:
                self._owner = None
                self._cond.notify()

    @contextmanager
    def held(self) -> Iterator[None]:
        self.acquire()
        try:
            yield
        finally:
            self.release()


class RWLock:
    """A reentrant readers–writer lock with writer preference."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._active_readers = 0
        self._waiting_writers = 0
        self._writer: int | None = None  # owning thread id
        self._writer_depth = 0
        self._local = threading.local()  # per-thread read depth

    # ------------------------------------------------------------------
    def _read_depth(self) -> int:
        return getattr(self._local, "depth", 0)

    def _counted(self) -> bool:
        """Did this thread's outermost read increment _active_readers?"""
        return getattr(self._local, "counted", False)

    @property
    def write_held(self) -> bool:
        """True when the *calling thread* holds the write lock."""
        return self._writer == threading.get_ident()

    # ------------------------------------------------------------------
    def acquire_read(self) -> None:
        depth = self._read_depth()
        if depth > 0:
            self._local.depth = depth + 1
            return
        if self.write_held:
            # A read inside the writer: no blocking, no reader count —
            # remembered so the release after (or before) release_write
            # is symmetric either way.
            self._local.depth = 1
            self._local.counted = False
            return
        with self._cond:
            while self._writer is not None or self._waiting_writers:
                self._cond.wait()
            self._active_readers += 1
        self._local.depth = 1
        self._local.counted = True

    def release_read(self) -> None:
        depth = self._read_depth()
        if depth <= 0:
            raise RuntimeError("release_read() without a matching acquire")
        self._local.depth = depth - 1
        if depth > 1 or not self._counted():
            return
        self._local.counted = False
        with self._cond:
            self._active_readers -= 1
            if self._active_readers == 0:
                self._cond.notify_all()

    # ------------------------------------------------------------------
    def acquire_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_depth += 1
                return
            if self._read_depth() > 0:
                raise LockUpgradeError(
                    "cannot upgrade a read lock to a write lock"
                )
            self._waiting_writers += 1
            try:
                while self._writer is not None or self._active_readers:
                    self._cond.wait()
            finally:
                self._waiting_writers -= 1
            self._writer = me
            self._writer_depth = 1

    def release_write(self) -> None:
        with self._cond:
            if self._writer != threading.get_ident():
                raise RuntimeError("release_write() by a non-owning thread")
            self._writer_depth -= 1
            if self._writer_depth == 0:
                if self._read_depth() > 0 and not self._counted():
                    # Reads taken inside the write outlive it: downgrade
                    # atomically to a counted read so no writer can slip
                    # in while this thread still expects read protection.
                    self._active_readers += 1
                    self._local.counted = True
                self._writer = None
                self._cond.notify_all()

    # ------------------------------------------------------------------
    # Read suspension: the safe alternative to a read→write upgrade.
    # A thread holding read locks that must perform a write releases
    # them entirely (other writers may run in the gap), writes, then
    # re-acquires to its previous depth.
    # ------------------------------------------------------------------
    def suspend_reads(self) -> int:
        """Drop this thread's read locks; returns the depth to resume.

        Returns 0 (a no-op for :meth:`resume_reads`) when the thread
        holds no counted read — in particular when its reads are nested
        inside its own write lock, where no upgrade is needed.
        """
        depth = self._read_depth()
        if depth == 0 or not self._counted():
            return 0
        self._local.depth = 0
        self._local.counted = False
        with self._cond:
            self._active_readers -= 1
            if self._active_readers == 0:
                self._cond.notify_all()
        return depth

    def resume_reads(self, depth: int) -> None:
        """Re-acquire read locks dropped by :meth:`suspend_reads`."""
        if depth <= 0:
            return
        with self._cond:
            while self._writer is not None or self._waiting_writers:
                self._cond.wait()
            self._active_readers += 1
        self._local.depth = depth
        self._local.counted = True

    # ------------------------------------------------------------------
    @contextmanager
    def read_lock(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_lock(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()
