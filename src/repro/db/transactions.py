"""Transaction support: undo logging, savepoints, commit/rollback.

Transactions execute under the database's commit latch (see
:class:`~repro.db.locks.CommitLatch`), so at most one is active at a
time and writer-writer isolation reduces to that serialisation; readers
run concurrently against pinned snapshots and never observe an
uncommitted stamp.  What the paper's agent needs on top is *atomicity*
— a ticket-reservation procedure that fails halfway through must leave
the database unchanged.  We implement this with an undo log of inverse
physical operations, replayed in reverse on rollback; under MVCC the
undone versions carry never-committed stamps and are reclaimed by the
post-rollback vacuum.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import TransactionError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.db.database import Database

__all__ = ["TransactionState", "UndoRecord", "Transaction", "TransactionManager"]


class TransactionState(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass(frozen=True)
class UndoRecord:
    """One inverse physical operation.

    ``kind`` is one of ``"insert"`` (undo by delete), ``"delete"`` (undo by
    restore) or ``"update"`` (undo by writing back the old image).
    """

    kind: str
    table: str
    row_id: int
    old_row: dict[str, Any] | None = None


@dataclass
class Transaction:
    """An open transaction: an id, a state and an undo log."""

    txn_id: int
    state: TransactionState = TransactionState.ACTIVE
    undo_log: list[UndoRecord] = field(default_factory=list)
    savepoints: dict[str, int] = field(default_factory=dict)

    def record(self, record: UndoRecord) -> None:
        if self.state is not TransactionState.ACTIVE:
            raise TransactionError(
                f"transaction {self.txn_id} is {self.state.value}, cannot log"
            )
        self.undo_log.append(record)


class TransactionManager:
    """Owns the single active transaction of a database.

    Nested ``begin`` calls are not allowed; use savepoints for partial
    rollback inside stored procedures.
    """

    def __init__(self, database: "Database") -> None:
        self._database = database
        self._active: Transaction | None = None
        self._next_txn_id = 1
        self.committed_count = 0
        self.aborted_count = 0

    # ------------------------------------------------------------------
    @property
    def active(self) -> Transaction | None:
        return self._active

    def in_transaction(self) -> bool:
        return self._active is not None

    # ------------------------------------------------------------------
    def begin(self) -> Transaction:
        if self._active is not None:
            raise TransactionError("a transaction is already active")
        txn = Transaction(txn_id=self._next_txn_id)
        self._next_txn_id += 1
        self._active = txn
        return txn

    def commit(self) -> None:
        txn = self._require_active()
        txn.state = TransactionState.COMMITTED
        self._active = None
        self.committed_count += 1
        self._database.notify_data_changed()

    def rollback(self) -> None:
        txn = self._require_active()
        self._undo(txn.undo_log)
        txn.undo_log.clear()
        txn.state = TransactionState.ABORTED
        self._active = None
        self.aborted_count += 1
        log = self._database.delta_log
        if log is not None:
            # The undo replay above went through the tables directly,
            # so the log's pending buffer holds exactly this
            # transaction's forward ops — drop them; only committed
            # state is ever persisted.
            log.discard()
        # The clock never advanced: every slot stamped by this
        # transaction is dead-on-arrival (created == deleted or a
        # never-committed pending stamp) — reclaim it now.
        self._database._vacuum_all()

    # ------------------------------------------------------------------
    def savepoint(self, name: str) -> None:
        txn = self._require_active()
        txn.savepoints[name] = len(txn.undo_log)
        log = self._database.delta_log
        if log is not None:
            log.savepoint(name)

    def rollback_to_savepoint(self, name: str) -> None:
        txn = self._require_active()
        if name not in txn.savepoints:
            raise TransactionError(f"unknown savepoint {name!r}")
        mark = txn.savepoints[name]
        tail = txn.undo_log[mark:]
        self._undo(tail)
        del txn.undo_log[mark:]
        log = self._database.delta_log
        if log is not None:
            # Truncate the pending forward ops exactly like the undo
            # log truncated its tail (the undo replay bypassed the
            # database hooks, so nothing else touched the buffer).
            log.rollback_to(name)
        self._database._vacuum_all()

    # ------------------------------------------------------------------
    def log_insert(self, table: str, row_id: int) -> None:
        if self._active is not None:
            self._active.record(UndoRecord("insert", table, row_id))

    def log_delete(self, table: str, row_id: int, old_row: dict[str, Any]) -> None:
        if self._active is not None:
            self._active.record(UndoRecord("delete", table, row_id, old_row))

    def log_update(self, table: str, row_id: int, old_row: dict[str, Any]) -> None:
        if self._active is not None:
            self._active.record(UndoRecord("update", table, row_id, old_row))

    # ------------------------------------------------------------------
    def _require_active(self) -> Transaction:
        if self._active is None:
            raise TransactionError("no active transaction")
        return self._active

    def _undo(self, records: list[UndoRecord]) -> None:
        for record in reversed(records):
            table = self._database.table(record.table)
            if record.kind == "insert":
                table.delete(record.row_id)
            elif record.kind == "delete":
                assert record.old_row is not None
                table.restore(record.row_id, record.old_row)
            elif record.kind == "update":
                assert record.old_row is not None
                table.update(record.row_id, record.old_row)
            else:  # pragma: no cover - defensive
                raise TransactionError(f"unknown undo kind {record.kind!r}")
