"""Introspection helpers: everything CAT extracts "for free" from the DB.

The paper's central observation is that the information a dialogue-system
developer would normally hand-specify (tasks, slots, slot types, affected
tables) "is typically already available in the given database and the set
of its transactions".  :class:`Catalog` is that extraction surface: a
read-only view over schema, procedures and foreign-key topology used by
:mod:`repro.annotation.extraction`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import networkx as nx

from repro.db.procedures import Procedure
from repro.db.schema import Column, ForeignKey, TableSchema
from repro.db.types import DataType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.db.database import Database

__all__ = ["ColumnRef", "Catalog"]


@dataclass(frozen=True, order=True)
class ColumnRef:
    """A fully qualified column reference ``table.column``."""

    table: str
    column: str

    def __str__(self) -> str:
        return f"{self.table}.{self.column}"


class Catalog:
    """Read-only introspection over a database."""

    def __init__(self, database: "Database") -> None:
        self._database = database

    # ------------------------------------------------------------------
    # Schema
    # ------------------------------------------------------------------
    @property
    def database(self) -> "Database":
        return self._database

    def tables(self) -> list[TableSchema]:
        return list(self._database.schema)

    def columns(self, table: str) -> list[Column]:
        return list(self._database.schema.table(table).columns)

    def column_type(self, ref: ColumnRef) -> DataType:
        return self._database.schema.table(ref.table).column(ref.column).dtype

    def primary_key(self, table: str) -> str | None:
        return self._database.schema.table(table).primary_key

    def foreign_keys(self, table: str) -> list[ForeignKey]:
        return list(self._database.schema.table(table).foreign_keys)

    def all_column_refs(self) -> list[ColumnRef]:
        refs: list[ColumnRef] = []
        for table in self.tables():
            refs.extend(ColumnRef(table.name, c.name) for c in table.columns)
        return refs

    # ------------------------------------------------------------------
    # Procedures
    # ------------------------------------------------------------------
    def procedures(self) -> list[Procedure]:
        return list(self._database.procedures)

    def procedure(self, name: str) -> Procedure:
        return self._database.procedures.get(name)

    # ------------------------------------------------------------------
    # Foreign-key topology
    # ------------------------------------------------------------------
    def join_graph(self) -> "nx.Graph":
        """Undirected graph of tables with FK edges.

        Edge data carries the list of ``(source_table, fk)`` pairs, since
        two tables can be connected by several foreign keys.
        """
        graph = nx.Graph()
        for table in self.tables():
            graph.add_node(table.name)
        for table in self.tables():
            for fk in table.foreign_keys:
                if graph.has_edge(table.name, fk.target_table):
                    graph.edges[table.name, fk.target_table]["links"].append(
                        (table.name, fk)
                    )
                else:
                    graph.add_edge(
                        table.name, fk.target_table, links=[(table.name, fk)]
                    )
        return graph

    def is_junction_table(self, name: str) -> bool:
        """True for pure N:M junction tables (every column is the PK or an FK).

        Junction tables carry no askable attributes of their own; the
        iterative join expansion should treat hopping *through* them as a
        single logical join (movie -> movie_actor -> actor counts as one
        hop from movie to actor).
        """
        schema = self._database.schema.table(name)
        fk_columns = {fk.column for fk in schema.foreign_keys}
        if len(fk_columns) < 2:
            return False
        for column in schema.columns:
            if column.name == schema.primary_key:
                continue
            if column.name not in fk_columns:
                return False
        return True

    def identification_graph(self) -> "nx.DiGraph":
        """Directed graph of the joins that *describe* an entity.

        From a table you may hop (a) forward along its own foreign keys —
        the referenced row is a property of the entity (screening ->
        movie) — and (b) into a pure junction table that references it,
        and onward out of the junction (movie -> movie_actor -> actor:
        the cast is a set-valued property of the movie).  Reverse fan-in
        joins (screening <- reservation) are excluded: the rows referencing
        an entity describe *other* entities, and asking the user about
        them ("whose reservation is on this screening?") is nonsensical.

        Edges touching a junction table weigh 0.5 so that traversing a
        junction counts as one logical join.
        """
        graph = nx.DiGraph()
        for table in self.tables():
            graph.add_node(table.name)
        for table in self.tables():
            junction = self.is_junction_table(table.name)
            for fk in table.foreign_keys:
                weight = 0.5 if junction else 1.0
                graph.add_edge(table.name, fk.target_table, weight=weight)
                if junction:
                    # Entering the junction from the referenced side.
                    graph.add_edge(fk.target_table, table.name, weight=0.5)
        return graph

    def tables_within(self, root: str, max_hops: int) -> dict[str, int]:
        """Tables reachable from ``root`` within ``max_hops`` logical joins.

        Returns ``table -> hop distance`` (the root maps to 0).  This
        bounds the paper's iterative join expansion; reachability follows
        :meth:`identification_graph`.
        """
        graph = self.identification_graph()
        if root not in graph:
            return {root: 0}
        lengths = nx.single_source_dijkstra_path_length(
            graph, root, cutoff=max_hops, weight="weight"
        )
        return {table: int(distance) for table, distance in lengths.items()}

    def join_path(self, source: str, target: str) -> list[str] | None:
        """Shortest identification-join path between two tables, or ``None``."""
        graph = self.identification_graph()
        if source not in graph or target not in graph:
            return None
        try:
            return nx.shortest_path(graph, source, target, weight="weight")
        except nx.NetworkXNoPath:
            return None

    def fk_between(self, left: str, right: str) -> tuple[str, ForeignKey] | None:
        """The FK connecting two adjacent tables (either direction)."""
        for table_name, other in ((left, right), (right, left)):
            schema = self._database.schema.table(table_name)
            for fk in schema.foreign_keys:
                if fk.target_table == other:
                    return (table_name, fk)
        return None
