"""Database statistics: distinct counts, frequencies, entropy, selectivity.

The data-aware dialogue policy (Section 4 of the paper) scores candidate
attributes by how much they narrow down the current entity set.  The
primitives for that live here:

* :func:`entropy` — Shannon entropy of a value multiset (the paper: "we
  choose the attribute with the highest entropy"),
* :class:`ColumnStatistics` — per-column summary (distinct count, most
  common values, null fraction, histogram) as a query optimizer would
  keep, used as the *a-priori* signal for deciding which related tables
  are worth joining in,
* :class:`StatisticsCatalog` — lazily computed, version-stamped statistics
  for a whole database; recomputed automatically when the data version
  changes, which is what lets the agent adapt without retraining.
"""

from __future__ import annotations

import datetime as _dt
import math
from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Sequence

from repro.db.versioncache import VersionStampedCache

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.db.database import Database

__all__ = [
    "entropy",
    "normalized_entropy",
    "gini_impurity",
    "ColumnStatistics",
    "TableStatistics",
    "StatisticsCatalog",
    "column_statistics_from_counts",
]


def entropy(values: Sequence[Any]) -> float:
    """Shannon entropy (bits) of the empirical distribution of ``values``.

    NULLs are kept as their own category: an attribute that is NULL for
    half the candidates genuinely separates them less.
    """
    total = len(values)
    if total == 0:
        return 0.0
    counts = Counter(values)
    result = 0.0
    for count in counts.values():
        p = count / total
        result -= p * math.log2(p)
    return result


def normalized_entropy(values: Sequence[Any]) -> float:
    """Entropy scaled to [0, 1] by the maximum ``log2(n_distinct)``."""
    counts = Counter(values)
    if len(counts) <= 1:
        return 0.0
    return entropy(values) / math.log2(len(counts))


def gini_impurity(values: Sequence[Any]) -> float:
    """Gini impurity — an alternative informativeness score (ablation)."""
    total = len(values)
    if total == 0:
        return 0.0
    counts = Counter(values)
    return 1.0 - sum((count / total) ** 2 for count in counts.values())


@dataclass(frozen=True)
class ColumnStatistics:
    """Summary statistics of one column at one point in time."""

    table: str
    column: str
    row_count: int
    distinct_count: int
    null_count: int
    entropy: float
    most_common: tuple[tuple[Any, int], ...]
    min_value: Any = None
    max_value: Any = None

    @property
    def null_fraction(self) -> float:
        return self.null_count / self.row_count if self.row_count else 0.0

    @property
    def average_selectivity(self) -> float:
        """Expected fraction of rows matched by an equality predicate.

        For a uniform column this is ``1 / distinct_count``; we compute the
        exact expectation under the empirical distribution:
        ``sum_v (count_v / n)^2``.
        """
        if self.row_count == 0:
            return 0.0
        total_sq = sum(count * count for __, count in self.most_common)
        counted = sum(count for __, count in self.most_common)
        # Values beyond the retained most-common list are approximated as
        # uniform over the remaining distinct values.  Clamp at zero:
        # externally supplied histograms can disagree with row_count.
        remaining_rows = max(0, self.row_count - self.null_count - counted)
        remaining_distinct = self.distinct_count - len(self.most_common)
        if remaining_rows > 0 and remaining_distinct > 0:
            per_value = remaining_rows / remaining_distinct
            total_sq += remaining_distinct * per_value * per_value
        return min(1.0, total_sq / (self.row_count * self.row_count))

    def selectivity(self, value: Any) -> float:
        """Estimated fraction of rows where ``column == value``.

        Degenerate inputs are guarded: an empty table and an all-NULL
        column estimate 0.0 (an equality can match nothing); a value
        outside a *fully enumerated* most-common list (``distinct_count
        == len(most_common)``) floors at half a row rather than 0.0, so
        cost models and divergence ratios never see a hard zero for a
        value that may have been inserted since statistics were cut.
        """
        if self.row_count == 0:
            return 0.0
        for known, count in self.most_common:
            if known == value:
                return min(1.0, count / self.row_count)
        if self.distinct_count == 0:
            # All-NULL column: no non-null value can match.
            return 0.0
        counted = sum(count for __, count in self.most_common)
        remaining_rows = max(0, self.row_count - self.null_count - counted)
        remaining_distinct = self.distinct_count - len(self.most_common)
        if remaining_rows <= 0 or remaining_distinct <= 0:
            return 0.5 / self.row_count
        return min(
            1.0, (remaining_rows / remaining_distinct) / self.row_count
        )

    def bucket_selectivity(self, value: Any) -> tuple[float, Any]:
        """``(estimate, bucket)`` for an equality against ``value``.

        The bucket identifies which MCV stratum priced the estimate: the
        matched most-common value itself, or ``None`` for the uniform
        tail.  Plan re-specialisation keys forked templates by bucket —
        every constant in one bucket shares one selectivity estimate, so
        one specialised template per bucket is exactly enough.
        """
        if self.row_count == 0:
            return 0.0, None
        for known, count in self.most_common:
            if known == value:
                return min(1.0, count / self.row_count), known
        return self.selectivity(value), None

    @property
    def is_key_like(self) -> bool:
        """True when values are (almost) unique — ID-like columns."""
        non_null = self.row_count - self.null_count
        return non_null > 0 and self.distinct_count >= 0.99 * non_null

    def range_selectivity(self, low: Any = None, high: Any = None) -> float:
        """Estimated fraction of rows inside ``[low, high]``.

        Interpolates linearly between the observed min/max when the
        column and bounds are numeric or date-like; otherwise falls back
        to the textbook default of 1/3 per bounded side.  Inclusivity is
        ignored — the estimate is for planning, not for results.
        """
        non_null = self.row_count - self.null_count
        if self.row_count == 0 or non_null <= 0:
            return 0.0
        default = (1 / 3) ** ((low is not None) + (high is not None))
        span = _numeric_span(self.min_value, self.max_value)
        if span is None or span <= 0:
            return default
        lo_n = _as_number(low) if low is not None else None
        hi_n = _as_number(high) if high is not None else None
        if (low is not None and lo_n is None) or (high is not None and hi_n is None):
            return default
        min_n = _as_number(self.min_value)
        start = min_n if lo_n is None else max(min_n, lo_n)
        stop = min_n + span if hi_n is None else min(min_n + span, hi_n)
        fraction = max(0.0, stop - start) / span
        return min(1.0, fraction) * (non_null / self.row_count)


def _as_number(value: Any) -> float | None:
    """Map orderable values onto a number line for interpolation."""
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, _dt.datetime):
        return value.timestamp()
    if isinstance(value, _dt.date):
        return float(value.toordinal())
    if isinstance(value, _dt.time):
        return value.hour * 3600.0 + value.minute * 60.0 + value.second
    return None


def _numeric_span(min_value: Any, max_value: Any) -> float | None:
    lo = _as_number(min_value)
    hi = _as_number(max_value)
    if lo is None or hi is None:
        return None
    return hi - lo


def compute_column_statistics(
    table_name: str,
    column: str,
    values: Sequence[Any],
    most_common_k: int = 16,
) -> ColumnStatistics:
    """Build :class:`ColumnStatistics` from raw column values."""
    non_null = [v for v in values if v is not None]
    counts = Counter(non_null)
    try:
        min_value = min(non_null) if non_null else None
        max_value = max(non_null) if non_null else None
    except TypeError:  # mixed/unorderable values
        min_value = max_value = None
    return ColumnStatistics(
        table=table_name,
        column=column,
        row_count=len(values),
        distinct_count=len(counts),
        null_count=len(values) - len(non_null),
        entropy=entropy(list(values)),
        most_common=tuple(counts.most_common(most_common_k)),
        min_value=min_value,
        max_value=max_value,
    )


def column_statistics_from_counts(
    table_name: str,
    column: str,
    counts: Counter,
    null_count: int,
    most_common_k: int = 16,
) -> ColumnStatistics:
    """Build :class:`ColumnStatistics` from a value histogram.

    The sealed-storage path: :meth:`Table.column_counts` merges the
    epoch-memoised sealed counter with the delta, so the catalog never
    rescans a sealed column — every figure here derives from the
    ``value -> count`` histogram exactly as the rescan derives it from
    the raw values (NULLs stay their own entropy category).
    """
    non_null = sum(counts.values())
    row_count = non_null + null_count
    try:
        min_value = min(counts) if counts else None
        max_value = max(counts) if counts else None
    except TypeError:  # mixed/unorderable values
        min_value = max_value = None
    bits = 0.0
    if row_count:
        for count in counts.values():
            p = count / row_count
            bits -= p * math.log2(p)
        if null_count:
            p = null_count / row_count
            bits -= p * math.log2(p)
    return ColumnStatistics(
        table=table_name,
        column=column,
        row_count=row_count,
        distinct_count=len(counts),
        null_count=null_count,
        entropy=bits,
        most_common=tuple(counts.most_common(most_common_k)),
        min_value=min_value,
        max_value=max_value,
    )


@dataclass(frozen=True)
class TableStatistics:
    """Statistics for all columns of one table."""

    table: str
    row_count: int
    columns: dict[str, ColumnStatistics]

    def column(self, name: str) -> ColumnStatistics:
        return self.columns[name]


class StatisticsCatalog:
    """Version-stamped statistics over a whole database.

    Statistics are computed lazily per table and cached until the
    database's data version changes.  This is the "integrated caching
    strategy" of Section 4 — the policy can consult statistics on every
    turn at millisecond latency while staying consistent with updates.

    The catalog is safe for concurrent readers via the shared
    :class:`~repro.db.versioncache.VersionStampedCache` protocol.
    """

    def __init__(self, database: "Database", most_common_k: int = 16) -> None:
        self._database = database
        self._most_common_k = most_common_k
        self._cache = VersionStampedCache(database)

    @property
    def hits(self) -> int:
        return self._cache.hits

    @property
    def misses(self) -> int:
        return self._cache.misses

    def table(self, table_name: str) -> TableStatistics:
        """Statistics for ``table_name``, recomputing if stale."""
        return self._cache.lookup(
            table_name, lambda: self._compute(table_name)
        )

    def column(self, table_name: str, column: str) -> ColumnStatistics:
        """Statistics for one column, cached independently.

        The planner prices one predicate column at a time; computing
        (and re-computing, every commit) the whole table's histograms
        for that would make each OLTP commit pay for the widest
        key-like column nobody asked about.  Per-column entries share
        the catalog's version-stamped cache with the table entries.
        """
        return self._cache.lookup(
            (table_name, column),
            lambda: self._compute_column(table_name, column),
        )

    def matches_per_key(self, table_name: str, column: str) -> float:
        """Expected rows matched by one equality probe on ``column``.

        ``(non-null rows) / (distinct values)`` — always >= 1 when the
        column has data, since every distinct value occupies at least
        one row.  Shared by the join-cost model, the greedy join
        ordering and the dataaware join-path walker.  Falls back to 1.0
        when the column is unknown or empty.
        """
        try:
            stats = self.column(table_name, column)
        except KeyError:
            return 1.0
        if stats.distinct_count == 0:
            return 1.0
        return max(
            1.0, (stats.row_count - stats.null_count) / stats.distinct_count
        )

    def invalidate(self) -> None:
        self._cache.invalidate()

    def _compute(self, table_name: str) -> TableStatistics:
        table = self._database.table(table_name)
        columns: dict[str, ColumnStatistics] = {}
        # Sealed tables answer from merged histograms (sealed counter
        # memoised per epoch + delta adjustments) — a commit between
        # turns costs O(distinct + delta) per column, not a rescan.
        # Unsealed tables (or a stale pinned reader) read the columns
        # straight from the banks in one shared slot pass.  Not
        # assembled from :meth:`column` entries — a whole-table
        # consumer would then count one miss per column, and the two
        # access patterns rarely overlap.
        arrays = None
        sealed = table.is_sealed
        for column in table.schema.column_names:
            merged = table.column_counts(column) if sealed else None
            if merged is not None:
                columns[column] = column_statistics_from_counts(
                    table_name, column, merged[0], merged[1],
                    self._most_common_k,
                )
                continue
            if arrays is None:
                arrays = table.column_arrays()
            columns[column] = compute_column_statistics(
                table_name, column, arrays[column], self._most_common_k
            )
        return TableStatistics(
            table=table_name, row_count=len(table), columns=columns
        )

    def _compute_column(
        self, table_name: str, column: str
    ) -> ColumnStatistics:
        table = self._database.table(table_name)
        if not table.schema.has_column(column):
            raise KeyError(column)
        merged = table.column_counts(column) if table.is_sealed else None
        if merged is not None:
            return column_statistics_from_counts(
                table_name, column, merged[0], merged[1],
                self._most_common_k,
            )
        return compute_column_statistics(
            table_name, column, table.column_arrays()[column],
            self._most_common_k,
        )
