"""The prepared-plan cache: one planning pass per query *shape*.

The serving runtime issues the same handful of query shapes on every
turn — candidate refinement probes, count checks, the booked-seats
aggregate — differing only in their constants.  Planning one of these
costs a statistics-catalog consultation plus access-path enumeration;
this module amortises that to one compilation per (shape, data version):

1. :func:`fingerprint_spec` reduces a :class:`QuerySpec` to a structural
   *fingerprint* (a nested plain tuple — cheap to hash on every lookup)
   plus the tuple of extracted constants; equal-shape queries with
   different constants produce the same fingerprint.  On a miss,
   :func:`parameterize_spec` additionally builds the spec with every
   constant replaced by a :class:`~repro.db.engine.plan.Param` slot for
   the planner to compile.
2. The fingerprint maps to a compiled plan *template* through the shared
   :class:`~repro.db.versioncache.VersionStampedCache` protocol, so a
   committed mutation invalidates templates exactly like it invalidates
   the statistics the planner priced them with.  The template is planned
   with the first execution's constants (classic generic-plan
   behaviour) but its nodes carry the slots.
3. :func:`bind_plan` substitutes the current execution's constants into
   the template — re-coercing index bounds exactly as direct planning
   would — yielding a concrete plan for the executor.  Constants a
   template cannot absorb (a value that no longer coerces to the column
   type) fall back to an uncached planning pass, preserving the
   planner's SeqScan + Filter semantics for such values.

Shapes whose plan *structure* depends on the constants (several lower or
upper bounds on one column, where the fold winner is value-dependent)
are refused by :func:`parameterize_spec` and planned per query.

The template store is bounded: at most ``max_entries`` shapes are kept,
evicting least-recently-used templates beyond the cap (an evicted shape
simply recompiles on its next use).  Real workloads stay far below the
default of :data:`DEFAULT_MAX_ENTRIES`; the bound is a guard against
adversarial shape churn, mirroring the session store's LRU policy.

Hit/miss counters are kept globally and per thread; the serving runtime
reads the thread-local counters around a turn to attribute cache traffic
to the session being served.

**Plan re-specialisation.**  A template is priced with the first
execution's constants (classic generic-plan behaviour), which goes
wrong under skew: a plan priced for the 90%-frequency constant of an
MCV-heavy column executes a scan-shaped plan for the 0.1% constant that
wanted an index probe.  Each template therefore records the
MCV-bucketed selectivity estimate (``ColumnStatistics.
bucket_selectivity``) of every root-table equality slot it was priced
under; at bind time, a bound constant whose bucket estimate diverges
from the recorded one by more than ``divergence_ratio`` triggers an
uncached replan for that execution, and after ``fork_threshold``
consecutive divergences of one bucket the cache *forks* a
bucket-specialised template, stored in the same version-stamped LRU
store (key: fingerprint + bucket), so DDL invalidation and eviction
treat forks exactly like their parents.  See ``respecialized``.
"""

from __future__ import annotations

import threading
from dataclasses import replace
from typing import TYPE_CHECKING, Any

from repro.db.engine.plan import (
    CountOnly,
    Filter,
    GroupSemiJoin,
    HashAggregate,
    HashJoin,
    IndexAggScan,
    IndexEq,
    IndexGroupedAggScan,
    IndexInList,
    IndexNestedLoopJoin,
    IndexOrUnion,
    IndexRange,
    Param,
    PlanNode,
    Project,
    QuerySpec,
    SeqScan,
    Sort,
    TopN,
)
from repro.db.engine.planner import plan_query
from repro.db.query import (
    And,
    Comparison,
    Not,
    Or,
    Predicate,
    TruePredicate,
)
from repro.db.types import TypeMismatchError, coerce
from repro.db.versioncache import VersionStampedCache
from repro.errors import QueryError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.db.database import Database
    from repro.db.statistics import StatisticsCatalog

__all__ = [
    "DEFAULT_MAX_ENTRIES",
    "PlanCache",
    "fingerprint_spec",
    "parameterize_spec",
    "bind_plan",
    "compile_binder",
]


# ---------------------------------------------------------------------------
# Shape extraction
# ---------------------------------------------------------------------------

class _Uncacheable(Exception):
    """Internal: this spec cannot share a compiled plan across constants."""


class _Unbindable(Exception):
    """Internal: a template cannot absorb this execution's constants."""


_TRUE = TruePredicate()


def fingerprint_spec(spec: QuerySpec) -> tuple[tuple | None, tuple]:
    """``(fingerprint, params)`` for ``spec`` — the cache's hot path.

    The fingerprint is a nested plain tuple (cheap to hash and compare
    — no dataclass machinery) that two specs share exactly when they
    are the same query *shape*: same structure everywhere, constants
    ignored.  ``params`` holds the constants in slot order.  Returns
    ``(None, ())`` for specs whose plan shape depends on the constants
    themselves.
    """
    if _has_value_dependent_shape(spec.predicate):
        return None, ()
    params: list[Any] = []
    try:
        predicate_key = _predicate_key(spec.predicate, params)
        having_key = (
            None if spec.having is None
            else _predicate_key(spec.having, params)
        )
    except _Uncacheable:
        return None, ()
    return (
        (
            spec.table,
            predicate_key,
            spec.joins,
            spec.projection,
            spec.order_by,
            spec.descending,
            spec.limit,
            spec.count_only,
            spec.aggregates,
            spec.group_by,
            having_key,
        ),
        tuple(params),
    )


def _predicate_key(predicate: Predicate, params: list[Any]) -> tuple:
    """Structural key of the predicate; constants append to ``params``
    in the same traversal order :func:`_parameterize_predicate` uses."""
    if isinstance(predicate, TruePredicate):
        return ("true",)
    if isinstance(predicate, Comparison):
        params.append(predicate.value)
        return ("cmp", predicate.column, predicate.op)
    if isinstance(predicate, And):
        return ("and",) + tuple(
            _predicate_key(p, params) for p in predicate.parts
        )
    if isinstance(predicate, Or):
        return ("or",) + tuple(
            _predicate_key(p, params) for p in predicate.parts
        )
    if isinstance(predicate, Not):
        return ("not", _predicate_key(predicate.part, params))
    raise _Uncacheable


def parameterize_spec(spec: QuerySpec) -> tuple[QuerySpec | None, tuple]:
    """Split ``spec`` into ``(shape, params)``.

    The shape is a structurally-equal spec with every comparison
    constant replaced by a parameter slot; ``params`` holds the
    extracted constants in slot order (identical to
    :func:`fingerprint_spec`'s order — both walk the same traversal).
    Returns ``(None, ())`` for specs whose plan shape depends on the
    constants themselves.
    """
    if _has_value_dependent_shape(spec.predicate):
        return None, ()
    params: list[Any] = []
    try:
        predicate = _parameterize_predicate(spec.predicate, params)
        having = (
            None if spec.having is None
            else _parameterize_predicate(spec.having, params)
        )
    except _Uncacheable:
        return None, ()
    return replace(spec, predicate=predicate, having=having), tuple(params)


def _parameterize_predicate(
    predicate: Predicate, params: list[Any]
) -> Predicate:
    if isinstance(predicate, TruePredicate):
        return _TRUE
    if isinstance(predicate, Comparison):
        slot = Param(len(params))
        params.append(predicate.value)
        return Comparison(predicate.column, predicate.op, slot)
    if isinstance(predicate, And):
        return And(
            tuple(_parameterize_predicate(p, params) for p in predicate.parts)
        )
    if isinstance(predicate, Or):
        return Or(
            tuple(_parameterize_predicate(p, params) for p in predicate.parts)
        )
    if isinstance(predicate, Not):
        return Not(_parameterize_predicate(predicate.part, params))
    # A predicate subclass this module does not know cannot be slotted
    # (its constants are invisible); plan such queries directly.
    raise _Uncacheable


def _has_value_dependent_shape(predicate: Predicate) -> bool:
    """Several bounds on one side of one column: the planner folds them
    by comparing the *values*, so the winning slot is not shape-stable."""
    if isinstance(predicate, (TruePredicate, Comparison)):
        return False  # a single part can never fold against another
    lows: dict[str, int] = {}
    highs: dict[str, int] = {}
    for part in _flatten_and(predicate):
        if not isinstance(part, Comparison):
            continue
        if part.op in (">", ">="):
            lows[part.column] = lows.get(part.column, 0) + 1
        elif part.op in ("<", "<="):
            highs[part.column] = highs.get(part.column, 0) + 1
    return any(n > 1 for n in lows.values()) or any(
        n > 1 for n in highs.values()
    )


def _flatten_and(predicate: Predicate) -> list[Predicate]:
    if isinstance(predicate, TruePredicate):
        return []
    if isinstance(predicate, And):
        out: list[Predicate] = []
        for part in predicate.parts:
            out.extend(_flatten_and(part))
        return out
    return [predicate]


# ---------------------------------------------------------------------------
# Template binding
# ---------------------------------------------------------------------------

def bind_plan(
    database: "Database", template: PlanNode, params: tuple
) -> PlanNode:
    """Substitute ``params`` into ``template``, re-coercing index bounds.

    Raises :class:`QueryError` (via the cache's fallback) when a
    constant cannot be absorbed — e.g. it no longer coerces to the
    probed column's type, where direct planning would have chosen a
    different access path.
    """
    if not params:
        return template
    return _bind(database, template, params)


def _bind(database: "Database", node: PlanNode, params: tuple) -> PlanNode:
    if isinstance(node, SeqScan):
        return node
    if isinstance(node, IndexEq):
        if not isinstance(node.value, Param):
            return node
        value = params[node.value.index]
        _check_coercible(database, node.table, node.column, value)
        return replace(node, value=value)
    if isinstance(node, IndexInList):
        if not isinstance(node.values, Param):
            return node
        values = params[node.values.index]
        if isinstance(values, (str, bytes)):
            # ``x in "text"`` is a substring test, not a probe list —
            # only the SeqScan + Filter plan evaluates it correctly.
            raise _Unbindable
        try:
            elements = tuple(values)
        except TypeError:
            raise _Unbindable from None
        for element in elements:
            coerced = _check_coercible(
                database, node.table, node.column, element
            )
            if coerced is None:
                raise _Unbindable
        return replace(node, values=elements)
    if isinstance(node, IndexOrUnion):
        if not any(isinstance(v, Param) for __, v in node.probes):
            return node
        probes = []
        for column, value in node.probes:
            if isinstance(value, Param):
                value = params[value.index]
                # Like IndexEq: a value that no longer coerces needs the
                # SeqScan + Filter plan (None probes match nothing, and
                # the Or re-check keeps results exact either way).
                _check_coercible(database, node.table, column, value)
            probes.append((column, value))
        return replace(node, probes=tuple(probes))
    if isinstance(node, IndexRange):
        low = _bind_bound(database, node, node.low, params)
        high = _bind_bound(database, node, node.high, params)
        if low is node.low and high is node.high:
            return node
        return replace(node, low=low, high=high)
    if isinstance(node, (IndexAggScan, IndexGroupedAggScan)):
        return node
    if isinstance(node, Filter):
        child = _bind(database, node.child, params)
        predicate = _bind_predicate(node.predicate, params)
        if child is node.child and predicate is node.predicate:
            return node
        return replace(node, child=child, predicate=predicate)
    if isinstance(
        node,
        (HashJoin, IndexNestedLoopJoin, GroupSemiJoin, Sort, TopN, Project,
         CountOnly, HashAggregate),
    ):
        child = _bind(database, node.child, params)
        if child is node.child:
            return node
        return replace(node, child=child)
    raise QueryError(  # pragma: no cover - new nodes must be taught here
        f"cannot bind plan node {type(node).__name__}"
    )


def _bind_bound(
    database: "Database", node: IndexRange, bound: Any, params: tuple
) -> Any:
    if not isinstance(bound, Param):
        return bound
    value = params[bound.index]
    coerced = _check_coercible(database, node.table, node.column, value)
    if coerced is None:
        # Direct planning treats a NULL bound as unusable and scans.
        raise _Unbindable
    return coerced


def _check_coercible(
    database: "Database", table_name: str, column: str, value: Any
) -> Any:
    dtype = database.table(table_name).schema.column(column).dtype
    try:
        return coerce(value, dtype)
    except TypeMismatchError:
        raise _Unbindable from None


# ---------------------------------------------------------------------------
# Compiled binders (the PreparedStatement fast path)
# ---------------------------------------------------------------------------

def compile_binder(database: "Database", template: PlanNode):
    """A specialised bind function for one ``template`` instance.

    ``bind_plan`` re-discovers per call which nodes carry Param slots
    and what column types their constants must coerce to; a prepared
    statement executes one template thousands of times, so this
    compiles that discovery once into a closure tree: static subtrees
    collapse to the template's own nodes, slot-carrying nodes capture
    their coercion targets.  Returns ``fn(params) -> PlanNode`` with
    exactly ``bind_plan``'s semantics (including raising the internal
    unbindable signal handled by :meth:`PlanCache.bind_or_replan`).
    """
    binder = _compile_node_binder(database, template)
    if binder is None:
        return lambda params: template
    return binder


def _compile_node_binder(database: "Database", node: PlanNode):
    """``fn(params) -> node`` or ``None`` when the subtree is static."""
    if isinstance(node, (SeqScan, IndexAggScan, IndexGroupedAggScan)):
        return None
    if isinstance(node, IndexEq):
        if not isinstance(node.value, Param):
            return None
        dtype = database.table(node.table).schema.column(node.column).dtype
        index = node.value.index

        def bind_eq(params, node=node, dtype=dtype, index=index):
            value = params[index]
            try:
                coerce(value, dtype)
            except TypeMismatchError:
                raise _Unbindable from None
            return replace(node, value=value)

        return bind_eq
    if isinstance(node, IndexInList):
        if not isinstance(node.values, Param):
            return None
        dtype = database.table(node.table).schema.column(node.column).dtype
        index = node.values.index

        def bind_in(params, node=node, dtype=dtype, index=index):
            values = params[index]
            if isinstance(values, (str, bytes)):
                raise _Unbindable
            try:
                elements = tuple(values)
            except TypeError:
                raise _Unbindable from None
            for element in elements:
                try:
                    coerced = coerce(element, dtype)
                except TypeMismatchError:
                    raise _Unbindable from None
                if coerced is None:
                    raise _Unbindable
            return replace(node, values=elements)

        return bind_in
    if isinstance(node, IndexOrUnion):
        if not any(isinstance(v, Param) for __, v in node.probes):
            return None
        schema = database.table(node.table).schema
        slots = tuple(
            (column, value, schema.column(column).dtype
             if isinstance(value, Param) else None)
            for column, value in node.probes
        )

        def bind_or(params, node=node, slots=slots):
            probes = []
            for column, value, dtype in slots:
                if dtype is not None:
                    value = params[value.index]
                    try:
                        coerce(value, dtype)
                    except TypeMismatchError:
                        raise _Unbindable from None
                probes.append((column, value))
            return replace(node, probes=tuple(probes))

        return bind_or
    if isinstance(node, IndexRange):
        if not isinstance(node.low, Param) and not isinstance(node.high, Param):
            return None
        dtype = database.table(node.table).schema.column(node.column).dtype

        def coerce_bound(value):
            try:
                coerced = coerce(value, dtype)
            except TypeMismatchError:
                raise _Unbindable from None
            if coerced is None:
                raise _Unbindable
            return coerced

        low_index = node.low.index if isinstance(node.low, Param) else None
        high_index = node.high.index if isinstance(node.high, Param) else None

        def bind_range(params, node=node):
            low = node.low if low_index is None else \
                coerce_bound(params[low_index])
            high = node.high if high_index is None else \
                coerce_bound(params[high_index])
            return replace(node, low=low, high=high)

        return bind_range
    if isinstance(node, Filter):
        child = _compile_node_binder(database, node.child)
        predicate = _compile_predicate_binder(node.predicate)
        if child is None and predicate is None:
            return None

        def bind_filter(params, node=node, child=child, predicate=predicate):
            return replace(
                node,
                child=node.child if child is None else child(params),
                predicate=node.predicate if predicate is None
                else predicate(params),
            )

        return bind_filter
    if isinstance(
        node,
        (HashJoin, IndexNestedLoopJoin, GroupSemiJoin, Sort, TopN, Project,
         CountOnly, HashAggregate),
    ):
        child = _compile_node_binder(database, node.child)
        if child is None:
            return None

        def bind_unary(params, node=node, child=child):
            return replace(node, child=child(params))

        return bind_unary
    raise QueryError(  # pragma: no cover - new nodes must be taught here
        f"cannot compile a binder for {type(node).__name__}"
    )


def _compile_predicate_binder(predicate: Predicate):
    """``fn(params) -> predicate`` or ``None`` for static predicates."""
    if isinstance(predicate, Comparison):
        if not isinstance(predicate.value, Param):
            return None
        column, op, index = predicate.column, predicate.op, predicate.value.index
        return lambda params: Comparison(column, op, params[index])
    if isinstance(predicate, (And, Or)):
        binders = tuple(
            _compile_predicate_binder(p) for p in predicate.parts
        )
        if not any(binders):
            return None
        cls = type(predicate)
        parts = predicate.parts

        def bind_parts(params, cls=cls, parts=parts, binders=binders):
            return cls(
                tuple(
                    part if binder is None else binder(params)
                    for part, binder in zip(parts, binders)
                )
            )

        return bind_parts
    if isinstance(predicate, Not):
        inner = _compile_predicate_binder(predicate.part)
        if inner is None:
            return None
        return lambda params: Not(inner(params))
    return None


def _bind_predicate(predicate: Predicate, params: tuple) -> Predicate:
    if isinstance(predicate, Comparison):
        if isinstance(predicate.value, Param):
            return Comparison(
                predicate.column, predicate.op, params[predicate.value.index]
            )
        return predicate
    if isinstance(predicate, And):
        return And(
            tuple(_bind_predicate(p, params) for p in predicate.parts)
        )
    if isinstance(predicate, Or):
        return Or(
            tuple(_bind_predicate(p, params) for p in predicate.parts)
        )
    if isinstance(predicate, Not):
        return Not(_bind_predicate(predicate.part, params))
    return predicate


# ---------------------------------------------------------------------------
# Re-specialisation metadata
# ---------------------------------------------------------------------------

class _RespecMeta:
    """Per-template re-specialisation state.

    ``guards`` carries one entry per root-table equality slot the
    template was priced under: ``(slot, column, stats, planned_sel,
    planned_bucket)``, where ``stats`` is the
    :class:`ColumnStatistics` snapshot captured at template build (the
    divergence check deliberately compares against the estimates the
    template was priced with, and pays no per-execution catalog
    lookup).  ``counts`` tracks consecutive divergences per
    ``(slot, bucket)`` — the fork trigger.  Validated by template
    identity like the connection-level binder profiles: a version bump
    hands back a new template instance, which rebuilds the meta and
    resets every count.
    """

    __slots__ = ("template", "guards", "counts")

    def __init__(self, template: PlanNode, guards: tuple) -> None:
        self.template = template
        self.guards = guards
        self.counts: dict[tuple, int] = {}


def _ordered_comparisons(predicate: Predicate):
    """Comparisons in :func:`_predicate_key`'s traversal order — the
    index of a comparison in this walk IS its parameter slot, because
    the key builder appends exactly one param per comparison."""
    if isinstance(predicate, Comparison):
        yield predicate
    elif isinstance(predicate, (And, Or)):
        for part in predicate.parts:
            yield from _ordered_comparisons(part)
    elif isinstance(predicate, Not):
        yield from _ordered_comparisons(predicate.part)


# ---------------------------------------------------------------------------
# The cache
# ---------------------------------------------------------------------------

#: Default cap on cached plan templates.  Real workloads issue a
#: handful of shapes; the bound exists so an adversarial client cannot
#: grow the shape space (and the cache) without limit.
DEFAULT_MAX_ENTRIES = 512


class PlanCache:
    """Version-stamped, LRU-bounded ``shape -> plan template`` cache.

    Thread-safe via the shared :class:`VersionStampedCache` protocol:
    hits never take the database lock, rebuilds run under the shared
    read lock and stamp the data version they observed, racing rebuilds
    converge on the freshest template.  Entries are capped at
    ``max_entries`` with least-recently-used eviction (like the serving
    session store), so unbounded query-shape churn cannot exhaust
    memory; evictions are counted for the runtime's observability
    surface.
    """

    def __init__(
        self,
        database: "Database",
        statistics: "StatisticsCatalog | None" = None,
        max_entries: int | None = DEFAULT_MAX_ENTRIES,
    ) -> None:
        self._database = database
        self._statistics = statistics
        # Templates stamp on plan_stamp, not data_version: once the
        # tables are sealed, a committed write leaves cached templates
        # alive (they stay structurally valid; statistics absorb the
        # delta), and only DDL or a compaction re-prices them.
        self._cache = VersionStampedCache(
            database,
            max_entries=max_entries,
            version=lambda: database.plan_stamp,
        )
        self._local = threading.local()
        self._bypass_lock = threading.Lock()
        self._bypasses = 0
        # ---- re-specialisation policy (see module docstring) ----
        #: estimate ratio beyond which a binding replans this execution
        self.divergence_ratio = 8.0
        #: consecutive divergences of one bucket before a template forks
        self.fork_threshold = 3
        #: tables smaller than this never trigger re-specialisation
        self.respec_min_rows = 256
        self.respec_enabled = True
        self._respec_lock = threading.Lock()
        self._meta: dict[tuple, _RespecMeta] = {}
        self._divergences = 0
        self._replans = 0
        self._forks = 0
        self._fork_binds = 0

    # ------------------------------------------------------------------
    @property
    def hits(self) -> int:
        """Global template-cache hits (across all threads)."""
        return self._cache.hits

    @property
    def misses(self) -> int:
        """Global template-cache misses (compilations)."""
        return self._cache.misses

    @property
    def bypasses(self) -> int:
        """Queries planned directly because their shape is uncacheable."""
        return self._bypasses

    @property
    def evictions(self) -> int:
        """Templates dropped by the LRU bound (not by invalidation)."""
        return self._cache.evictions

    def __len__(self) -> int:
        """Number of currently cached templates (stale ones included)."""
        return len(self._cache)

    def local_counters(self) -> tuple[int, int]:
        """(hits, misses) attributed to the calling thread.

        The serving runtime snapshots these around a turn — turns hold
        the session's turn lock on the calling thread, so the delta is
        exactly the turn's cache traffic.
        """
        return (
            getattr(self._local, "hits", 0),
            getattr(self._local, "misses", 0),
        )

    def _count(self, hit: bool) -> None:
        if hit:
            self._local.hits = getattr(self._local, "hits", 0) + 1
        else:
            self._local.misses = getattr(self._local, "misses", 0) + 1

    # ------------------------------------------------------------------
    def plan(self, spec: QuerySpec) -> PlanNode:
        """The (bound, concrete) plan for ``spec`` — cached when possible."""
        fingerprint, params = fingerprint_spec(spec)
        if fingerprint is None:
            with self._bypass_lock:
                self._bypasses += 1
            return plan_query(self._database, spec, self._statistics)
        computed = False

        def compile_template() -> PlanNode:
            nonlocal computed
            computed = True
            # Only a miss pays for building the parameterised spec.
            shape, __ = parameterize_spec(spec)
            return plan_query(
                self._database, shape, self._statistics, params=params
            )

        template = self._cache.lookup(fingerprint, compile_template)
        self._count(hit=not computed)
        respec = self.respecialized(
            fingerprint, template, params, lambda: spec
        )
        if respec is not None:
            return respec
        try:
            return bind_plan(self._database, template, params)
        except _Unbindable:
            # These constants need a different plan shape (failed
            # coercion etc.); plan them directly, outside the cache.
            return plan_query(self._database, spec, self._statistics)

    def template_for(
        self, fingerprint: tuple, spec: QuerySpec, params: tuple
    ) -> tuple[PlanNode, bool]:
        """``(template, hit)`` for a *pre-fingerprinted* spec.

        The :class:`~repro.db.api.PreparedStatement` hot path: the
        statement computed ``fingerprint`` once at prepare time, so
        each execution is a version-stamped dict lookup — no per-call
        spec traversal.  Only a miss parameterises ``spec`` into the
        shape to compile (like :meth:`plan`); ``params`` are the
        execution's concrete constants, used to cost the template
        (classic generic-plan behaviour).
        """
        computed = False

        def compile_template() -> PlanNode:
            nonlocal computed
            computed = True
            shape, __ = parameterize_spec(spec)
            return plan_query(
                self._database, shape, self._statistics, params=params
            )

        template = self._cache.lookup(fingerprint, compile_template)
        self._count(hit=not computed)
        return template, not computed

    # ------------------------------------------------------------------
    # Re-specialisation
    # ------------------------------------------------------------------
    def respec_counters(self) -> dict[str, int]:
        """Divergences observed / executions replanned / templates
        forked / executions served by a forked template."""
        with self._respec_lock:
            return {
                "divergences": self._divergences,
                "replans": self._replans,
                "forks": self._forks,
                "fork_binds": self._fork_binds,
            }

    def respecialized(
        self, fingerprint: tuple, template: PlanNode, params: tuple,
        spec_factory,
    ) -> PlanNode | None:
        """A better plan for this binding, or ``None`` to use ``template``.

        Called on the execute path right after the template lookup.
        ``spec_factory`` must return the execution's *concrete* spec
        (constants bound) — only touched on meta rebuilds, replans and
        fork compiles, never on the no-divergence fast path, which is
        one dict probe, an identity check and a per-guard bucket lookup
        against the captured statistics.

        A divergent binding replans uncached until its bucket has
        diverged ``fork_threshold`` consecutive times, then compiles a
        bucket-specialised template priced with this binding's
        constants, stored in the shared version-stamped LRU store under
        ``(fingerprint, bucket)`` — DDL bumps and eviction invalidate
        forks exactly like parents.  Returned plans are fully bound.
        """
        if not self.respec_enabled or not params:
            return None
        meta = self._meta.get(fingerprint)
        if meta is None or meta.template is not template:
            meta = self._build_meta(template, spec_factory(), params)
            with self._respec_lock:
                if len(self._meta) >= DEFAULT_MAX_ENTRIES:
                    self._meta.clear()
                self._meta[fingerprint] = meta
        if not meta.guards:
            return None
        divergent = None
        for slot, __column, stats, planned_sel, __bucket in meta.guards:
            sel, bucket = stats.bucket_selectivity(params[slot])
            lo, hi = min(sel, planned_sel), max(sel, planned_sel)
            if lo <= 0.0:
                lo = 0.5 / max(1, stats.row_count)
            if hi > lo * self.divergence_ratio:
                divergent = (slot, bucket)
                break
            if meta.counts and (slot, bucket) in meta.counts:
                # The bucket came back into agreement (statistics moved
                # under the template): its fork countdown starts over.
                with self._respec_lock:
                    meta.counts.pop((slot, bucket), None)
        if divergent is None:
            return None
        with self._respec_lock:
            self._divergences += 1
            if divergent not in meta.counts and len(meta.counts) >= 64:
                meta.counts.clear()  # bounded per-bucket tracking
            count = meta.counts.get(divergent, 0) + 1
            meta.counts[divergent] = count
            fork = count >= self.fork_threshold
            if not fork:
                self._replans += 1
        if not fork:
            return plan_query(
                self._database, spec_factory(), self._statistics
            )
        computed = False

        def compile_fork() -> PlanNode:
            nonlocal computed
            computed = True
            shape, __ = parameterize_spec(spec_factory())
            return plan_query(
                self._database, shape, self._statistics, params=params
            )

        fork_template = self._cache.lookup(
            (fingerprint, ("bucket",) + divergent), compile_fork
        )
        with self._respec_lock:
            self._fork_binds += 1
            if computed:
                self._forks += 1
        try:
            return bind_plan(self._database, fork_template, params)
        except _Unbindable:
            return plan_query(
                self._database, spec_factory(), self._statistics
            )

    def _build_meta(
        self, template: PlanNode, spec: QuerySpec, params: tuple
    ) -> _RespecMeta:
        """Derive the guard set for one template from the spec it was
        compiled from and the constants it was priced with."""
        database = self._database
        catalog = (
            self._statistics if self._statistics is not None
            else database.statistics
        )
        columns = set(database.table(spec.table).schema.column_names)
        comparisons = list(_ordered_comparisons(spec.predicate))
        if spec.having is not None:
            comparisons.extend(_ordered_comparisons(spec.having))
        guards = []
        for slot, comparison in enumerate(comparisons):
            if comparison.op != "==" or comparison.column not in columns:
                continue
            if slot >= len(params):  # pragma: no cover - shape drift guard
                break
            try:
                stats = catalog.column(spec.table, comparison.column)
            except KeyError:
                continue
            if (
                stats.row_count < self.respec_min_rows
                or stats.distinct_count < 2
                or not stats.most_common
            ):
                continue
            sel, bucket = stats.bucket_selectivity(params[slot])
            guards.append((slot, comparison.column, stats, sel, bucket))
        return _RespecMeta(template, tuple(guards))

    def bind_or_replan(
        self, binder, params: tuple, spec_factory
    ) -> PlanNode:
        """Run a compiled :func:`compile_binder` closure, falling back to
        an uncached planning pass (via ``spec_factory``'s concrete spec)
        when a constant cannot be absorbed by the template — exactly
        :meth:`plan`'s unbindable fallback."""
        try:
            return binder(params)
        except _Unbindable:
            return plan_query(self._database, spec_factory(), self._statistics)

    def invalidate(self) -> None:
        """Drop every template (they also refresh lazily via the stamps)."""
        self._cache.invalidate()
