"""Physical plan nodes and the compiled query spec.

A plan is a tree of frozen dataclass nodes.  Leaves are access paths on
the root table (:class:`SeqScan`, :class:`IndexEq`, :class:`IndexRange`,
:class:`IndexInList`, :class:`IndexOrUnion`); unary nodes transform one
input (:class:`Filter`,
:class:`Sort`, :class:`TopN`, :class:`Project`, :class:`CountOnly`,
:class:`HashAggregate`); join nodes widen root rows with one joined
table per node (:class:`HashJoin`, :class:`IndexNestedLoopJoin`);
:class:`IndexAggScan` answers whole-table MIN/MAX/COUNT aggregates
straight from the indexes without visiting rows, and
:class:`IndexGroupedAggScan` does the same per group by walking a hash
index's buckets.  :class:`GroupSemiJoin` keeps aggregate output groups
whose key matches a row of another table — the shape the planner emits
when it pushes a grouped aggregate *below* a join.  Every node carries the
planner's row and cost estimates so EXPLAIN can show *why* a plan was
chosen.

Constants inside a plan may be :class:`Param` placeholders: the plan
cache compiles one *template* per query shape and binds the concrete
values of each execution into a fresh tree (see
:mod:`repro.db.engine.cache`), so equal-shape queries with different
constants share one planning pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.db.query import Predicate

__all__ = [
    "format_predicate",
    "Param",
    "AggExpr",
    "QuerySpec",
    "PlanNode",
    "SeqScan",
    "IndexEq",
    "IndexRange",
    "IndexInList",
    "IndexOrUnion",
    "Filter",
    "HashJoin",
    "IndexNestedLoopJoin",
    "GroupSemiJoin",
    "Sort",
    "TopN",
    "Project",
    "CountOnly",
    "HashAggregate",
    "IndexAggScan",
    "IndexGroupedAggScan",
]


@dataclass(frozen=True)
class Param:
    """A parameter slot standing in for one query constant.

    Plan templates carry these where the planner would otherwise embed
    the literal value; binding substitutes the execution's actual
    constants (coerced exactly as direct planning would have).
    """

    index: int

    def __repr__(self) -> str:
        return f"${self.index + 1}"


def format_predicate(predicate: "Predicate") -> str:
    """Compact SQL-ish rendering of a predicate tree for EXPLAIN."""
    from repro.db.query import And, Comparison, Not, Or, TruePredicate

    if isinstance(predicate, TruePredicate):
        return "true"
    if isinstance(predicate, Comparison):
        op = "=" if predicate.op == "==" else predicate.op
        return f"{predicate.column} {op} {predicate.value!r}"
    if isinstance(predicate, And):
        return "(" + " AND ".join(format_predicate(p) for p in predicate.parts) + ")"
    if isinstance(predicate, Or):
        return "(" + " OR ".join(format_predicate(p) for p in predicate.parts) + ")"
    if isinstance(predicate, Not):
        return f"NOT {format_predicate(predicate.part)}"
    return repr(predicate)


@dataclass(frozen=True)
class AggExpr:
    """One named aggregate the engine knows how to stream.

    ``kind`` is one of ``count`` (``column is None``), ``sum``, ``avg``,
    ``min``, ``max`` or ``count_distinct``.  Aggregates with custom
    reducers cannot be pushed down and stay on the materialise-then-
    reduce path in :mod:`repro.db.aggregation`.
    """

    name: str
    kind: str
    column: str | None = None

    def describe(self) -> str:
        arg = "*" if self.column is None else self.column
        return f"{self.name}={self.kind}({arg})"


@dataclass(frozen=True)
class QuerySpec:
    """The logical query compiled from the fluent :class:`~repro.db.query.Query`."""

    table: str
    predicate: "Predicate"
    joins: tuple[tuple[str, str, str], ...] = ()  # (column, table, target)
    projection: tuple[str, ...] | None = None
    order_by: str | None = None
    descending: bool = False
    limit: int | None = None
    count_only: bool = False
    # Aggregation pushdown: when ``aggregates`` is set the plan root is a
    # HashAggregate / IndexAggScan over the row-producing query above.
    aggregates: tuple[AggExpr, ...] | None = None
    group_by: tuple[str, ...] = ()
    # HAVING: a post-aggregate predicate over the aggregate output rows
    # (group keys + aggregate names); planned as a Filter above the
    # aggregation root.
    having: "Predicate | None" = None


@dataclass(frozen=True)
class PlanNode:
    """Base node: row/cost estimates plus the EXPLAIN surface."""

    estimated_rows: float = field(default=0.0, kw_only=True)
    cost: float = field(default=0.0, kw_only=True)

    def children(self) -> tuple["PlanNode", ...]:
        return ()

    def describe(self) -> str:
        return type(self).__name__


# ---------------------------------------------------------------------------
# Access paths (leaves)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SeqScan(PlanNode):
    table: str

    def describe(self) -> str:
        return f"SeqScan on {self.table}"


@dataclass(frozen=True)
class IndexEq(PlanNode):
    """Hash-index equality probe ``table.column == value``."""

    table: str
    column: str
    value: Any

    def describe(self) -> str:
        return f"IndexEq on {self.table} using {self.column} = {self.value!r}"


@dataclass(frozen=True)
class IndexRange(PlanNode):
    """Ordered-index range scan on ``table.column``.

    Open bounds are ``None``; with both bounds open this is a full
    in-order walk of the index (used to satisfy ORDER BY without a
    Sort).  ``sorted_output`` marks plans whose output order is the
    index order (value order); otherwise the executor re-sorts the
    matched ids into row-id order so results are identical to a scan.
    """

    table: str
    column: str
    low: Any = None
    high: Any = None
    low_inclusive: bool = True
    high_inclusive: bool = True
    sorted_output: bool = False
    descending: bool = False

    def describe(self) -> str:
        left = "(" if self.low is None or not self.low_inclusive else "["
        right = ")" if self.high is None or not self.high_inclusive else "]"
        low = "-inf" if self.low is None else repr(self.low)
        high = "+inf" if self.high is None else repr(self.high)
        order = ""
        if self.sorted_output:
            order = " order=desc" if self.descending else " order=asc"
        return (
            f"IndexRange on {self.table} using {self.column} "
            f"{left}{low}, {high}{right}{order}"
        )


@dataclass(frozen=True)
class IndexInList(PlanNode):
    """Union of hash-index equality probes for ``column IN (values)``.

    ``values`` is the tuple of probe constants (or one :class:`Param`
    slot holding the whole tuple in a plan template).  Matched row ids
    are deduplicated and re-sorted into row-id order, so output is
    identical to a SeqScan + Filter over the same predicate.
    """

    table: str
    column: str
    values: Any

    def describe(self) -> str:
        try:
            n = len(self.values)
        except TypeError:
            n = "?"
        return (
            f"IndexInList on {self.table} using {self.column} "
            f"IN ({n} values)"
        )


@dataclass(frozen=True)
class IndexOrUnion(PlanNode):
    """Union of hash-index equality probes for an OR of equalities.

    ``probes`` holds one ``(column, value)`` pair per disjunct of an
    ``or_(eq(a, x), eq(b, y))`` predicate — the columns may differ, which
    is what distinguishes this from :class:`IndexInList`.  Values may be
    :class:`Param` slots in a plan template.  Matched row ids are
    deduplicated and re-sorted into row-id order, and the planner always
    re-applies the Or predicate in a Filter above, so output is
    identical to a SeqScan + Filter over the same predicate.
    """

    table: str
    probes: tuple[tuple[str, Any], ...]

    def describe(self) -> str:
        parts = " OR ".join(f"{c} = {v!r}" for c, v in self.probes)
        return f"IndexOrUnion on {self.table} ({parts})"


# ---------------------------------------------------------------------------
# Unary operators
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Filter(PlanNode):
    child: PlanNode
    predicate: "Predicate"

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"Filter {format_predicate(self.predicate)}"


@dataclass(frozen=True)
class Sort(PlanNode):
    child: PlanNode
    column: str
    descending: bool = False

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        direction = "desc" if self.descending else "asc"
        return f"Sort by {self.column} {direction}"


@dataclass(frozen=True)
class TopN(PlanNode):
    """Bounded sort-and-limit; with ``column=None`` it is a plain LIMIT."""

    child: PlanNode
    n: int
    column: str | None = None
    descending: bool = False

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        if self.column is None:
            return f"Limit {self.n}"
        direction = "desc" if self.descending else "asc"
        return f"TopN {self.n} by {self.column} {direction}"


@dataclass(frozen=True)
class Project(PlanNode):
    child: PlanNode
    columns: tuple[str, ...]

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"Project [{', '.join(self.columns)}]"


@dataclass(frozen=True)
class CountOnly(PlanNode):
    """Count the child's rows without materialising or projecting them.

    ``limit`` caps the count (``Query.limit(n).count()`` historically
    counted the limited result).
    """

    child: PlanNode
    limit: int | None = None

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        cap = f" (cap {self.limit})" if self.limit is not None else ""
        return f"CountOnly{cap}"


# ---------------------------------------------------------------------------
# Joins
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class HashJoin(PlanNode):
    """Build a hash map over the joined table, probe with outer rows."""

    child: PlanNode
    table: str
    column: str          # outer join key (root/bare column name)
    target_column: str   # inner join key
    reordered: bool = field(default=False, kw_only=True)

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        note = " [reordered]" if self.reordered else ""
        return (
            f"HashJoin {self.table} on "
            f"{self.column} = {self.table}.{self.target_column} "
            f"(build inner){note}"
        )


@dataclass(frozen=True)
class IndexNestedLoopJoin(PlanNode):
    """Probe the joined table's hash index once per outer row."""

    child: PlanNode
    table: str
    column: str
    target_column: str
    reordered: bool = field(default=False, kw_only=True)

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        note = " [reordered]" if self.reordered else ""
        return (
            f"IndexNestedLoopJoin {self.table} on "
            f"{self.column} = {self.table}.{self.target_column}{note}"
        )


@dataclass(frozen=True)
class GroupSemiJoin(PlanNode):
    """Keep child rows whose ``column`` matches a row of ``table``.

    Emitted above an aggregation root when the planner pushes a grouped
    aggregate below a join: the join's only effect on the aggregate
    output was to drop groups without a partner (``target_column`` is
    unique, so matching groups are never duplicated), which this node
    replays with one index probe per *group* instead of one per row.
    """

    child: PlanNode
    table: str
    column: str          # group-key column of the child's output rows
    target_column: str   # unique join key in ``table``

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        return (
            f"GroupSemiJoin {self.table} on "
            f"{self.column} = {self.table}.{self.target_column}"
        )


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class HashAggregate(PlanNode):
    """Streaming group-hash aggregation over the child's row stream.

    One pass over the child iterator, nothing spilled, no row copied:
    the hot single-aggregate shapes keep per-group accumulators, wider
    aggregate lists bank row views per group and reduce them with
    C-level builtins.  Output groups appear in first-appearance order
    of their key, exactly like the materialise-then-reduce
    :func:`repro.db.aggregation.aggregate`.
    """

    child: PlanNode
    aggregates: tuple[AggExpr, ...]
    group_by: tuple[str, ...] = ()
    # Joins proven redundant (NOT NULL FK onto a unique key: every row
    # has exactly one partner) and dropped by the below-join pushdown;
    # kept for EXPLAIN so the rewrite is visible.
    elided_joins: tuple[tuple[str, str, str], ...] = field(
        default=(), kw_only=True
    )

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        aggs = ", ".join(a.describe() for a in self.aggregates)
        note = "".join(
            f" [join {table} elided by fk]"
            for __, table, __t in self.elided_joins
        )
        if self.group_by:
            return (
                f"HashAggregate [{aggs}] "
                f"group by [{', '.join(self.group_by)}]{note}"
            )
        return f"HashAggregate [{aggs}]{note}"


@dataclass(frozen=True)
class IndexAggScan(PlanNode):
    """Whole-table aggregates answered from indexes without visiting rows.

    MIN/MAX read the first/last entry of the column's ordered index
    (O(log n) maintenance, O(1) read), COUNT(*) is the table cardinality
    and COUNT(DISTINCT col) the hash-index bucket count.  Only eligible
    for unfiltered, unjoined, ungrouped, unlimited queries — anything
    else streams through :class:`HashAggregate`.
    """

    table: str
    aggregates: tuple[AggExpr, ...]
    elided_joins: tuple[tuple[str, str, str], ...] = field(
        default=(), kw_only=True
    )

    def describe(self) -> str:
        aggs = ", ".join(a.describe() for a in self.aggregates)
        note = "".join(
            f" [join {table} elided by fk]"
            for __, table, __t in self.elided_joins
        )
        return f"IndexAggScan on {self.table} [{aggs}]{note}"


@dataclass(frozen=True)
class IndexGroupedAggScan(PlanNode):
    """Whole-table single-key group-by answered from hash-index buckets.

    The key column's hash index already partitions the table into
    groups, so the executor walks ``value -> row ids`` buckets instead
    of re-hashing every row: COUNT(*) per group is the bucket size
    without visiting a single row, and the other builtin aggregates
    reduce each bucket's bank values columnwise.  Falls back to the
    streaming :class:`HashAggregate` behaviour at runtime when the key
    column holds NULLs (the index skips those rows, but NULL forms a
    group).  Only eligible for unfiltered, unlimited single-key
    group-bys — like :class:`IndexAggScan`, anything fancier streams.
    """

    table: str
    key: str
    aggregates: tuple[AggExpr, ...]
    elided_joins: tuple[tuple[str, str, str], ...] = field(
        default=(), kw_only=True
    )

    def describe(self) -> str:
        aggs = ", ".join(a.describe() for a in self.aggregates)
        note = "".join(
            f" [join {table} elided by fk]"
            for __, table, __t in self.elided_joins
        )
        return (
            f"IndexGroupedAggScan on {self.table} [{aggs}] "
            f"group by [{self.key}]{note}"
        )
