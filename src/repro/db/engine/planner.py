"""Cost-based planner: compile a :class:`QuerySpec` into a physical plan.

The planner is deliberately System-R-shaped for a single-root query:

1. split the predicate into AND parts and classify each part as
   *pushable* (mentions only root-table columns, so it can filter before
   the joins) or *residual* (mentions joined ``table.column`` keys or
   unknown columns — evaluated after the joins, preserving the seed
   query's error semantics for bad column names);
2. enumerate access paths over the pushable equality/range/IN/OR
   bindings — hash-index equality probes, IN-list probe unions, unions
   of index probes for disjunctions of indexable equalities, ordered-
   index range scans, and the sequential scan — cost each with the
   statistics catalog (row counts, most-common-value selectivities,
   min/max interpolation) and keep the cheapest;
3. pick a join strategy per join — an index nested-loop when the inner
   table has a hash index on the join key and the outer side is small,
   otherwise a build-side hash join; with more than two joins the join
   *order* is chosen greedily by estimated output cardinality (smallest
   intermediate result first) instead of the query-stated order,
   respecting joins that key on an earlier join's output columns;
4. satisfy ``ORDER BY`` from an ordered index when the access path
   already walks one (or can), else insert Sort/TopN; ``count()``
   queries terminate in a CountOnly node that skips sorting,
   projection and row materialisation entirely.
5. aggregate queries (``spec.aggregates``) wrap the row-producing plan
   in a streaming :class:`HashAggregate`; whole-table MIN/MAX/COUNT
   collapse to an :class:`IndexAggScan` that reads the answer straight
   from the ordered/hash indexes; a HAVING predicate (``spec.having``)
   becomes a Filter above the aggregation root, selecting on the
   aggregate output rows.

Every predicate part is re-applied as a Filter even when an index
pre-selected rows: index probes coerce values to the column type while
predicate evaluation compares raw values, so the index result is a
*superset* of the final answer and the filter keeps results identical
to the seed scan path.

When planning a cache *template* the spec's constants are
:class:`~repro.db.engine.plan.Param` slots and the planner receives the
first execution's actual values via ``params``: costing uses the actual
values, while the emitted nodes keep the slots so the compiled plan can
be re-bound to any constants (see :mod:`repro.db.engine.cache`).
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import TYPE_CHECKING, Any, Sequence

from repro.db.engine.plan import (
    AggExpr,
    CountOnly,
    Filter,
    GroupSemiJoin,
    HashAggregate,
    HashJoin,
    IndexAggScan,
    IndexEq,
    IndexGroupedAggScan,
    IndexInList,
    IndexNestedLoopJoin,
    IndexOrUnion,
    IndexRange,
    Param,
    PlanNode,
    Project,
    QuerySpec,
    SeqScan,
    Sort,
    TopN,
)
from repro.db.ordering import ordering_key
from repro.db.query import And, Comparison, Or, Predicate, TruePredicate, and_
from repro.db.types import TypeMismatchError, coerce

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.db.database import Database
    from repro.db.statistics import ColumnStatistics, StatisticsCatalog

__all__ = ["Planner", "plan_query"]

# Default selectivity guesses for predicates the statistics cannot price.
_SEL_CONTAINS = 0.25
_SEL_NE = 0.9
_SEL_DEFAULT = 0.5

# Join-order search only kicks in beyond this many joins; below it the
# stated order is kept (and is what the seed semantics tests pin down).
_REORDER_THRESHOLD = 2


def plan_query(
    database: "Database",
    spec: QuerySpec,
    statistics: "StatisticsCatalog | None" = None,
    params: Sequence[Any] | None = None,
) -> PlanNode:
    """Convenience wrapper: plan ``spec`` against ``database``."""
    return Planner(database, statistics, params=params).plan(spec)


class Planner:
    """Compiles query specs into costed physical plans."""

    def __init__(
        self,
        database: "Database",
        statistics: "StatisticsCatalog | None" = None,
        params: Sequence[Any] | None = None,
    ) -> None:
        self._database = database
        self._statistics = statistics if statistics is not None \
            else database.statistics
        self._params = params

    # ------------------------------------------------------------------
    def _resolve(self, value: Any) -> Any:
        """The concrete constant behind ``value`` (Param slots resolve
        to the template-compilation execution's actual parameter)."""
        if isinstance(value, Param):
            if self._params is None:  # pragma: no cover - cache guards this
                raise ValueError("parameterised spec planned without params")
            return self._params[value.index]
        return value

    # ------------------------------------------------------------------
    def plan(self, spec: QuerySpec) -> PlanNode:
        if spec.aggregates is not None:
            return self._plan_aggregate(spec)
        return self._plan_rows(spec)

    def _plan_rows(self, spec: QuerySpec) -> PlanNode:
        table = self._database.table(spec.table)
        root_columns = set(table.schema.column_names)
        parts = _and_parts(spec.predicate)
        pushable = [p for p in parts if p.columns() <= root_columns]
        residual = [p for p in parts if not (p.columns() <= root_columns)]

        node = self._access_path(spec, table, pushable)
        sorted_by_index = (
            isinstance(node, IndexRange) and node.sorted_output
        )
        if pushable:
            if node.estimated_rows <= 1.0:
                # A unique probe: the residual filter cannot shrink the
                # estimate in any way that would change later decisions,
                # so skip the per-part statistics pricing.
                est = node.estimated_rows
            else:
                selectivity = self._filter_selectivity(spec.table, pushable)
                est = min(node.estimated_rows, len(table) * selectivity)
            node = Filter(
                child=node,
                predicate=and_(*pushable),
                estimated_rows=est,
                cost=node.cost + node.estimated_rows,
            )

        for column, join_table, target_column, reordered in \
                self._join_order(spec, node):
            node = self._join(node, column, join_table, target_column,
                              reordered=reordered)

        if residual:
            node = Filter(
                child=node,
                predicate=and_(*residual),
                estimated_rows=node.estimated_rows * _SEL_DEFAULT,
                cost=node.cost + node.estimated_rows,
            )

        if spec.count_only:
            return CountOnly(
                child=node,
                limit=spec.limit,
                estimated_rows=1,
                cost=node.cost,
            )

        node = self._order_and_limit(spec, node, sorted_by_index)

        if spec.projection is not None:
            node = Project(
                child=node,
                columns=tuple(spec.projection),
                estimated_rows=node.estimated_rows,
                cost=node.cost + node.estimated_rows,
            )
        return node

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def _plan_aggregate(self, spec: QuerySpec) -> PlanNode:
        assert spec.aggregates is not None
        spec, semis, elided = self._push_aggregate_below_joins(spec)
        root = self._aggregate_root(spec, elided)
        for column, join_table, target_column in semis:
            # One unique-index probe per surviving *group* replaces the
            # per-row join the pushdown removed.
            root = GroupSemiJoin(
                child=root,
                table=join_table,
                column=column,
                target_column=target_column,
                estimated_rows=max(1.0, root.estimated_rows * 0.9),
                cost=root.cost + root.estimated_rows * 2.0,
            )
        return self._having_filter(spec, root)

    def _aggregate_root(
        self,
        spec: QuerySpec,
        elided: tuple[tuple[str, str, str], ...],
    ) -> PlanNode:
        assert spec.aggregates is not None
        if self._index_agg_eligible(spec):
            return IndexAggScan(
                table=spec.table,
                aggregates=spec.aggregates,
                elided_joins=elided,
                estimated_rows=1.0,
                # One index read per aggregate; the log term is the
                # ordered-index descent the maintenance already paid.
                cost=2.0 * len(spec.aggregates),
            )
        if self._index_grouped_agg_eligible(spec):
            table = self._database.table(spec.table)
            est = self._group_count_estimate(spec, float(len(table)))
            # Bucket iteration skips the group-hash pass; count-only
            # aggregates never visit a row, value aggregates still read
            # each group's bank values once.
            per_group = sum(
                1.0 if a.kind == "count" else len(table) / est
                for a in spec.aggregates
            )
            return IndexGroupedAggScan(
                table=spec.table,
                key=spec.group_by[0],
                aggregates=spec.aggregates,
                elided_joins=elided,
                estimated_rows=est,
                cost=est * (1.0 + per_group),
            )
        child = self._plan_rows(
            replace(spec, aggregates=None, group_by=(), having=None)
        )
        if spec.group_by:
            est = self._group_count_estimate(spec, child.estimated_rows)
        else:
            est = 1.0
        return HashAggregate(
            child=child,
            aggregates=spec.aggregates,
            group_by=spec.group_by,
            elided_joins=elided,
            estimated_rows=est,
            cost=child.cost + child.estimated_rows,
        )

    def _push_aggregate_below_joins(
        self, spec: QuerySpec
    ) -> tuple[
        QuerySpec,
        list[tuple[str, str, str]],
        tuple[tuple[str, str, str], ...],
    ]:
        """Drop joins that cannot change the aggregate's output.

        Returns ``(rewritten spec, semi joins, elided joins)``.  The
        rewrite fires only when the whole aggregate — group keys,
        aggregate inputs and every predicate part — reads the root
        table alone, so the joins' sole contribution is row
        multiplicity and dropping unmatched rows.  Two proofs remove
        them:

        * **elision** — the join key carries a NOT NULL foreign key
          onto exactly the joined column (which FK validation requires
          to be unique): every root row has exactly one partner, so the
          join neither duplicates nor drops anything;
        * **semi join** — the join key is itself a group key and the
          target is unique: matches cannot duplicate rows (fanout ≤ 1)
          and all rows of a group share the key, so the join's only
          effect is dropping whole groups — reproduced *after*
          aggregation with one index probe per group
          (:class:`GroupSemiJoin`).

        Any join that fits neither proof keeps the original
        aggregate-over-join plan (no partial rewrite: join order would
        otherwise change which rows later joins see).
        """
        no_push = (spec, [], ())
        if not spec.joins or spec.aggregates is None:
            return no_push
        if (
            spec.projection is not None
            or spec.order_by is not None
            or spec.limit is not None
            or spec.count_only
        ):
            return no_push
        schema = self._database.table(spec.table).schema
        root_columns = set(schema.column_names)
        for part in _and_parts(spec.predicate):
            if not (part.columns() <= root_columns):
                return no_push
        if any(key not in root_columns for key in spec.group_by):
            return no_push
        if any(
            agg.column is not None and "." in agg.column
            for agg in spec.aggregates
        ):
            return no_push
        semis: list[tuple[str, str, str]] = []
        elided: list[tuple[str, str, str]] = []
        for column, join_table, target_column in spec.joins:
            if column not in root_columns:
                return no_push
            fk = schema.foreign_key_for(column)
            col = schema.column(column)
            not_null = not col.nullable or column == schema.primary_key
            if (
                fk is not None
                and fk.target_table == join_table
                and fk.target_column == target_column
                and not_null
            ):
                # Referential integrity (checked on every write) makes
                # the fanout exactly one: the join is a no-op here.
                elided.append((column, join_table, target_column))
                continue
            if column in spec.group_by and _is_unique_column(
                self._database.table(join_table), target_column
            ):
                semis.append((column, join_table, target_column))
                continue
            return no_push
        return replace(spec, joins=()), semis, tuple(elided)

    def _index_grouped_agg_eligible(self, spec: QuerySpec) -> bool:
        """True when a whole-table single-key group-by can walk the
        group key's hash-index buckets instead of scanning."""
        if len(spec.group_by) != 1 or spec.joins \
                or spec.limit is not None or spec.order_by is not None \
                or spec.projection is not None or spec.count_only:
            return False
        if _and_parts(spec.predicate):
            return False
        return self._database.table(spec.table).has_index(spec.group_by[0])

    def _having_filter(self, spec: QuerySpec, root: PlanNode) -> PlanNode:
        """Wrap the aggregation root in the post-aggregate HAVING filter.

        The predicate sees the aggregate output rows (group keys plus
        aggregate names), so it can select on aggregate results the way
        SQL's HAVING does.
        """
        if spec.having is None or isinstance(spec.having, TruePredicate):
            return root
        return Filter(
            child=root,
            predicate=spec.having,
            estimated_rows=root.estimated_rows * _SEL_DEFAULT,
            cost=root.cost + root.estimated_rows,
        )

    def _index_agg_eligible(self, spec: QuerySpec) -> bool:
        """True when every aggregate is answerable from indexes alone.

        Requires a bare query — any predicate, join, limit, projection
        or grouping changes which rows aggregate and forces the
        streaming path.
        """
        if spec.group_by or spec.joins or spec.limit is not None \
                or spec.projection is not None:
            return False
        if _and_parts(spec.predicate):
            return False
        table = self._database.table(spec.table)
        for agg in spec.aggregates or ():
            if agg.kind == "count" and agg.column is None:
                continue
            if agg.column is None:
                return False
            if agg.kind in ("min", "max"):
                if not table.has_ordered_index(agg.column):
                    return False
            elif agg.kind == "count_distinct":
                if not table.has_index(agg.column):
                    return False
            else:  # sum/avg must see every value
                return False
        return True

    def _group_count_estimate(
        self, spec: QuerySpec, input_rows: float
    ) -> float:
        """Expected group count: distinct-count product capped by input."""
        distinct = 1.0
        for column in spec.group_by:
            stats = self._column_stats(spec.table, column)
            if stats is not None and stats.distinct_count > 0:
                distinct *= stats.distinct_count
            else:
                distinct *= max(1.0, input_rows * 0.1)
        return max(1.0, min(distinct, input_rows))

    # ------------------------------------------------------------------
    # Access-path selection
    # ------------------------------------------------------------------
    def _access_path(
        self, spec: QuerySpec, table, pushable: list[Predicate]
    ) -> PlanNode:
        n_rows = len(table)
        equalities = _equality_bindings(pushable)
        # Fast path: an equality probe on a unique (or primary-key)
        # hash index matches at most one row — no plan can beat it and
        # no statistics are needed to know that.  This keeps point
        # lookups, the OLTP hot path, nearly planning-free.
        for column, value in equalities.items():
            if not table.has_index(column):
                continue
            if not _is_unique_column(table, column):
                continue
            if self._coerced(table, column, value) is _UNUSABLE:
                continue
            return IndexEq(
                table=spec.table, column=column, value=value,
                estimated_rows=1.0, cost=2.0,
            )
        candidates: list[PlanNode] = [
            SeqScan(table=spec.table, estimated_rows=n_rows, cost=n_rows + 1.0)
        ]
        for column, value in equalities.items():
            if not table.has_index(column):
                continue
            coerced = self._coerced(table, column, value)
            if coerced is _UNUSABLE:
                continue
            est = n_rows * self._eq_selectivity(spec.table, column, coerced)
            candidates.append(
                IndexEq(
                    table=spec.table,
                    column=column,
                    value=value,
                    estimated_rows=est,
                    cost=1.0 + est,
                )
            )
        for column, values in _in_list_bindings(pushable).items():
            if not table.has_index(column):
                continue
            probes = self._coerced_in_list(table, column, values)
            if probes is _UNUSABLE:
                continue
            per_value = self._eq_selectivity_many(spec.table, column, probes)
            est = n_rows * min(1.0, per_value)
            candidates.append(
                IndexInList(
                    table=spec.table,
                    column=column,
                    values=values,
                    estimated_rows=est,
                    # One probe per list element, the matched rows, and
                    # a small re-sort term for the row-id merge.
                    cost=1.0 + len(probes) + 1.2 * est,
                )
            )
        for part in pushable:
            probes = self._or_probes(table, part)
            if probes is None:
                continue
            per_probe = sum(
                self._eq_selectivity(spec.table, column, coerced)
                for column, __, coerced in probes
            )
            est = n_rows * min(1.0, per_probe)
            candidates.append(
                IndexOrUnion(
                    table=spec.table,
                    probes=tuple((c, v) for c, v, __ in probes),
                    estimated_rows=est,
                    # One probe per disjunct, the matched rows, and a
                    # small re-sort term for the row-id merge (the Or
                    # predicate is re-checked by the Filter above).
                    cost=1.0 + len(probes) + 1.2 * est,
                )
            )
        for column, bounds in _range_bindings(pushable).items():
            if not table.has_ordered_index(column):
                continue
            low, low_coerced, low_inc, high, high_coerced, high_inc = \
                self._coerced_bounds(table, column, bounds)
            if low is _UNUSABLE or high is _UNUSABLE:
                continue
            est = n_rows * self._range_selectivity(
                spec.table, column, low_coerced, high_coerced
            )
            sorted_output = spec.order_by == column and not spec.count_only
            candidates.append(
                IndexRange(
                    table=spec.table,
                    column=column,
                    low=low,
                    high=high,
                    low_inclusive=low_inc,
                    high_inclusive=high_inc,
                    sorted_output=sorted_output,
                    descending=spec.descending and sorted_output,
                    estimated_rows=est,
                    # log-height descent plus the matched range; a small
                    # constant keeps a full-range scan pricier than SeqScan.
                    cost=4.0 + est + (0.1 * est if not sorted_output else 0.0),
                )
            )
        best = min(candidates, key=lambda c: c.cost)
        if (
            isinstance(best, SeqScan)
            and spec.order_by is not None
            and not spec.count_only
            and table.has_ordered_index(spec.order_by)
        ):
            # No filtering index won: walk the order-by index instead of
            # scanning and sorting.  NULL ordering is handled by the
            # executor (index entries exclude NULLs).
            return IndexRange(
                table=spec.table,
                column=spec.order_by,
                sorted_output=True,
                descending=spec.descending,
                estimated_rows=n_rows,
                cost=n_rows + 1.0,
            )
        return best

    def _or_probes(
        self, table, part: Predicate
    ) -> list[tuple[str, Any, Any]] | None:
        """``(column, emitted value, coerced value)`` per disjunct of an
        indexable OR, or ``None`` when the disjunction cannot become a
        probe union.

        Every disjunct must be an equality on a hash-indexed column
        whose constant coerces to the column type — one unindexable (or
        uncoercible) disjunct would make the union miss rows the Or
        predicate matches, so such queries keep the SeqScan + Filter
        plan.  The emitted value keeps a Param slot when parameterised
        (binding re-coerces); probing coerces exactly like IndexEq.
        """
        if not isinstance(part, Or):
            return None
        probes: list[tuple[str, Any, Any]] = []
        for disjunct in part.parts:
            if not isinstance(disjunct, Comparison) or disjunct.op != "==":
                return None
            if not table.has_index(disjunct.column):
                return None
            coerced = self._coerced(table, disjunct.column, disjunct.value)
            if coerced is _UNUSABLE:
                return None
            probes.append((disjunct.column, disjunct.value, coerced))
        return probes

    # ------------------------------------------------------------------
    # Joins
    # ------------------------------------------------------------------
    def _join_order(
        self, spec: QuerySpec, access: PlanNode
    ) -> list[tuple[str, str, str, bool]]:
        """The join sequence to execute, tagged with reorder markers.

        Up to two joins keep the query-stated order (which is also the
        order the seed semantics emit rows in).  Beyond that the order
        is chosen greedily: at each step take the not-yet-applied join
        with the smallest estimated output cardinality whose key column
        is available — either a root column or an earlier join's
        ``table.column`` output.
        """
        stated = list(spec.joins)
        if len(stated) <= _REORDER_THRESHOLD:
            return [(c, t, tc, False) for c, t, tc in stated]
        ordered: list[tuple[str, str, str, bool]] = []
        remaining = stated[:]
        est = max(access.estimated_rows, 1.0)
        while remaining:
            best_i = None
            best_est = math.inf
            for i, (column, join_table, target_column) in enumerate(remaining):
                if self._depends_on_pending(column, remaining, i):
                    continue
                fanout = self._matches_per_key(join_table, target_column)
                candidate_est = est * fanout
                if candidate_est < best_est:
                    best_i, best_est = i, candidate_est
            if best_i is None:
                # A dependency cycle (or a key on a never-joined table):
                # fall back to the stated order for what's left.
                ordered.extend(
                    (c, t, tc, False) for c, t, tc in remaining
                )
                break
            column, join_table, target_column = remaining.pop(best_i)
            reordered = stated[len(ordered)][1] != join_table
            ordered.append((column, join_table, target_column, reordered))
            est = max(best_est, 1.0)
        return ordered

    @staticmethod
    def _depends_on_pending(
        column: str, remaining: list[tuple[str, str, str]], skip: int
    ) -> bool:
        """Does the join key reference a table that has not joined yet?"""
        return any(
            column.startswith(f"{table}.")
            for i, (__, table, __tc) in enumerate(remaining)
            if i != skip
        )

    def _join(
        self, outer: PlanNode, column: str, join_table: str,
        target_column: str, reordered: bool = False,
    ) -> PlanNode:
        inner = self._database.table(join_table)
        inner_rows = len(inner)
        outer_est = max(outer.estimated_rows, 1.0)
        matches_per_probe = self._matches_per_key(join_table, target_column)
        est = outer_est * matches_per_probe
        hash_cost = outer.cost + inner_rows + outer_est + est
        if inner.has_index(target_column):
            inlj_cost = outer.cost + outer_est * (1.0 + matches_per_probe)
            if inlj_cost <= hash_cost:
                return IndexNestedLoopJoin(
                    child=outer,
                    table=join_table,
                    column=column,
                    target_column=target_column,
                    estimated_rows=est,
                    cost=inlj_cost,
                    reordered=reordered,
                )
        return HashJoin(
            child=outer,
            table=join_table,
            column=column,
            target_column=target_column,
            estimated_rows=est,
            cost=hash_cost,
            reordered=reordered,
        )

    # ------------------------------------------------------------------
    # Order / limit
    # ------------------------------------------------------------------
    def _order_and_limit(
        self, spec: QuerySpec, node: PlanNode, sorted_by_index: bool
    ) -> PlanNode:
        needs_sort = spec.order_by is not None and not sorted_by_index
        if needs_sort and spec.limit is not None:
            return TopN(
                child=node,
                n=spec.limit,
                column=spec.order_by,
                descending=spec.descending,
                estimated_rows=min(node.estimated_rows, spec.limit),
                cost=node.cost + node.estimated_rows,
            )
        if needs_sort:
            n = max(node.estimated_rows, 1.0)
            return Sort(
                child=node,
                column=spec.order_by,
                descending=spec.descending,
                estimated_rows=node.estimated_rows,
                cost=node.cost + n * math.log2(n + 1),
            )
        if spec.limit is not None:
            return TopN(
                child=node,
                n=spec.limit,
                column=None,
                estimated_rows=min(node.estimated_rows, spec.limit),
                cost=node.cost + min(node.estimated_rows, spec.limit),
            )
        return node

    # ------------------------------------------------------------------
    # Statistics helpers
    # ------------------------------------------------------------------
    def _column_stats(
        self, table: str, column: str
    ) -> "ColumnStatistics | None":
        try:
            return self._statistics.column(table, column)
        except KeyError:  # pragma: no cover - schema/statistics drift
            return None

    def _eq_selectivity(self, table: str, column: str, value: Any) -> float:
        stats = self._column_stats(table, column)
        if stats is None:
            return _SEL_DEFAULT
        return stats.selectivity(value)

    def _eq_selectivity_many(
        self, table: str, column: str, values: tuple
    ) -> float:
        stats = self._column_stats(table, column)
        if stats is None:
            return len(values) * _SEL_DEFAULT / 4
        return sum(stats.selectivity(v) for v in values)

    def _range_selectivity(
        self, table: str, column: str, low: Any, high: Any
    ) -> float:
        stats = self._column_stats(table, column)
        if stats is None:
            return (1 / 3) ** ((low is not None) + (high is not None))
        return stats.range_selectivity(low, high)

    def _matches_per_key(self, table: str, column: str) -> float:
        return self._statistics.matches_per_key(table, column)

    def _filter_selectivity(
        self, table: str, parts: list[Predicate]
    ) -> float:
        selectivity = 1.0
        for part in parts:
            selectivity *= self._part_selectivity(table, part)
        return selectivity

    def _part_selectivity(self, table: str, part: Predicate) -> float:
        if isinstance(part, Comparison):
            value = self._resolve(part.value)
            if part.op == "==":
                return self._eq_selectivity(table, part.column, value)
            if part.op in ("<", "<="):
                return self._range_selectivity(
                    table, part.column, None, value
                )
            if part.op in (">", ">="):
                return self._range_selectivity(
                    table, part.column, value, None
                )
            if part.op == "!=":
                return _SEL_NE
            if part.op == "contains":
                return _SEL_CONTAINS
            if part.op == "in":
                try:
                    n = len(value)
                except TypeError:
                    n = 1
                stats = self._column_stats(table, part.column)
                per_value = (
                    stats.average_selectivity if stats is not None
                    else _SEL_DEFAULT / 4
                )
                return min(1.0, n * per_value)
        return _SEL_DEFAULT

    # ------------------------------------------------------------------
    # Value coercion for index bounds
    # ------------------------------------------------------------------
    def _coerced(self, table, column: str, value: Any) -> Any:
        try:
            return coerce(self._resolve(value), table.schema.column(column).dtype)
        except TypeMismatchError:
            return _UNUSABLE

    def _coerced_in_list(self, table, column: str, values: Any) -> Any:
        """All IN-list elements coerced, or ``_UNUSABLE``.

        A single element that cannot coerce to the column type disables
        the probe union for this query (the SeqScan + Filter fallback
        keeps the seed comparison semantics for such lists).  A plain
        string is *not* a list of probes: ``value in "room A"`` is a
        substring test, which only the filter can evaluate.
        """
        resolved = self._resolve(values)
        if isinstance(resolved, (str, bytes)):
            return _UNUSABLE
        try:
            elements = tuple(resolved)
        except TypeError:
            return _UNUSABLE
        coerced = []
        for element in elements:
            value = self._coerced(table, column, element)
            if value is _UNUSABLE or value is None:
                return _UNUSABLE
            coerced.append(value)
        return tuple(coerced)

    def _coerced_bounds(
        self, table, column: str, bounds: list[tuple[str, Any]]
    ) -> tuple[Any, Any, bool, Any, Any, bool]:
        """Fold op/value pairs into emitted + coerced range bounds.

        Returns ``(low, low_coerced, low_inc, high, high_coerced,
        high_inc)`` where the emitted ``low``/``high`` keep a Param slot
        when the winning bound is parameterised (binding re-coerces) and
        are the coerced constant otherwise.
        """
        low: Any = None
        low_coerced: Any = None
        low_inc = True
        high: Any = None
        high_coerced: Any = None
        high_inc = True
        for op, value in bounds:
            coerced = self._coerced(table, column, value)
            if coerced is _UNUSABLE or coerced is None:
                return _UNUSABLE, None, True, _UNUSABLE, None, True
            emitted = value if isinstance(value, Param) else coerced
            key = ordering_key(coerced)
            if op in (">", ">="):
                if low is None or key > ordering_key(low_coerced) or (
                    key == ordering_key(low_coerced) and op == ">"
                ):
                    low, low_coerced, low_inc = emitted, coerced, op == ">="
            else:  # "<", "<="
                if high is None or key < ordering_key(high_coerced) or (
                    key == ordering_key(high_coerced) and op == "<"
                ):
                    high, high_coerced, high_inc = emitted, coerced, op == "<="
        return low, low_coerced, low_inc, high, high_coerced, high_inc


def _is_unique_column(table, column: str) -> bool:
    if column == table.schema.primary_key:
        return True
    return table.schema.column(column).unique


class _Unusable:
    """Sentinel: a binding value that cannot serve as an index probe."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<unusable>"


_UNUSABLE = _Unusable()


# ---------------------------------------------------------------------------
# Predicate decomposition
# ---------------------------------------------------------------------------

def _and_parts(predicate: Predicate) -> list[Predicate]:
    """Top-level AND-ed parts (TruePredicate contributes nothing)."""
    if isinstance(predicate, TruePredicate):
        return []
    if isinstance(predicate, And):
        out: list[Predicate] = []
        for part in predicate.parts:
            out.extend(_and_parts(part))
        return out
    return [predicate]


def _equality_bindings(parts: list[Predicate]) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for part in parts:
        if isinstance(part, Comparison) and part.op == "==":
            out[part.column] = part.value
    return out


def _in_list_bindings(parts: list[Predicate]) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for part in parts:
        if isinstance(part, Comparison) and part.op == "in":
            out[part.column] = part.value
    return out


def _range_bindings(parts: list[Predicate]) -> dict[str, list[tuple[str, Any]]]:
    out: dict[str, list[tuple[str, Any]]] = {}
    for part in parts:
        if isinstance(part, Comparison) and part.op in ("<", "<=", ">", ">="):
            out.setdefault(part.column, []).append((part.op, part.value))
    return out
