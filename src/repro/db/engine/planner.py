"""Cost-based planner: compile a :class:`QuerySpec` into a physical plan.

The planner is deliberately System-R-shaped for a single-root query:

1. split the predicate into AND parts and classify each part as
   *pushable* (mentions only root-table columns, so it can filter before
   the joins) or *residual* (mentions joined ``table.column`` keys or
   unknown columns — evaluated after the joins, preserving the seed
   query's error semantics for bad column names);
2. enumerate access paths over the pushable equality/range bindings —
   hash-index equality probes, ordered-index range scans, and the
   sequential scan — cost each with the statistics catalog (row counts,
   most-common-value selectivities, min/max interpolation) and keep the
   cheapest;
3. pick a join strategy per join — an index nested-loop when the inner
   table has a hash index on the join key and the outer side is small,
   otherwise a build-side hash join;
4. satisfy ``ORDER BY`` from an ordered index when the access path
   already walks one (or can), else insert Sort/TopN; ``count()``
   queries terminate in a CountOnly node that skips sorting,
   projection and row materialisation entirely.

Every predicate part is re-applied as a Filter even when an index
pre-selected rows: index probes coerce values to the column type while
predicate evaluation compares raw values, so the index result is a
*superset* of the final answer and the filter keeps results identical
to the seed scan path.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any

from repro.db.engine.plan import (
    CountOnly,
    Filter,
    HashJoin,
    IndexEq,
    IndexNestedLoopJoin,
    IndexRange,
    PlanNode,
    Project,
    QuerySpec,
    SeqScan,
    Sort,
    TopN,
)
from repro.db.ordering import ordering_key
from repro.db.query import And, Comparison, Predicate, TruePredicate, and_
from repro.db.types import TypeMismatchError, coerce

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.db.database import Database
    from repro.db.statistics import ColumnStatistics, StatisticsCatalog

__all__ = ["Planner", "plan_query"]

# Default selectivity guesses for predicates the statistics cannot price.
_SEL_CONTAINS = 0.25
_SEL_NE = 0.9
_SEL_DEFAULT = 0.5


def plan_query(
    database: "Database",
    spec: QuerySpec,
    statistics: "StatisticsCatalog | None" = None,
) -> PlanNode:
    """Convenience wrapper: plan ``spec`` against ``database``."""
    return Planner(database, statistics).plan(spec)


class Planner:
    """Compiles query specs into costed physical plans."""

    def __init__(
        self,
        database: "Database",
        statistics: "StatisticsCatalog | None" = None,
    ) -> None:
        self._database = database
        self._statistics = statistics if statistics is not None \
            else database.statistics

    # ------------------------------------------------------------------
    def plan(self, spec: QuerySpec) -> PlanNode:
        table = self._database.table(spec.table)
        root_columns = set(table.schema.column_names)
        parts = _and_parts(spec.predicate)
        pushable = [p for p in parts if p.columns() <= root_columns]
        residual = [p for p in parts if not (p.columns() <= root_columns)]

        node = self._access_path(spec, table, pushable)
        sorted_by_index = (
            isinstance(node, IndexRange) and node.sorted_output
        )
        if pushable:
            if node.estimated_rows <= 1.0:
                # A unique probe: the residual filter cannot shrink the
                # estimate in any way that would change later decisions,
                # so skip the per-part statistics pricing.
                est = node.estimated_rows
            else:
                selectivity = self._filter_selectivity(spec.table, pushable)
                est = min(node.estimated_rows, len(table) * selectivity)
            node = Filter(
                child=node,
                predicate=and_(*pushable),
                estimated_rows=est,
                cost=node.cost + node.estimated_rows,
            )

        for column, join_table, target_column in spec.joins:
            node = self._join(node, column, join_table, target_column)

        if residual:
            node = Filter(
                child=node,
                predicate=and_(*residual),
                estimated_rows=node.estimated_rows * _SEL_DEFAULT,
                cost=node.cost + node.estimated_rows,
            )

        if spec.count_only:
            return CountOnly(
                child=node,
                limit=spec.limit,
                estimated_rows=1,
                cost=node.cost,
            )

        node = self._order_and_limit(spec, node, sorted_by_index)

        if spec.projection is not None:
            node = Project(
                child=node,
                columns=tuple(spec.projection),
                estimated_rows=node.estimated_rows,
                cost=node.cost + node.estimated_rows,
            )
        return node

    # ------------------------------------------------------------------
    # Access-path selection
    # ------------------------------------------------------------------
    def _access_path(
        self, spec: QuerySpec, table, pushable: list[Predicate]
    ) -> PlanNode:
        n_rows = len(table)
        equalities = _equality_bindings(pushable)
        # Fast path: an equality probe on a unique (or primary-key)
        # hash index matches at most one row — no plan can beat it and
        # no statistics are needed to know that.  This keeps point
        # lookups, the OLTP hot path, nearly planning-free.
        for column, value in equalities.items():
            if not table.has_index(column):
                continue
            if not _is_unique_column(table, column):
                continue
            if self._coerced(table, column, value) is _UNUSABLE:
                continue
            return IndexEq(
                table=spec.table, column=column, value=value,
                estimated_rows=1.0, cost=2.0,
            )
        candidates: list[PlanNode] = [
            SeqScan(table=spec.table, estimated_rows=n_rows, cost=n_rows + 1.0)
        ]
        for column, value in equalities.items():
            if not table.has_index(column):
                continue
            coerced = self._coerced(table, column, value)
            if coerced is _UNUSABLE:
                continue
            est = n_rows * self._eq_selectivity(spec.table, column, coerced)
            candidates.append(
                IndexEq(
                    table=spec.table,
                    column=column,
                    value=value,
                    estimated_rows=est,
                    cost=1.0 + est,
                )
            )
        for column, bounds in _range_bindings(pushable).items():
            if not table.has_ordered_index(column):
                continue
            low, low_inc, high, high_inc = self._coerced_bounds(
                table, column, bounds
            )
            if low is _UNUSABLE or high is _UNUSABLE:
                continue
            est = n_rows * self._range_selectivity(
                spec.table, column, low, high
            )
            sorted_output = spec.order_by == column and not spec.count_only
            candidates.append(
                IndexRange(
                    table=spec.table,
                    column=column,
                    low=low,
                    high=high,
                    low_inclusive=low_inc,
                    high_inclusive=high_inc,
                    sorted_output=sorted_output,
                    descending=spec.descending and sorted_output,
                    estimated_rows=est,
                    # log-height descent plus the matched range; a small
                    # constant keeps a full-range scan pricier than SeqScan.
                    cost=4.0 + est + (0.1 * est if not sorted_output else 0.0),
                )
            )
        best = min(candidates, key=lambda c: c.cost)
        if (
            isinstance(best, SeqScan)
            and spec.order_by is not None
            and not spec.count_only
            and table.has_ordered_index(spec.order_by)
        ):
            # No filtering index won: walk the order-by index instead of
            # scanning and sorting.  NULL ordering is handled by the
            # executor (index entries exclude NULLs).
            return IndexRange(
                table=spec.table,
                column=spec.order_by,
                sorted_output=True,
                descending=spec.descending,
                estimated_rows=n_rows,
                cost=n_rows + 1.0,
            )
        return best

    # ------------------------------------------------------------------
    # Joins
    # ------------------------------------------------------------------
    def _join(
        self, outer: PlanNode, column: str, join_table: str, target_column: str
    ) -> PlanNode:
        inner = self._database.table(join_table)
        inner_rows = len(inner)
        outer_est = max(outer.estimated_rows, 1.0)
        matches_per_probe = self._matches_per_key(join_table, target_column)
        est = outer_est * matches_per_probe
        hash_cost = outer.cost + inner_rows + outer_est + est
        if inner.has_index(target_column):
            inlj_cost = outer.cost + outer_est * (1.0 + matches_per_probe)
            if inlj_cost <= hash_cost:
                return IndexNestedLoopJoin(
                    child=outer,
                    table=join_table,
                    column=column,
                    target_column=target_column,
                    estimated_rows=est,
                    cost=inlj_cost,
                )
        return HashJoin(
            child=outer,
            table=join_table,
            column=column,
            target_column=target_column,
            estimated_rows=est,
            cost=hash_cost,
        )

    # ------------------------------------------------------------------
    # Order / limit
    # ------------------------------------------------------------------
    def _order_and_limit(
        self, spec: QuerySpec, node: PlanNode, sorted_by_index: bool
    ) -> PlanNode:
        needs_sort = spec.order_by is not None and not sorted_by_index
        if needs_sort and spec.limit is not None:
            return TopN(
                child=node,
                n=spec.limit,
                column=spec.order_by,
                descending=spec.descending,
                estimated_rows=min(node.estimated_rows, spec.limit),
                cost=node.cost + node.estimated_rows,
            )
        if needs_sort:
            n = max(node.estimated_rows, 1.0)
            return Sort(
                child=node,
                column=spec.order_by,
                descending=spec.descending,
                estimated_rows=node.estimated_rows,
                cost=node.cost + n * math.log2(n + 1),
            )
        if spec.limit is not None:
            return TopN(
                child=node,
                n=spec.limit,
                column=None,
                estimated_rows=min(node.estimated_rows, spec.limit),
                cost=node.cost + min(node.estimated_rows, spec.limit),
            )
        return node

    # ------------------------------------------------------------------
    # Statistics helpers
    # ------------------------------------------------------------------
    def _column_stats(
        self, table: str, column: str
    ) -> "ColumnStatistics | None":
        try:
            return self._statistics.column(table, column)
        except KeyError:  # pragma: no cover - schema/statistics drift
            return None

    def _eq_selectivity(self, table: str, column: str, value: Any) -> float:
        stats = self._column_stats(table, column)
        if stats is None:
            return _SEL_DEFAULT
        return stats.selectivity(value)

    def _range_selectivity(
        self, table: str, column: str, low: Any, high: Any
    ) -> float:
        stats = self._column_stats(table, column)
        if stats is None:
            return (1 / 3) ** ((low is not None) + (high is not None))
        return stats.range_selectivity(low, high)

    def _matches_per_key(self, table: str, column: str) -> float:
        stats = self._column_stats(table, column)
        if stats is None or stats.distinct_count == 0:
            return 1.0
        return max(
            1.0, (stats.row_count - stats.null_count) / stats.distinct_count
        )

    def _filter_selectivity(
        self, table: str, parts: list[Predicate]
    ) -> float:
        selectivity = 1.0
        for part in parts:
            selectivity *= self._part_selectivity(table, part)
        return selectivity

    def _part_selectivity(self, table: str, part: Predicate) -> float:
        if isinstance(part, Comparison):
            if part.op == "==":
                return self._eq_selectivity(table, part.column, part.value)
            if part.op in ("<", "<="):
                return self._range_selectivity(
                    table, part.column, None, part.value
                )
            if part.op in (">", ">="):
                return self._range_selectivity(
                    table, part.column, part.value, None
                )
            if part.op == "!=":
                return _SEL_NE
            if part.op == "contains":
                return _SEL_CONTAINS
            if part.op == "in":
                try:
                    n = len(part.value)
                except TypeError:
                    n = 1
                stats = self._column_stats(table, part.column)
                per_value = (
                    stats.average_selectivity if stats is not None
                    else _SEL_DEFAULT / 4
                )
                return min(1.0, n * per_value)
        return _SEL_DEFAULT

    # ------------------------------------------------------------------
    # Value coercion for index bounds
    # ------------------------------------------------------------------
    def _coerced(self, table, column: str, value: Any) -> Any:
        try:
            return coerce(value, table.schema.column(column).dtype)
        except TypeMismatchError:
            return _UNUSABLE

    def _coerced_bounds(
        self, table, column: str, bounds: list[tuple[str, Any]]
    ) -> tuple[Any, bool, Any, bool]:
        """Fold op/value pairs into ``(low, low_inc, high, high_inc)``."""
        low: Any = None
        low_inc = True
        high: Any = None
        high_inc = True
        for op, value in bounds:
            coerced = self._coerced(table, column, value)
            if coerced is _UNUSABLE or coerced is None:
                return _UNUSABLE, True, _UNUSABLE, True
            key = ordering_key(coerced)
            if op in (">", ">="):
                if low is None or key > ordering_key(low) or (
                    key == ordering_key(low) and op == ">"
                ):
                    low, low_inc = coerced, op == ">="
            else:  # "<", "<="
                if high is None or key < ordering_key(high) or (
                    key == ordering_key(high) and op == "<"
                ):
                    high, high_inc = coerced, op == "<="
        return low, low_inc, high, high_inc


def _is_unique_column(table, column: str) -> bool:
    if column == table.schema.primary_key:
        return True
    return table.schema.column(column).unique


class _Unusable:
    """Sentinel: a binding value that cannot serve as an index probe."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<unusable>"


_UNUSABLE = _Unusable()


# ---------------------------------------------------------------------------
# Predicate decomposition
# ---------------------------------------------------------------------------

def _and_parts(predicate: Predicate) -> list[Predicate]:
    """Top-level AND-ed parts (TruePredicate contributes nothing)."""
    if isinstance(predicate, TruePredicate):
        return []
    if isinstance(predicate, And):
        out: list[Predicate] = []
        for part in predicate.parts:
            out.extend(_and_parts(part))
        return out
    return [predicate]


def _equality_bindings(parts: list[Predicate]) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for part in parts:
        if isinstance(part, Comparison) and part.op == "==":
            out[part.column] = part.value
    return out


def _range_bindings(parts: list[Predicate]) -> dict[str, list[tuple[str, Any]]]:
    out: dict[str, list[tuple[str, Any]]] = {}
    for part in parts:
        if isinstance(part, Comparison) and part.op in ("<", "<=", ">", ">="):
            out.setdefault(part.column, []).append((part.op, part.value))
    return out
