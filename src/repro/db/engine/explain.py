"""Render a physical plan tree as an EXPLAIN string.

The format follows the usual engine convention: one node per line,
children indented below their parent, with the planner's row/cost
estimates and the executor's mode (``[batch]`` columnwise over banks,
``[row]`` streaming row views) on every node::

    Project [title]  (rows~5, cost~40.0)  [batch]
      TopN 5 by year desc  (rows~5, cost~35.0)  [batch]
        Filter (year >= 1990)  (rows~12, cost~28.0)  [batch]
          IndexRange on movie using year [1990, +inf)  (rows~12, cost~16.0)  [batch]

Mixed pipelines show where the batch path hands over — e.g. a HAVING
filter runs ``[row]`` over the ``[batch]`` aggregate below it.
"""

from __future__ import annotations

from repro.db.engine.executor import plan_mode
from repro.db.engine.plan import PlanNode

__all__ = ["render_plan"]


def render_plan(plan: PlanNode) -> str:
    """Multi-line EXPLAIN rendering of ``plan``."""
    lines: list[str] = []
    _render(plan, 0, lines)
    return "\n".join(lines)


def _render(node: PlanNode, depth: int, lines: list[str]) -> None:
    estimate = f"  (rows~{node.estimated_rows:g}, cost~{node.cost:g})"
    mode = f"  [{plan_mode(node)}]"
    lines.append("  " * depth + node.describe() + estimate + mode)
    for child in node.children():
        _render(child, depth + 1, lines)
