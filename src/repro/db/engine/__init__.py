"""Cost-based query engine: plan tree, planner, executor, plan cache, EXPLAIN.

``Query.run()`` compiles the fluent query into a :class:`QuerySpec`,
reads a physical plan through the database's :class:`PlanCache` (one
compilation per query shape and data version; constants bind into the
cached template) and executes the resulting plan tree.  The
:class:`Planner` consults the database's
:class:`~repro.db.statistics.StatisticsCatalog` for row counts,
distinct counts and most-common-value selectivities, prices access
paths (including IN-list probe unions and OR-of-equality probe
unions), orders 3+-join queries by estimated intermediate cardinality,
and pushes aggregation down into streaming :class:`HashAggregate` /
index-only :class:`IndexAggScan` operators (with HAVING as a
post-aggregate Filter).  Execution defaults to the *batched* columnar
mode — predicates and reductions run directly over the table's column
banks; :func:`execution_mode` forces the row-at-a-time path for
measurement.  ``Query.explain()`` renders the chosen plan with cost
estimates.
"""

from repro.db.engine.cache import (
    DEFAULT_MAX_ENTRIES,
    PlanCache,
    bind_plan,
    fingerprint_spec,
    parameterize_spec,
)
from repro.db.engine.executor import (
    build_probe_map,
    plan_mode,
    execute_count,
    execute_iter,
    execute_plan,
    execute_row_ids,
    execute_rows,
    execution_mode,
)
from repro.db.engine.explain import render_plan
from repro.db.engine.plan import (
    AggExpr,
    CountOnly,
    Filter,
    GroupSemiJoin,
    HashAggregate,
    HashJoin,
    IndexAggScan,
    IndexEq,
    IndexGroupedAggScan,
    IndexInList,
    IndexNestedLoopJoin,
    IndexOrUnion,
    IndexRange,
    Param,
    PlanNode,
    Project,
    QuerySpec,
    SeqScan,
    Sort,
    TopN,
)
from repro.db.engine.planner import Planner, plan_query

__all__ = [
    "AggExpr",
    "CountOnly",
    "DEFAULT_MAX_ENTRIES",
    "Filter",
    "GroupSemiJoin",
    "HashAggregate",
    "HashJoin",
    "IndexAggScan",
    "IndexEq",
    "IndexGroupedAggScan",
    "IndexInList",
    "IndexNestedLoopJoin",
    "IndexOrUnion",
    "IndexRange",
    "Param",
    "PlanCache",
    "PlanNode",
    "Planner",
    "Project",
    "QuerySpec",
    "SeqScan",
    "Sort",
    "TopN",
    "bind_plan",
    "build_probe_map",
    "execute_count",
    "execute_iter",
    "execute_plan",
    "execute_row_ids",
    "execute_rows",
    "execution_mode",
    "fingerprint_spec",
    "parameterize_spec",
    "plan_mode",
    "plan_query",
    "render_plan",
]
