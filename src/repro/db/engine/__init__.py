"""Cost-based query engine: plan tree, planner, executor, EXPLAIN.

``Query.run()`` compiles the fluent query into a :class:`QuerySpec`,
hands it to the :class:`Planner` (which consults the database's
:class:`~repro.db.statistics.StatisticsCatalog` for row counts,
distinct counts and most-common-value selectivities) and executes the
resulting physical plan tree.  ``Query.explain()`` renders the chosen
plan with cost estimates.
"""

from repro.db.engine.executor import (
    build_probe_map,
    execute_count,
    execute_plan,
    execute_row_ids,
    execute_rows,
)
from repro.db.engine.explain import render_plan
from repro.db.engine.plan import (
    CountOnly,
    Filter,
    HashJoin,
    IndexEq,
    IndexNestedLoopJoin,
    IndexRange,
    PlanNode,
    Project,
    QuerySpec,
    SeqScan,
    Sort,
    TopN,
)
from repro.db.engine.planner import Planner, plan_query

__all__ = [
    "CountOnly",
    "Filter",
    "HashJoin",
    "IndexEq",
    "IndexNestedLoopJoin",
    "IndexRange",
    "PlanNode",
    "Planner",
    "Project",
    "QuerySpec",
    "SeqScan",
    "Sort",
    "TopN",
    "build_probe_map",
    "execute_count",
    "execute_plan",
    "execute_row_ids",
    "execute_rows",
    "plan_query",
    "render_plan",
]
