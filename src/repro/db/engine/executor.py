"""Physical plan execution: batched (columnar) and row-at-a-time modes.

The executor runs every plan in one of two modes:

* **batch mode** (the default) — plans whose pipeline is unary operators
  over a sequential scan of the root table (SeqScan, Filter, Sort,
  TopN, Project, CountOnly, HashAggregate) execute directly over the
  table's column banks: a *batch* is ``(table, slots)``, predicates
  narrow the slot list columnwise with C-level list comprehensions,
  aggregates reduce column lists per group, and only the surviving rows
  are materialised (columnwise) at the output boundary;
* **row mode** — everything else (index probes, joins, and any operator
  above them) streams lazy :class:`~repro.db.table.RowView` mappings
  exactly like the pre-columnar executor streamed dict views; the
  output boundary copies any view that survives to the result.

Both modes produce byte-identical results (the columnar differential
benchmark and the parity tests pin this down); batch mode just avoids
per-row mapping overhead.  :func:`execution_mode` forces row mode for
benchmarking the difference.

Ordering contracts (these keep results byte-for-byte identical to the
seed scan-everything implementation):

* access paths emit rows in ascending row-id order — an
  :class:`IndexRange` used purely as a filter re-sorts its matches by
  row id; one used to satisfy ORDER BY walks the index in value order,
  which equals the stable sort of a row-id scan because index entries
  tie-break on row id; :class:`IndexInList` / :class:`IndexOrUnion`
  probe unions deduplicate and re-sort into row-id order;
* joins preserve outer order and emit inner matches in row-id order;
* Sort is a stable sort; TopN tie-breaks on arrival order in both
  directions, matching ``sorted(...)[:n]`` / ``sorted(..., reverse=True)[:n]``.
"""

from __future__ import annotations

import heapq
import operator
from contextlib import contextmanager
from itertools import islice
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Sequence

from collections import Counter

from repro.db.engine.plan import (
    AggExpr,
    CountOnly,
    Filter,
    HashAggregate,
    HashJoin,
    IndexAggScan,
    IndexEq,
    IndexInList,
    IndexNestedLoopJoin,
    IndexOrUnion,
    IndexRange,
    PlanNode,
    Project,
    SeqScan,
    Sort,
    TopN,
)
from repro.db.ordering import ordering_key
from repro.db.query import (
    And,
    Comparison,
    Not,
    Or,
    Predicate,
    TruePredicate,
)
from repro.db.table import Row, Table
from repro.db.types import coerce
from repro.errors import QueryError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.db.database import Database

__all__ = [
    "execute_plan",
    "execute_rows",
    "execute_count",
    "execute_iter",
    "execute_row_ids",
    "execution_mode",
    "build_probe_map",
]


# Process-wide execution-mode switch.  Batch mode is the default; the
# columnar benchmark (and the parity tests) flip to row mode to measure
# and differential-check the two paths against each other.  Toggling is
# not thread-safe — it exists for single-threaded measurement, not for
# per-query routing (the batch pipeline falls back per plan on its own).
_BATCH_MODE = True


@contextmanager
def execution_mode(mode: str):
    """Force ``"row"`` or restore ``"batch"`` execution within a block."""
    global _BATCH_MODE
    if mode not in ("batch", "row"):
        raise ValueError(f"unknown execution mode {mode!r}")
    previous = _BATCH_MODE
    _BATCH_MODE = mode == "batch"
    try:
        yield
    finally:
        _BATCH_MODE = previous


def execute_plan(database: "Database", plan: PlanNode) -> list[Row] | int:
    """Run ``plan``; a CountOnly root returns an int, otherwise rows."""
    if isinstance(plan, CountOnly):
        return execute_count(database, plan)
    return execute_rows(database, plan)


def execute_rows(database: "Database", plan: PlanNode) -> list[Row]:
    """Materialise ``plan``'s output as fresh row dicts."""
    if isinstance(plan, Project):
        batch = _batch_node(database, plan.child)
        if batch is not None:
            return batch.table.materialise_slots(batch.slots, plan.columns)
    else:
        batch = _batch_node(database, plan)
        if batch is not None:
            return batch.table.materialise_slots(batch.slots)
    rows, fresh = _iterate(database, plan)
    if fresh:
        return list(rows)
    return [dict(row) for row in rows]


# Streaming results materialise batch-mode slots in chunks of this many
# rows, so a consumer that stops early never pays for the full result.
_STREAM_CHUNK = 256


def execute_iter(
    database: "Database", plan: PlanNode, chunk_size: int = _STREAM_CHUNK
) -> Iterator[Row]:
    """Stream ``plan``'s output as fresh row dicts, lazily.

    The cursor path behind :class:`~repro.db.api.Result`: rows
    materialise as the consumer pulls them — batch-mode plans still
    narrow their slot list eagerly (the filter is columnwise), but the
    per-row dict construction is deferred and chunked, and row-mode
    plans stream straight off the operator pipeline.  Draining the
    iterator yields exactly ``execute_rows(database, plan)``.
    """
    if isinstance(plan, Project):
        batch = _batch_node(database, plan.child)
        if batch is not None:
            yield from _materialise_chunks(batch, plan.columns, chunk_size)
            return
    else:
        batch = _batch_node(database, plan)
        if batch is not None:
            yield from _materialise_chunks(batch, None, chunk_size)
            return
    rows, fresh = _iterate(database, plan)
    if fresh:
        yield from rows
    else:
        for row in rows:
            yield dict(row)


def _materialise_chunks(
    batch: "_Batch", columns: tuple[str, ...] | None, chunk_size: int
) -> Iterator[Row]:
    slots = batch.slots
    total = len(slots)
    if total <= chunk_size:
        yield from batch.table.materialise_slots(slots, columns)
        return
    for start in range(0, total, chunk_size):
        chunk = slots[start : start + chunk_size]
        if type(chunk) is range:
            # materialise_slots treats a range as "the banks whole";
            # a partial chunk must go through explicit slot lists.
            chunk = list(chunk)
        yield from batch.table.materialise_slots(chunk, columns)


def execute_count(database: "Database", plan: CountOnly) -> int:
    """Count matching rows without materialising or projecting them."""
    child = plan.child
    count = None
    if isinstance(child, SeqScan):
        # No predicate, no joins: the table knows its cardinality.
        count = len(database.table(child.table))
    elif (
        _BATCH_MODE
        and plan.limit is not None
        and isinstance(child, Filter)
    ):
        # A capped count stops filtering at the cap, like the row loop
        # (which always pulls through the first match, even for a cap
        # of 0 — hence the max with 1).
        inner = _batch_node(database, child.child)
        if inner is not None:
            count = len(_filter_slots_limited(
                inner.table, child.predicate, inner.slots,
                max(plan.limit, 1),
            ))
    if count is None:
        batch = _batch_node(database, child)
        if batch is not None:
            count = len(batch.slots)
        else:
            rows, __ = _iterate(database, child)
            count = 0
            for __row in rows:
                count += 1
                if plan.limit is not None and count >= plan.limit:
                    break
    if plan.limit is not None:
        count = min(count, plan.limit)
    return count


def execute_row_ids(database: "Database", plan: PlanNode) -> list[int]:
    """Root-table row ids for an access-path/filter-only plan.

    Used by the candidate tracker, which keys its snapshots on internal
    row ids rather than materialised rows.  Joins, sorts and projections
    do not preserve root ids, so such plans are rejected.
    """
    if isinstance(plan, Filter):
        batch = _batch_node(database, plan)
        if batch is not None:
            return batch.table.ids_for_slots(batch.slots)
        ids = execute_row_ids(database, plan.child)
        table = database.table(_leaf_table(plan))
        predicate = plan.predicate
        return [
            rid for rid in ids if predicate.matches(table.row_view(rid))
        ]
    if isinstance(plan, SeqScan):
        return database.table(plan.table).row_ids()
    if isinstance(plan, IndexEq):
        return database.table(plan.table).lookup(plan.column, plan.value)
    if isinstance(plan, IndexInList):
        return sorted(_in_list_ids(database, plan))
    if isinstance(plan, IndexOrUnion):
        return sorted(_or_union_ids(database, plan))
    if isinstance(plan, IndexRange):
        index = database.table(plan.table).ordered_index(plan.column)
        return sorted(
            index.range_ids(
                plan.low, plan.high, plan.low_inclusive, plan.high_inclusive
            )
        )
    raise QueryError(
        f"plan node {type(plan).__name__} does not preserve root row ids"
    )


def _leaf_table(plan: PlanNode) -> str:
    node = plan
    while True:
        children = node.children()
        if not children:
            break
        node = children[0]
    table = getattr(node, "table", None)
    if table is None:  # pragma: no cover - all leaves carry a table
        raise QueryError(f"leaf node {type(node).__name__} has no table")
    return table


def build_probe_map(table, column: str) -> dict[Any, list[int]]:
    """``value -> row ids`` (ascending) for one column — the build side
    of a hash join.  Values are the stored, canonical column values;
    NULLs are excluded.  Reads the column's bank directly.  Shared with
    the dataaware join-path walker.
    """
    bank = table.bank_map()[column]
    slots = table.scan_slots()
    ids = table.ids_for_slots(slots)
    probe: dict[Any, list[int]] = {}
    for rid, value in zip(ids, map(bank.__getitem__, slots)):
        if value is None:
            continue
        probe.setdefault(value, []).append(rid)
    return probe


# ---------------------------------------------------------------------------
# Batched pipeline
# ---------------------------------------------------------------------------

class _Batch:
    """A columnar intermediate: active ``slots`` of one root ``table``.

    ``slots`` is a list (or, for a dense full scan, a ``range``) in the
    pipeline's current row order — row-id order out of a scan, value
    order after a Sort/TopN.
    """

    __slots__ = ("table", "slots")

    def __init__(self, table: Table, slots: Sequence[int]) -> None:
        self.table = table
        self.slots = slots


def _batch_node(database: "Database", node: PlanNode) -> _Batch | None:
    """Columnar evaluation of ``node``, or ``None`` when the subtree
    needs the row path (index probes, joins, aggregation roots)."""
    if not _BATCH_MODE:
        return None
    if isinstance(node, SeqScan):
        table = database.table(node.table)
        return _Batch(table, table.scan_slots())
    if isinstance(node, Filter):
        batch = _batch_node(database, node.child)
        if batch is None:
            return None
        slots = _filter_slots(batch.table, node.predicate, batch.slots)
        return _Batch(batch.table, slots)
    if isinstance(node, Sort):
        batch = _batch_node(database, node.child)
        if batch is None:
            return None
        slots = _sorted_slots(
            batch.table, batch.slots, node.column, node.descending
        )
        return _Batch(batch.table, slots)
    if isinstance(node, TopN):
        if node.n == 0:
            # Row mode's islice(rows, 0) never pulls a row, so the child
            # (and any error it would surface) must not evaluate here
            # either.
            table = _batch_leaf_table(database, node.child)
            if table is None:
                return None
            return _Batch(table, [])
        if node.column is None:
            # A plain LIMIT: stop filtering once n rows survived, like
            # the row path's islice early exit.
            child = node.child
            if isinstance(child, Filter):
                inner = _batch_node(database, child.child)
                if inner is None:
                    return None
                slots = _filter_slots_limited(
                    inner.table, child.predicate, inner.slots, node.n
                )
                return _Batch(inner.table, slots)
            batch = _batch_node(database, child)
            if batch is None:
                return None
            return _Batch(batch.table, list(batch.slots[: node.n]))
        batch = _batch_node(database, node.child)
        if batch is None:
            return None
        slots = _sorted_slots(
            batch.table, batch.slots, node.column, node.descending
        )
        return _Batch(batch.table, slots[: node.n])
    return None


def _batch_leaf_table(database: "Database", node: PlanNode) -> Table | None:
    """The root table of a batchable subtree — without evaluating it."""
    while isinstance(node, (Filter, Sort, TopN)):
        node = node.child
    if isinstance(node, SeqScan):
        return database.table(node.table)
    return None


# Chunk-size cap for limit-aware columnwise filtering.  Chunks grow
# geometrically from a small start, so a LIMIT an unselective predicate
# satisfies in the first rows touches a sliver of the table (like the
# row path's islice early exit) while a selective one quickly reaches
# C-dominated full-size chunks.
_FILTER_CHUNK = 4096
_FILTER_CHUNK_START = 64


def _filter_slots_limited(
    table: Table, predicate: Predicate, slots: Sequence[int], n: int
) -> list[int]:
    """At most ``n`` matching slots, row-path-identical under LIMIT.

    Chunks evaluate columnwise; an erroring chunk replays row by row,
    because the row path's islice early exit stops at the nth match and
    never evaluates the rows behind it — columnwise narrowing inside
    one chunk does.  The replay raises exactly when the erroring row
    precedes the nth match in row order, and returns the matches
    otherwise, so both modes stay byte- (and error-) identical.
    """
    out: list[int] = []
    total = len(slots)
    start = 0
    size = min(_FILTER_CHUNK_START, _FILTER_CHUNK)
    while start < total:
        end = min(start + size, total)
        chunk = slots[start:end]
        try:
            hits = _filter_slots(table, predicate, chunk)
        except Exception:
            # Row-order replay of this chunk: the set of (row, part)
            # evaluations matches columnwise narrowing, but the order
            # is row-major with the early exit, like islice.
            for slot, row in zip(chunk, table.views_for_slots(chunk)):
                if predicate.matches(row):
                    out.append(slot)
                    if len(out) >= n:
                        return out
            start = end
            size = min(size * 4, _FILTER_CHUNK)
            continue
        out.extend(hits)
        if len(out) >= n:
            return out[:n]
        start = end
        size = min(size * 4, _FILTER_CHUNK)
    return out


def _sorted_slots(
    table: Table, slots: Sequence[int], column: str, descending: bool
) -> list[int]:
    """Slots reordered by the column's ordering key — a stable sort, so
    ties keep the incoming order exactly like the row path's Sort/TopN."""
    if not len(slots):
        return []
    bank = table.bank_map().get(column)
    if bank is None:
        # The row path raises KeyError from ``row[column]`` as soon as a
        # sort key is computed, which happens iff there are rows.
        raise KeyError(column)
    return sorted(
        slots,
        key=lambda s: ordering_key(bank[s]),
        reverse=descending,
    )


# --- columnwise predicate evaluation --------------------------------------
#
# These reproduce Predicate.matches() exactly, clause by clause: NULLs
# never match a comparison, a TypeError during a comparison means False
# for that row, an unknown column raises QueryError — but only when a
# row actually reaches the comparison (an empty candidate set never
# evaluates, exactly like the row loop never calls matches()).

def _filter_slots(
    table: Table, predicate: Predicate, slots: Sequence[int]
) -> Sequence[int]:
    if isinstance(predicate, TruePredicate):
        return slots
    if isinstance(predicate, Comparison):
        return _comparison_slots(table, predicate, slots)
    if isinstance(predicate, And):
        # Sequential narrowing: a row rejected by an earlier part never
        # reaches a later one — the row path's all() short-circuit.
        for part in predicate.parts:
            slots = _filter_slots(table, part, slots)
        return slots
    if isinstance(predicate, Or):
        matched: set[int] = set()
        remaining = slots
        for part in predicate.parts:
            # Rows already matched never evaluate later disjuncts (the
            # row path's any() short-circuit), so errors and TypeErrors
            # surface for exactly the same rows.
            hits = _filter_slots(table, part, remaining)
            matched.update(hits)
            remaining = [s for s in remaining if s not in matched]
            if not remaining:
                break
        return [s for s in slots if s in matched]
    if isinstance(predicate, Not):
        matched = set(_filter_slots(table, predicate.part, slots))
        return [s for s in slots if s not in matched]
    # Unknown predicate subclass: evaluate row-wise through views.
    views = table.views_for_slots(slots)
    return [s for s, row in zip(slots, views) if predicate.matches(row)]


# C-level comparison functions for the columnwise evaluator — the same
# truth tables as Predicate._OPERATORS, minus one Python frame per row.
_COLUMN_OPS = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "in": lambda a, b: a in b,
}


def _comparison_slots(
    table: Table, predicate: Comparison, slots: Sequence[int]
) -> list[int]:
    if not len(slots):
        return []
    column = predicate.column
    bank = table.bank_map().get(column)
    if bank is None:
        raise QueryError(f"row has no column {column!r}")
    op = predicate.op
    value = predicate.value
    if op == "contains":
        if not isinstance(value, str):
            return []
        needle = value.lower()
        return [
            s for s in slots
            if isinstance(bank[s], str) and needle in bank[s].lower()
        ]
    op_fn = _COLUMN_OPS[op]
    try:
        return [
            s for s in slots
            if (v := bank[s]) is not None and op_fn(v, value)
        ]
    except TypeError:
        # Mixed-type comparison somewhere in the column: fall back to
        # the row path's per-value TypeError-means-False semantics.
        return [s for s in slots if _safe_match(op_fn, bank[s], value)]


def _safe_match(op_fn, actual: Any, value: Any) -> bool:
    if actual is None:
        return False
    try:
        return op_fn(actual, value)
    except TypeError:
        return False


# ---------------------------------------------------------------------------
# Operator dispatch (row mode / batch fallback boundary)
# ---------------------------------------------------------------------------

def _iterate(
    database: "Database", node: PlanNode
) -> tuple[Iterable[Row], bool]:
    """Return ``(row iterable, rows_are_fresh_dicts)`` for ``node``."""
    if isinstance(node, SeqScan):
        return database.table(node.table).iter_views(), False
    if isinstance(node, IndexEq):
        table = database.table(node.table)
        ids = table.lookup(node.column, node.value)
        return (table.row_view(rid) for rid in ids), False
    if isinstance(node, IndexInList):
        table = database.table(node.table)
        ids = sorted(_in_list_ids(database, node))
        return (table.row_view(rid) for rid in ids), False
    if isinstance(node, IndexOrUnion):
        table = database.table(node.table)
        ids = sorted(_or_union_ids(database, node))
        return (table.row_view(rid) for rid in ids), False
    if isinstance(node, IndexRange):
        return _index_range(database, node), False
    if isinstance(node, HashAggregate):
        return _hash_aggregate(database, node), True
    if isinstance(node, IndexAggScan):
        return _index_agg_scan(database, node), True
    if isinstance(node, Filter):
        batch = _batch_node(database, node)
        if batch is not None:
            return batch.table.views_for_slots(batch.slots), False
        rows, fresh = _iterate(database, node.child)
        predicate = node.predicate
        return (row for row in rows if predicate.matches(row)), fresh
    if isinstance(node, HashJoin):
        rows, __ = _iterate(database, node.child)
        return _hash_join(database, node, rows), True
    if isinstance(node, IndexNestedLoopJoin):
        rows, __ = _iterate(database, node.child)
        return _index_join(database, node, rows), True
    if isinstance(node, Sort):
        batch = _batch_node(database, node)
        if batch is not None:
            return batch.table.views_for_slots(batch.slots), False
        rows, fresh = _iterate(database, node.child)
        materialised = list(rows)
        materialised.sort(
            key=lambda row: ordering_key(row[node.column]),
            reverse=node.descending,
        )
        return materialised, fresh
    if isinstance(node, TopN):
        batch = _batch_node(database, node)
        if batch is not None:
            return batch.table.views_for_slots(batch.slots), False
        rows, fresh = _iterate(database, node.child)
        if node.column is None:
            return islice(rows, node.n), fresh
        return _top_n(rows, node.n, node.column, node.descending), fresh
    if isinstance(node, Project):
        batch = _batch_node(database, node.child)
        if batch is not None:
            return (
                batch.table.materialise_slots(batch.slots, node.columns),
                True,
            )
        rows, __ = _iterate(database, node.child)
        columns = node.columns
        return ({c: row[c] for c in columns} for row in rows), True
    raise QueryError(f"unknown plan node {type(node).__name__}")


# ---------------------------------------------------------------------------
# Access paths
# ---------------------------------------------------------------------------

def _index_range(database: "Database", node: IndexRange) -> Iterator[Row]:
    table = database.table(node.table)
    index = table.ordered_index(node.column)
    if not node.sorted_output:
        # Pure filter access: re-establish row-id order so downstream
        # results are identical to a sequential scan.
        ids = sorted(
            index.range_ids(
                node.low, node.high, node.low_inclusive, node.high_inclusive
            )
        )
        for rid in ids:
            yield table.row_view(rid)
        return
    # Value-ordered scan (satisfies ORDER BY).  Index entries exclude
    # NULLs; for an unbounded scan the NULL rows must still appear —
    # last for ascending, first for descending, in row-id order either
    # way, mirroring the stable sort the seed implementation performed.
    unbounded = node.low is None and node.high is None
    null_ids: list[int] = []
    if unbounded and len(index) < len(table):
        null_ids = [
            rid
            for rid, row in table.iter_view_items()
            if row[node.column] is None
        ]
    if node.descending:
        for rid in null_ids:
            yield table.row_view(rid)
        for rid in index.descending_range_ids(
            node.low, node.high, node.low_inclusive, node.high_inclusive
        ):
            yield table.row_view(rid)
    else:
        for rid in index.range_ids(
            node.low, node.high, node.low_inclusive, node.high_inclusive
        ):
            yield table.row_view(rid)
        for rid in null_ids:
            yield table.row_view(rid)


def _top_n(
    rows: Iterable[Row], n: int, column: str, descending: bool
) -> Iterator[Row]:
    if n == 0:
        return iter(())
    if descending:
        picked = heapq.nlargest(
            n,
            enumerate(rows),
            key=lambda item: (ordering_key(item[1][column]), _Rev(item[0])),
        )
    else:
        picked = heapq.nsmallest(
            n,
            enumerate(rows),
            key=lambda item: (ordering_key(item[1][column]), item[0]),
        )
    return iter([row for __, row in picked])


class _Rev:
    """Inverts comparisons so ``nlargest`` tie-breaks on arrival order."""

    __slots__ = ("value",)

    def __init__(self, value: int) -> None:
        self.value = value

    def __lt__(self, other: "_Rev") -> bool:
        return self.value > other.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Rev) and self.value == other.value


# ---------------------------------------------------------------------------
# Joins
# ---------------------------------------------------------------------------

def _hash_join(
    database: "Database", node: HashJoin, outer_rows: Iterable[Row]
) -> Iterator[Row]:
    inner = database.table(node.table)
    dtype = inner.schema.column(node.target_column).dtype
    probe = build_probe_map(inner, node.target_column)
    prefix = node.table
    for row in outer_rows:
        key = row.get(node.column)
        if key is None:
            continue
        needle = coerce(key, dtype)
        if needle is None:
            continue
        for rid in probe.get(needle, ()):
            match = inner.row_view(rid)
            widened = dict(row)
            for other_col, value in match.items():
                widened[f"{prefix}.{other_col}"] = value
            yield widened


def _index_join(
    database: "Database", node: IndexNestedLoopJoin, outer_rows: Iterable[Row]
) -> Iterator[Row]:
    inner = database.table(node.table)
    prefix = node.table
    for row in outer_rows:
        key = row.get(node.column)
        if key is None:
            continue
        for rid in inner.lookup(node.target_column, key):
            match = inner.row_view(rid)
            widened = dict(row)
            for other_col, value in match.items():
                widened[f"{prefix}.{other_col}"] = value
            yield widened


# ---------------------------------------------------------------------------
# Probe unions (IN-list, OR of equalities)
# ---------------------------------------------------------------------------

def _in_list_ids(database: "Database", node: IndexInList) -> set[int]:
    """Deduplicated row ids matched by any of the IN-list probes."""
    table = database.table(node.table)
    ids: set[int] = set()
    for value in node.values:
        ids.update(table.lookup(node.column, value))
    return ids


def _or_union_ids(database: "Database", node: IndexOrUnion) -> set[int]:
    """Deduplicated row ids matched by any of the OR's equality probes."""
    table = database.table(node.table)
    ids: set[int] = set()
    for column, value in node.probes:
        ids.update(table.lookup(column, value))
    return ids


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------
#
# The aggregation operators must reproduce repro.db.aggregation.aggregate()
# exactly: groups in first-appearance order, NULL values skipped by
# column aggregates (COUNT(*) keeps them), sum() folding left-to-right
# from 0, min/max keeping the first extremal value, empty global group
# producing one row.  When the child is a batchable scan the reductions
# run straight over the column banks (the default); otherwise the
# single-key single-aggregate shapes get tight one-pass accumulator
# loops over the row stream and everything else banks row views per
# group — no row is ever copied on any path.

def _group_key_error(exc: KeyError) -> QueryError:
    return QueryError(f"unknown group-by column {exc.args[0]!r}")


def _hash_aggregate(database: "Database", node: HashAggregate) -> list[Row]:
    batch = _batch_node(database, node.child)
    if batch is not None:
        return _banked_aggregate(
            batch.table, batch.slots, node.group_by, node.aggregates
        )
    rows, __ = _iterate(database, node.child)
    exprs = node.aggregates
    keys = node.group_by
    if not keys:
        return _global_aggregate(rows, exprs)
    if len(keys) == 1 and len(exprs) == 1:
        result = _single_key_single_agg(rows, keys[0], exprs[0])
        if result is not None:
            return result
    return _generic_aggregate(rows, keys, exprs)


# --- banked (columnar) aggregation ----------------------------------------

def _select(bank: list, slots: Sequence[int]) -> Sequence[Any]:
    """The bank values at ``slots`` (the bank itself for a full range)."""
    if type(slots) is range:
        return bank
    return [bank[s] for s in slots]


def _banked_aggregate(
    table: Table,
    slots: Sequence[int],
    keys: tuple[str, ...],
    exprs: tuple[AggExpr, ...],
) -> list[Row]:
    banks = table.bank_map()
    if not keys:
        out: Row = {}
        for expr in exprs:
            out[expr.name] = _reduce_bank(expr, banks, slots)
        return [out]
    key_banks = []
    for key in keys:
        bank = banks.get(key)
        if bank is None:
            if not len(slots):
                return []
            raise _group_key_error(KeyError(key))
        key_banks.append(bank)
    if len(keys) == 1 and len(exprs) == 1:
        result = _banked_single_key_single_agg(
            key_banks[0], banks, slots, keys[0], exprs[0]
        )
        if result is not None:
            return result
    # Generic: bank slot lists per group, reduce each column list.
    groups: dict[Any, list[int]]
    if len(keys) == 1:
        key_bank = key_banks[0]
        groups = {}
        lookup = groups.get
        for s in slots:
            k = key_bank[s]
            bucket = lookup(k)
            if bucket is None:
                groups[k] = bucket = []
            bucket.append(s)
        key_col = keys[0]
        result = []
        for k, bucket in groups.items():
            out = {key_col: k}
            for expr in exprs:
                out[expr.name] = _reduce_bank(expr, banks, bucket)
            result.append(out)
        return result
    groups = {}
    lookup = groups.get
    for s in slots:
        k = tuple(bank[s] for bank in key_banks)
        bucket = lookup(k)
        if bucket is None:
            groups[k] = bucket = []
        bucket.append(s)
    result = []
    for k, bucket in groups.items():
        out = dict(zip(keys, k))
        for expr in exprs:
            out[expr.name] = _reduce_bank(expr, banks, bucket)
        result.append(out)
    return result


def _banked_single_key_single_agg(
    key_bank: list,
    banks: dict[str, list],
    slots: Sequence[int],
    key_col: str,
    expr: AggExpr,
) -> list[Row] | None:
    """One-pass zipped-bank loops for the hot aggregate shapes."""
    kind = expr.kind
    name = expr.name
    keys_seq = _select(key_bank, slots)
    if kind == "count":
        counts = Counter(keys_seq)
        return [{key_col: k, name: n} for k, n in counts.items()]
    value_bank = banks.get(expr.column)
    if value_bank is None:
        # ``row.get(column)`` yields None for every row: groups still
        # enumerate in first-appearance order with their empty-group
        # defaults.
        default = 0 if kind in ("sum", "count_distinct") else None
        return [
            {key_col: k, name: default} for k in dict.fromkeys(keys_seq)
        ]
    return _single_key_pairs_agg(
        zip(keys_seq, _select(value_bank, slots)), kind, key_col, name
    )


def _single_key_pairs_agg(
    pairs: Iterable[tuple[Any, Any]], kind: str, key_col: str, name: str
) -> list[Row] | None:
    """The single-key accumulator loops, shared by the banked and the
    row-stream paths — both feed ``(group key, value)`` pairs; NULL
    handling and first-appearance group order live here, once."""
    if kind == "sum":
        totals: dict[Any, Any] = {}
        lookup = totals.get
        for k, v in pairs:
            t = lookup(k)
            if t is None:  # totals never store None
                t = 0
            totals[k] = t if v is None else t + v
        return [{key_col: k, name: t} for k, t in totals.items()]
    if kind in ("min", "max"):
        keep_smaller = kind == "min"
        best: dict[Any, Any] = {}
        for k, v in pairs:
            if k not in best:
                best[k] = v
            elif v is not None:
                b = best[k]
                if b is None or (v < b if keep_smaller else v > b):
                    best[k] = v
        return [{key_col: k, name: b} for k, b in best.items()]
    if kind == "avg":
        totals = {}
        counts_by_key: dict[Any, int] = {}
        for k, v in pairs:
            if k not in totals:
                totals[k] = 0
                counts_by_key[k] = 0
            if v is not None:
                totals[k] = totals[k] + v
                counts_by_key[k] += 1
        return [
            {key_col: k, name: (t / counts_by_key[k]
                                if counts_by_key[k] else None)}
            for k, t in totals.items()
        ]
    if kind == "count_distinct":
        seen: dict[Any, set] = {}
        for k, v in pairs:
            if k not in seen:
                seen[k] = set()
            if v is not None:
                seen[k].add(v)
        return [{key_col: k, name: len(s)} for k, s in seen.items()]
    return None  # pragma: no cover - all known kinds are specialised


def _reduce_bank(
    expr: AggExpr, banks: dict[str, list], slots: Sequence[int]
) -> Any:
    """Reduce one slot group from the banks, like ``Aggregate.apply``."""
    kind = expr.kind
    if kind == "count":
        return len(slots)
    bank = banks.get(expr.column)
    if bank is None:
        values: list = []
    else:
        values = [v for s in slots if (v := bank[s]) is not None]
    return _reduce_values(kind, values)


def _reduce_values(kind: str, values: list) -> Any:
    if kind == "sum":
        return sum(values) if values else 0
    if kind == "avg":
        return sum(values) / len(values) if values else None
    if kind == "min":
        return min(values) if values else None
    if kind == "max":
        return max(values) if values else None
    if kind == "count_distinct":
        return len(set(values))
    raise QueryError(  # pragma: no cover - planner only emits known kinds
        f"unknown aggregate kind {kind!r}"
    )


# --- row-stream aggregation (fallback) ------------------------------------

def _single_key_single_agg(
    rows: Iterable[Row], key_col: str, expr: AggExpr
) -> list[Row] | None:
    """Specialised one-pass loops for the hot aggregate shapes."""
    kind = expr.kind
    name = expr.name
    col = expr.column
    try:
        if kind == "count":
            counts = Counter(row[key_col] for row in rows)
            return [{key_col: k, name: n} for k, n in counts.items()]
        pairs = ((row[key_col], row.get(col)) for row in rows)
        return _single_key_pairs_agg(pairs, kind, key_col, name)
    except KeyError as exc:
        raise _group_key_error(exc) from None


def _global_aggregate(rows: Iterable[Row], exprs: tuple[AggExpr, ...]) -> list[Row]:
    """The single implicit group: one output row, even for empty input."""
    banked = rows if isinstance(rows, list) else list(rows)
    out: Row = {}
    for expr in exprs:
        out[expr.name] = _reduce_group(expr, banked)
    return [out]


def _generic_aggregate(
    rows: Iterable[Row], keys: tuple[str, ...], exprs: tuple[AggExpr, ...]
) -> list[Row]:
    """Group-hash with banked row *views* and vectorised reductions.

    One pass banks each row's view (no copy) under its group key, then
    every aggregate reduces its group with C-level builtins — the same
    reductions the baseline performs, minus the per-row dict copies and
    per-row accumulator dispatch that would dominate multi-aggregate
    grouping.
    """
    result: list[Row] = []
    lookup: Any
    try:
        if len(keys) == 1:
            key_col = keys[0]
            scalar_groups: dict[Any, list[Row]] = {}
            lookup = scalar_groups.get
            for row in rows:
                k = row[key_col]
                bank = lookup(k)
                if bank is None:
                    scalar_groups[k] = bank = []
                bank.append(row)
            for k, bank in scalar_groups.items():
                out: Row = {key_col: k}
                for expr in exprs:
                    out[expr.name] = _reduce_group(expr, bank)
                result.append(out)
            return result
        groups: dict[tuple, list[Row]] = {}
        lookup = groups.get
        for row in rows:
            key = tuple(row[k] for k in keys)
            bank = lookup(key)
            if bank is None:
                groups[key] = bank = []
            bank.append(row)
    except KeyError as exc:
        raise _group_key_error(exc) from None
    for key, bank in groups.items():
        out = dict(zip(keys, key))
        for expr in exprs:
            out[expr.name] = _reduce_group(expr, bank)
        result.append(out)
    return result


def _reduce_group(expr: AggExpr, rows: list[Row]) -> Any:
    """Reduce one group exactly like ``Aggregate.apply`` does."""
    kind = expr.kind
    if kind == "count":
        return len(rows)
    column = expr.column
    values = [
        row[column] for row in rows if row.get(column) is not None
    ]
    return _reduce_values(kind, values)


def _index_agg_scan(database: "Database", node: IndexAggScan) -> list[Row]:
    """Aggregates answered from index structures without visiting rows."""
    table = database.table(node.table)
    out: Row = {}
    for agg in node.aggregates:
        if agg.kind == "count":
            out[agg.name] = len(table)
        elif agg.kind == "count_distinct":
            out[agg.name] = table.distinct_count(agg.column)
        else:  # min/max via the ordered index
            index = table.ordered_index(agg.column)
            rid = index.first_id() if agg.kind == "min" else index.last_id()
            out[agg.name] = (
                None if rid is None else table.row_view(rid)[agg.column]
            )
    return [out]
