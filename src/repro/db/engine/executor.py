"""Physical plan execution: batched (columnar) and row-at-a-time modes.

The executor runs every plan in one of two modes:

* **batch mode** (the default) — plans whose pipeline is access paths,
  unary operators and joins over the root table (SeqScan, the index
  leaves, Filter, Sort, TopN, HashJoin, IndexNestedLoopJoin, Project,
  CountOnly, HashAggregate) execute directly over the tables' column
  banks: a *batch* is ``(table, slots)``, predicates narrow the slot
  list columnwise with C-level list comprehensions, joins narrow
  parallel slot lists per joined table (:class:`_JoinColumns`) without
  widening a single row, aggregates reduce column lists per group, and
  only the surviving rows are materialised (columnwise) at the output
  boundary;
* **row mode** — everything else (operators whose laziness is
  observable, skewed joins, post-aggregate filters) streams lazy
  :class:`~repro.db.table.RowView` mappings exactly like the
  pre-columnar executor streamed dict views; the output boundary copies
  any view that survives to the result.

Both modes produce byte-identical results (the columnar differential
benchmark and the parity tests pin this down); batch mode just avoids
per-row mapping overhead.  :func:`execution_mode` forces row mode for
benchmarking the difference.

Ordering contracts (these keep results byte-for-byte identical to the
seed scan-everything implementation):

* access paths emit rows in ascending row-id order — an
  :class:`IndexRange` used purely as a filter re-sorts its matches by
  row id; one used to satisfy ORDER BY walks the index in value order,
  which equals the stable sort of a row-id scan because index entries
  tie-break on row id; :class:`IndexInList` / :class:`IndexOrUnion`
  probe unions deduplicate and re-sort into row-id order;
* joins preserve outer order and emit inner matches in row-id order;
* Sort is a stable sort; TopN tie-breaks on arrival order in both
  directions, matching ``sorted(...)[:n]`` / ``sorted(..., reverse=True)[:n]``.
"""

from __future__ import annotations

import heapq
import operator
from contextlib import contextmanager
from itertools import accumulate, islice, repeat
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Sequence

from collections import Counter

from repro.db.engine.plan import (
    AggExpr,
    CountOnly,
    Filter,
    GroupSemiJoin,
    HashAggregate,
    HashJoin,
    IndexAggScan,
    IndexEq,
    IndexGroupedAggScan,
    IndexInList,
    IndexNestedLoopJoin,
    IndexOrUnion,
    IndexRange,
    PlanNode,
    Project,
    SeqScan,
    Sort,
    TopN,
)
from repro.db.ordering import ordering_key
from repro.db.query import (
    And,
    Comparison,
    Not,
    Or,
    Predicate,
    TruePredicate,
)
from repro.db.table import Row, Table
from repro.db.types import DataType, coerce
from repro.errors import QueryError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.db.database import Database
    from repro.db.segments import GroupedReduce

__all__ = [
    "execute_plan",
    "execute_rows",
    "execute_count",
    "execute_iter",
    "execute_row_ids",
    "execution_mode",
    "build_probe_map",
    "plan_mode",
]


# Process-wide execution-mode switch.  Batch mode is the default; the
# columnar benchmark (and the parity tests) flip to row mode to measure
# and differential-check the two paths against each other.  Toggling is
# not thread-safe — it exists for single-threaded measurement, not for
# per-query routing (the batch pipeline falls back per plan on its own).
_BATCH_MODE = True


@contextmanager
def execution_mode(mode: str):
    """Force ``"row"`` or restore ``"batch"`` execution within a block."""
    global _BATCH_MODE
    if mode not in ("batch", "row"):
        raise ValueError(f"unknown execution mode {mode!r}")
    previous = _BATCH_MODE
    _BATCH_MODE = mode == "batch"
    try:
        yield
    finally:
        _BATCH_MODE = previous


def execute_plan(database: "Database", plan: PlanNode) -> list[Row] | int:
    """Run ``plan``; a CountOnly root returns an int, otherwise rows."""
    if isinstance(plan, CountOnly):
        return execute_count(database, plan)
    return execute_rows(database, plan)


def execute_rows(database: "Database", plan: PlanNode) -> list[Row]:
    """Materialise ``plan``'s output as fresh row dicts."""
    if isinstance(plan, Project):
        batch = _batch_node(database, plan.child)
        if batch is not None:
            return batch.table.materialise_slots(batch.slots, plan.columns)
    else:
        batch = _batch_node(database, plan)
        if batch is not None:
            return batch.table.materialise_slots(batch.slots)
    rows, fresh = _iterate(database, plan)
    if fresh:
        return list(rows)
    return [dict(row) for row in rows]


# Streaming results materialise batch-mode slots in chunks of this many
# rows, so a consumer that stops early never pays for the full result.
_STREAM_CHUNK = 256


def execute_iter(
    database: "Database", plan: PlanNode, chunk_size: int = _STREAM_CHUNK
) -> Iterator[Row]:
    """Stream ``plan``'s output as fresh row dicts, lazily.

    The cursor path behind :class:`~repro.db.api.Result`: rows
    materialise as the consumer pulls them — batch-mode plans still
    narrow their slot list eagerly (the filter is columnwise), but the
    per-row dict construction is deferred and chunked, and row-mode
    plans stream straight off the operator pipeline.  Draining the
    iterator yields exactly ``execute_rows(database, plan)``.
    """
    if isinstance(plan, Project):
        batch = _batch_node(database, plan.child)
        if batch is not None:
            yield from _materialise_chunks(batch, plan.columns, chunk_size)
            return
    else:
        batch = _batch_node(database, plan)
        if batch is not None:
            yield from _materialise_chunks(batch, None, chunk_size)
            return
    rows, fresh = _iterate(database, plan)
    if fresh:
        yield from rows
    else:
        for row in rows:
            yield dict(row)


def _materialise_chunks(
    batch: "_Batch", columns: tuple[str, ...] | None, chunk_size: int
) -> Iterator[Row]:
    slots = batch.slots
    total = len(slots)
    if total <= chunk_size:
        yield from batch.table.materialise_slots(slots, columns)
        return
    for start in range(0, total, chunk_size):
        chunk = slots[start : start + chunk_size]
        if type(chunk) is range:
            # materialise_slots treats a range as "the banks whole";
            # a partial chunk must go through explicit slot lists.
            chunk = list(chunk)
        yield from batch.table.materialise_slots(chunk, columns)


def execute_count(database: "Database", plan: CountOnly) -> int:
    """Count matching rows without materialising or projecting them."""
    child = plan.child
    count = None
    if isinstance(child, SeqScan):
        # No predicate, no joins: the table knows its cardinality.
        count = len(database.table(child.table))
    elif (
        _BATCH_MODE
        and plan.limit is not None
        and isinstance(child, Filter)
        and not _contains_join(child.child)
    ):
        # A capped count stops filtering at the cap, like the row loop
        # (which always pulls through the first match, even for a cap
        # of 0 — hence the max with 1).
        inner = _batch_node(database, child.child)
        if inner is not None:
            count = len(_filter_slots_limited(
                inner.table, child.predicate, inner.slots,
                max(plan.limit, 1),
            ))
    if count is None:
        # A capped count over a join keeps the row loop's early exit:
        # eager join evaluation could pay for (and surface errors from)
        # rows the cap never reaches.
        batch = (
            None
            if plan.limit is not None and _contains_join(child)
            else _batch_node(database, child)
        )
        if batch is not None:
            count = len(batch.slots)
        else:
            rows, __ = _iterate(database, child)
            count = 0
            for __row in rows:
                count += 1
                if plan.limit is not None and count >= plan.limit:
                    break
    if plan.limit is not None:
        count = min(count, plan.limit)
    return count


def execute_row_ids(database: "Database", plan: PlanNode) -> list[int]:
    """Root-table row ids for an access-path/filter-only plan.

    Used by the candidate tracker, which keys its snapshots on internal
    row ids rather than materialised rows.  Joins, sorts and projections
    do not preserve root ids, so such plans are rejected.
    """
    if isinstance(plan, Filter):
        batch = _batch_node(database, plan)
        if batch is not None and isinstance(batch.table, Table):
            return batch.table.ids_for_slots(batch.slots)
        ids = execute_row_ids(database, plan.child)
        table = database.table(_leaf_table(plan))
        predicate = plan.predicate
        return [
            rid for rid in ids if predicate.matches(table.row_view(rid))
        ]
    if isinstance(plan, SeqScan):
        return database.table(plan.table).row_ids()
    if isinstance(plan, IndexEq):
        return database.table(plan.table).lookup(plan.column, plan.value)
    if isinstance(plan, IndexInList):
        return sorted(_in_list_ids(database, plan))
    if isinstance(plan, IndexOrUnion):
        return sorted(_or_union_ids(database, plan))
    if isinstance(plan, IndexRange):
        index = database.table(plan.table).ordered_index(plan.column)
        return sorted(
            index.range_ids(
                plan.low, plan.high, plan.low_inclusive, plan.high_inclusive
            )
        )
    raise QueryError(
        f"plan node {type(plan).__name__} does not preserve root row ids"
    )


def _leaf_table(plan: PlanNode) -> str:
    node = plan
    while True:
        children = node.children()
        if not children:
            break
        node = children[0]
    table = getattr(node, "table", None)
    if table is None:  # pragma: no cover - all leaves carry a table
        raise QueryError(f"leaf node {type(node).__name__} has no table")
    return table


def build_probe_map(table, column: str) -> dict[Any, list[int]]:
    """``value -> row ids`` (ascending) for one column — the build side
    of a hash join.  Values are the stored, canonical column values;
    NULLs are excluded.  Reads the column's bank directly.  Shared with
    the dataaware join-path walker.
    """
    bank = table.bank_map()[column]
    slots = table.scan_slots()
    ids = table.ids_for_slots(slots)
    probe: dict[Any, list[int]] = {}
    for rid, value in zip(ids, map(bank.__getitem__, slots)):
        if value is None:
            continue
        probe.setdefault(value, []).append(rid)
    return probe


# ---------------------------------------------------------------------------
# Batched pipeline
# ---------------------------------------------------------------------------

class _Batch:
    """A columnar intermediate: active ``slots`` of one ``table``.

    ``slots`` is a list (or, for a dense full scan, a ``range``) in the
    pipeline's current row order — row-id order out of a scan, value
    order after a Sort/TopN.  ``table`` is the root :class:`Table` or,
    above a batched join, a :class:`_JoinColumns` adapter whose
    positions play the role of slots.
    """

    __slots__ = ("table", "slots")

    def __init__(
        self, table: "Table | _JoinColumns", slots: Sequence[int]
    ) -> None:
        self.table = table
        self.slots = slots


class _JoinColumns:
    """Virtual columnar table over a join's output rows.

    ``parts`` holds one ``(prefix, table, slots)`` triple per joined
    table — the root part first (``prefix None``, bare column names),
    then one part per join in application order (columns keyed
    ``"table.column"``).  The slot lists are parallel: position ``i`` of
    every part addresses the same output row, so the batched operators'
    slot lists double as output-row position lists and keep narrowing
    columnwise above joins.  Columns materialise lazily (and cache) as
    full-length value lists — a filter above a join touches only the
    columns it reads; widening to dicts happens once, at the output
    boundary.

    Name resolution mirrors the row path's widened dicts exactly: bare
    names resolve to the root part only, prefixed names to the *last*
    matching join part, and output keys enumerate root columns first
    then each part's prefixed columns in join order — repeated names
    keep the first position and the last value, like repeated ``dict``
    assignment.
    """

    __slots__ = ("_parts", "_length", "_cache", "_names")

    def __init__(
        self,
        parts: list[tuple[str | None, Table, Sequence[int]]],
        length: int,
    ) -> None:
        self._parts = parts
        self._length = length
        self._cache: dict[str, Sequence[Any] | None] = {}
        self._names: tuple[str, ...] | None = None

    # -- the Table surface the batched operators consume ----------------
    def bank_map(self) -> "_JoinColumns":
        return self

    def get(self, name: str, default: Any = None) -> Any:
        bank = self._column(name)
        return default if bank is None else bank

    def __getitem__(self, name: str) -> Sequence[Any]:
        bank = self._column(name)
        if bank is None:
            raise KeyError(name)
        return bank

    def views_for_slots(self, positions: Sequence[int]) -> Iterator[Row]:
        names = self.output_names()
        banks = [self._column(n) for n in names]
        return (
            dict(zip(names, (bank[p] for bank in banks)))
            for p in positions
        )

    def materialise_slots(
        self, positions: Sequence[int], columns: Sequence[str] | None = None
    ) -> list[Row]:
        if not len(positions):
            # Like Table.materialise_slots: the row path never touches a
            # column for zero rows, so unknown names stay silent here.
            return []
        if columns is None:
            names = self.output_names()
            if (
                positions == range(self._length)
                and len(set(names)) == len(names)
            ):
                # Full unprojected output with no shadowed columns (the
                # common join drain): gather every part's banks straight
                # through its hit list — no per-name resolution, and the
                # row dicts build in one C pipeline.
                selected: list[Sequence[Any]] = []
                for __, table, slots in self._parts:
                    banks_by_name = table.bank_map()
                    part_banks = [
                        banks_by_name[c] for c in table.schema.column_names
                    ]
                    if len(slots) > 1:
                        fetch = operator.itemgetter(*slots)
                        selected.extend(fetch(b) for b in part_banks)
                    else:
                        s = slots[0]
                        selected.extend((b[s],) for b in part_banks)
                return list(
                    map(dict, map(zip, repeat(names), zip(*selected)))
                )
            banks = [self._column(n) for n in names]
        else:
            names = tuple(columns)
            banks = []
            for name in names:
                bank = self._column(name)
                if bank is None:
                    # The row path's ``row[name]`` projection KeyError.
                    raise KeyError(name)
                banks.append(bank)
        if type(positions) is range:
            chosen: Sequence[Sequence[Any]] = banks
        elif len(positions) > 1:
            fetch = operator.itemgetter(*positions)
            chosen = [fetch(bank) for bank in banks]
        else:
            chosen = [[bank[p] for p in positions] for bank in banks]
        return list(map(dict, map(zip, repeat(names), zip(*chosen))))

    # -- resolution ------------------------------------------------------
    def output_names(self) -> tuple[str, ...]:
        if self._names is None:
            names: list[str] = []
            for prefix, table, __ in self._parts:
                if prefix is None:
                    names.extend(table.schema.column_names)
                else:
                    names.extend(
                        f"{prefix}.{c}" for c in table.schema.column_names
                    )
            self._names = tuple(names)
        return self._names

    def column_dtype(self, name: str) -> DataType | None:
        located = self._locate(name)
        if located is None:
            return None
        table, column, __ = located
        return table.schema.column(column).dtype

    def _locate(
        self, name: str
    ) -> tuple[Table, str, Sequence[int]] | None:
        if "." in name:
            prefix, column = name.split(".", 1)
            for part_prefix, table, slots in reversed(self._parts):
                if part_prefix == prefix and table.schema.has_column(column):
                    return table, column, slots
            return None
        root_prefix, root, slots = self._parts[0]
        if root_prefix is None and root.schema.has_column(name):
            return root, name, slots
        return None

    def _column(self, name: str) -> Sequence[Any] | None:
        cache = self._cache
        if name in cache:
            return cache[name]
        located = self._locate(name)
        if located is None:
            cache[name] = None
            return None
        table, column, slots = located
        source = table.bank_map()[column]
        if len(slots) > 1:
            bank: Sequence[Any] = operator.itemgetter(*slots)(source)
        else:
            bank = [source[s] for s in slots]
        cache[name] = bank
        return bank


def _batch_node(database: "Database", node: PlanNode) -> _Batch | None:
    """Columnar evaluation of ``node``, or ``None`` when the subtree
    needs the row path (aggregation roots, laziness-observable limits,
    skewed joins)."""
    if not _BATCH_MODE:
        return None
    if isinstance(node, SeqScan):
        table = database.table(node.table)
        return _Batch(table, table.scan_slots())
    if isinstance(node, (IndexEq, IndexInList, IndexOrUnion, IndexRange)):
        table = database.table(node.table)
        return _Batch(table, table.slots_for_ids(_access_ids(database, node)))
    if isinstance(node, Filter):
        batch = _batch_node(database, node.child)
        if batch is None:
            return None
        slots = _filter_slots(batch.table, node.predicate, batch.slots)
        return _Batch(batch.table, slots)
    if isinstance(node, (HashJoin, IndexNestedLoopJoin)):
        batch = _batch_node(database, node.child)
        if batch is None:
            return None
        return _batch_join(database, node, batch)
    if isinstance(node, Sort):
        batch = _batch_node(database, node.child)
        if batch is None:
            return None
        slots = _sorted_slots(
            batch.table, batch.slots, node.column, node.descending
        )
        return _Batch(batch.table, slots)
    if isinstance(node, TopN):
        if node.n == 0:
            # Row mode's islice(rows, 0) never pulls a row, so the child
            # (and any error it would surface) must not evaluate here
            # either.
            table = _batch_leaf_table(database, node.child)
            if table is None:
                return None
            return _Batch(table, [])
        if node.column is None:
            # A plain LIMIT: stop filtering once n rows survived, like
            # the row path's islice early exit.
            if _contains_join(node.child):
                # Eager join evaluation would pay for (and surface
                # errors from) rows behind the nth match that the row
                # path's early exit never reaches.
                return None
            child = node.child
            if isinstance(child, Filter):
                inner = _batch_node(database, child.child)
                if inner is None:
                    return None
                slots = _filter_slots_limited(
                    inner.table, child.predicate, inner.slots, node.n
                )
                return _Batch(inner.table, slots)
            batch = _batch_node(database, child)
            if batch is None:
                return None
            return _Batch(batch.table, list(batch.slots[: node.n]))
        batch = _batch_node(database, node.child)
        if batch is None:
            return None
        slots = _sorted_slots(
            batch.table, batch.slots, node.column, node.descending
        )
        return _Batch(batch.table, slots[: node.n])
    return None


_BATCH_LEAVES = (SeqScan, IndexEq, IndexInList, IndexOrUnion, IndexRange)


def _batch_leaf_table(database: "Database", node: PlanNode) -> Table | None:
    """The root table of a batchable subtree — without evaluating it."""
    while isinstance(
        node, (Filter, Sort, TopN, HashJoin, IndexNestedLoopJoin)
    ):
        node = node.child
    if isinstance(node, _BATCH_LEAVES):
        return database.table(node.table)
    return None


def _contains_join(node: PlanNode) -> bool:
    """Does the (unary) subtree under ``node`` contain a join?"""
    while True:
        if isinstance(node, (HashJoin, IndexNestedLoopJoin)):
            return True
        children = node.children()
        if not children:
            return False
        node = children[0]


def _access_ids(database: "Database", node: PlanNode) -> list[int]:
    """Row ids of an index access path, in the node's output order."""
    table = database.table(node.table)
    if isinstance(node, IndexEq):
        return table.lookup(node.column, node.value)
    if isinstance(node, IndexInList):
        return sorted(_in_list_ids(database, node))
    if isinstance(node, IndexOrUnion):
        return sorted(_or_union_ids(database, node))
    return _index_range_ids(database, node)


# Vectorized-join guardrails.  A build key covering most of a large
# inner table (skew), or an output pair count exploding past the cap,
# would make eager slot widening pay for the whole cross product up
# front; the row path streams those per-key chains lazily, so the
# batched join bails out and lets it.
_JOIN_SKEW_MIN = 4096
_JOIN_PAIR_FLOOR = 65536
_JOIN_PAIR_FACTOR = 16


def _batch_join(
    database: "Database",
    node: "HashJoin | IndexNestedLoopJoin",
    batch: _Batch,
) -> _Batch | None:
    """Columnar join: narrow parallel (outer position, inner slot) pair
    lists without widening a single row; ``None`` falls back to the row
    path (skew or pair-cap guard)."""
    inner = database.table(node.table)
    target = node.target_column
    dtype = inner.schema.column(target).dtype
    positions = batch.slots
    key_bank = batch.table.bank_map().get(node.column)
    if key_bank is None:
        # ``row.get(column)`` is None for every outer row: empty join.
        return _join_result(batch, node, inner, [], [])
    keys: Sequence[Any] = _select(key_bank, positions)
    if _outer_column_dtype(batch.table, node.column) is not dtype:
        # Cross-type join key: coerce each probe like the row path does.
        # Stored values of a same-typed column coerce to themselves, so
        # the common case skips this pass entirely; failures raise in
        # output order, exactly like the row path's per-row coerce.
        keys = [None if k is None else coerce(k, dtype) for k in keys]
    pair_cap = max(
        _JOIN_PAIR_FLOOR, _JOIN_PAIR_FACTOR * (len(keys) + len(inner))
    )
    hits: list[int] = []
    inner_hits: list[int] = []
    # Both join flavours probe the memoised slot-space build
    # (Table.slot_buckets): buckets hold inner slots in scan order, the
    # exact match sequence the row path produces via index lookups or
    # its per-query probe map.
    buckets = inner.slot_buckets(target)
    if (
        isinstance(node, HashJoin)
        and len(inner) >= _JOIN_SKEW_MIN
        and buckets
        and max(map(len, buckets.values())) * 2 > len(inner)
    ):
        return None  # skew guard: one dominant build key
    get = buckets.get
    for p, key in zip(positions, keys):
        if key is None:
            continue
        bucket = get(key)
        if bucket is None:
            continue
        if len(bucket) == 1:
            hits.append(p)
            inner_hits.append(bucket[0])
        else:
            hits.extend([p] * len(bucket))
            inner_hits.extend(bucket)
            if len(hits) > pair_cap:
                return None
    return _join_result(batch, node, inner, hits, inner_hits)


def _outer_column_dtype(
    table: "Table | _JoinColumns", column: str
) -> DataType | None:
    if isinstance(table, Table):
        schema = table.schema
        if not schema.has_column(column):
            return None
        return schema.column(column).dtype
    return table.column_dtype(column)


def _join_result(
    batch: _Batch,
    node: "HashJoin | IndexNestedLoopJoin",
    inner: Table,
    hits: list[int],
    inner_hits: list[int],
) -> _Batch:
    outer = batch.table
    if isinstance(outer, Table):
        parts: list[tuple[str | None, Table, Sequence[int]]] = [
            (None, outer, hits)
        ]
    else:
        parts = [
            (prefix, table, [slots[p] for p in hits])
            for prefix, table, slots in outer._parts
        ]
    parts.append((node.table, inner, inner_hits))
    return _Batch(_JoinColumns(parts, len(hits)), range(len(hits)))


# Chunk-size cap for limit-aware columnwise filtering.  Chunks grow
# geometrically from a small start, so a LIMIT an unselective predicate
# satisfies in the first rows touches a sliver of the table (like the
# row path's islice early exit) while a selective one quickly reaches
# C-dominated full-size chunks.
_FILTER_CHUNK = 4096
_FILTER_CHUNK_START = 64


def _filter_slots_limited(
    table: Table, predicate: Predicate, slots: Sequence[int], n: int
) -> list[int]:
    """At most ``n`` matching slots, row-path-identical under LIMIT.

    Chunks evaluate columnwise; an erroring chunk replays row by row,
    because the row path's islice early exit stops at the nth match and
    never evaluates the rows behind it — columnwise narrowing inside
    one chunk does.  The replay raises exactly when the erroring row
    precedes the nth match in row order, and returns the matches
    otherwise, so both modes stay byte- (and error-) identical.
    """
    out: list[int] = []
    total = len(slots)
    start = 0
    size = min(_FILTER_CHUNK_START, _FILTER_CHUNK)
    while start < total:
        end = min(start + size, total)
        chunk = slots[start:end]
        try:
            hits = _filter_slots(table, predicate, chunk)
        except Exception:
            # Row-order replay of this chunk: the set of (row, part)
            # evaluations matches columnwise narrowing, but the order
            # is row-major with the early exit, like islice.
            for slot, row in zip(chunk, table.views_for_slots(chunk)):
                if predicate.matches(row):
                    out.append(slot)
                    if len(out) >= n:
                        return out
            start = end
            size = min(size * 4, _FILTER_CHUNK)
            continue
        out.extend(hits)
        if len(out) >= n:
            return out[:n]
        start = end
        size = min(size * 4, _FILTER_CHUNK)
    return out


def _sorted_slots(
    table: Table, slots: Sequence[int], column: str, descending: bool
) -> list[int]:
    """Slots reordered by the column's ordering key — a stable sort, so
    ties keep the incoming order exactly like the row path's Sort/TopN."""
    if not len(slots):
        return []
    bank = table.bank_map().get(column)
    if bank is None:
        # The row path raises KeyError from ``row[column]`` as soon as a
        # sort key is computed, which happens iff there are rows.
        raise KeyError(column)
    return sorted(
        slots,
        key=lambda s: ordering_key(bank[s]),
        reverse=descending,
    )


# --- columnwise predicate evaluation --------------------------------------
#
# These reproduce Predicate.matches() exactly, clause by clause: NULLs
# never match a comparison, a TypeError during a comparison means False
# for that row, an unknown column raises QueryError — but only when a
# row actually reaches the comparison (an empty candidate set never
# evaluates, exactly like the row loop never calls matches()).

def _filter_slots(
    table: Table, predicate: Predicate, slots: Sequence[int]
) -> Sequence[int]:
    if isinstance(predicate, TruePredicate):
        return slots
    if isinstance(predicate, Comparison):
        return _comparison_slots(table, predicate, slots)
    if isinstance(predicate, And):
        # Sequential narrowing: a row rejected by an earlier part never
        # reaches a later one — the row path's all() short-circuit.
        for part in predicate.parts:
            slots = _filter_slots(table, part, slots)
        return slots
    if isinstance(predicate, Or):
        matched: set[int] = set()
        remaining = slots
        for part in predicate.parts:
            # Rows already matched never evaluate later disjuncts (the
            # row path's any() short-circuit), so errors and TypeErrors
            # surface for exactly the same rows.
            hits = _filter_slots(table, part, remaining)
            matched.update(hits)
            remaining = [s for s in remaining if s not in matched]
            if not remaining:
                break
        return [s for s in slots if s in matched]
    if isinstance(predicate, Not):
        matched = set(_filter_slots(table, predicate.part, slots))
        return [s for s in slots if s not in matched]
    # Unknown predicate subclass: evaluate row-wise through views.
    views = table.views_for_slots(slots)
    return [s for s, row in zip(slots, views) if predicate.matches(row)]


# C-level comparison functions for the columnwise evaluator — the same
# truth tables as Predicate._OPERATORS, minus one Python frame per row.
_COLUMN_OPS = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "in": lambda a, b: a in b,
}


def _comparison_slots(
    table: Table, predicate: Comparison, slots: Sequence[int]
) -> list[int]:
    if not len(slots):
        return []
    column = predicate.column
    bank = table.bank_map().get(column)
    if bank is None:
        raise QueryError(f"row has no column {column!r}")
    op = predicate.op
    value = predicate.value
    if op == "contains":
        if not isinstance(value, str):
            return []
        needle = value.lower()
        return [
            s for s in slots
            if isinstance(bank[s], str) and needle in bank[s].lower()
        ]
    op_fn = _COLUMN_OPS[op]
    try:
        return [
            s for s in slots
            if (v := bank[s]) is not None and op_fn(v, value)
        ]
    except TypeError:
        # Mixed-type comparison somewhere in the column: fall back to
        # the row path's per-value TypeError-means-False semantics.
        return [s for s in slots if _safe_match(op_fn, bank[s], value)]


def _safe_match(op_fn, actual: Any, value: Any) -> bool:
    if actual is None:
        return False
    try:
        return op_fn(actual, value)
    except TypeError:
        return False


# ---------------------------------------------------------------------------
# Operator dispatch (row mode / batch fallback boundary)
# ---------------------------------------------------------------------------

def _iterate(
    database: "Database", node: PlanNode
) -> tuple[Iterable[Row], bool]:
    """Return ``(row iterable, rows_are_fresh_dicts)`` for ``node``."""
    if isinstance(node, SeqScan):
        return database.table(node.table).iter_views(), False
    if isinstance(node, IndexEq):
        table = database.table(node.table)
        ids = table.lookup(node.column, node.value)
        return (table.row_view(rid) for rid in ids), False
    if isinstance(node, IndexInList):
        table = database.table(node.table)
        ids = sorted(_in_list_ids(database, node))
        return (table.row_view(rid) for rid in ids), False
    if isinstance(node, IndexOrUnion):
        table = database.table(node.table)
        ids = sorted(_or_union_ids(database, node))
        return (table.row_view(rid) for rid in ids), False
    if isinstance(node, IndexRange):
        return _index_range(database, node), False
    if isinstance(node, HashAggregate):
        return _hash_aggregate(database, node), True
    if isinstance(node, IndexAggScan):
        return _index_agg_scan(database, node), True
    if isinstance(node, IndexGroupedAggScan):
        return _index_grouped_agg_scan(database, node), True
    if isinstance(node, GroupSemiJoin):
        rows, fresh = _iterate(database, node.child)
        return _group_semi_join(database, node, rows), fresh
    if isinstance(node, Filter):
        batch = _batch_node(database, node)
        if batch is not None:
            return batch.table.views_for_slots(batch.slots), False
        rows, fresh = _iterate(database, node.child)
        predicate = node.predicate
        return (row for row in rows if predicate.matches(row)), fresh
    if isinstance(node, HashJoin):
        rows, __ = _iterate(database, node.child)
        return _hash_join(database, node, rows), True
    if isinstance(node, IndexNestedLoopJoin):
        rows, __ = _iterate(database, node.child)
        return _index_join(database, node, rows), True
    if isinstance(node, Sort):
        batch = _batch_node(database, node)
        if batch is not None:
            return batch.table.views_for_slots(batch.slots), False
        rows, fresh = _iterate(database, node.child)
        materialised = list(rows)
        materialised.sort(
            key=lambda row: ordering_key(row[node.column]),
            reverse=node.descending,
        )
        return materialised, fresh
    if isinstance(node, TopN):
        batch = _batch_node(database, node)
        if batch is not None:
            return batch.table.views_for_slots(batch.slots), False
        rows, fresh = _iterate(database, node.child)
        if node.column is None:
            return islice(rows, node.n), fresh
        return _top_n(rows, node.n, node.column, node.descending), fresh
    if isinstance(node, Project):
        batch = _batch_node(database, node.child)
        if batch is not None:
            return (
                batch.table.materialise_slots(batch.slots, node.columns),
                True,
            )
        rows, __ = _iterate(database, node.child)
        columns = node.columns
        return ({c: row[c] for c in columns} for row in rows), True
    raise QueryError(f"unknown plan node {type(node).__name__}")


# ---------------------------------------------------------------------------
# Access paths
# ---------------------------------------------------------------------------

def _index_range_ids(database: "Database", node: IndexRange) -> list[int]:
    """Row ids of an index-range access, in the node's output order."""
    table = database.table(node.table)
    index = table.ordered_index(node.column)
    if not node.sorted_output:
        # Pure filter access: re-establish row-id order so downstream
        # results are identical to a sequential scan.
        return sorted(
            index.range_ids(
                node.low, node.high, node.low_inclusive, node.high_inclusive
            )
        )
    # Value-ordered scan (satisfies ORDER BY).  Index entries exclude
    # NULLs; for an unbounded scan the NULL rows must still appear —
    # last for ascending, first for descending, in row-id order either
    # way, mirroring the stable sort the seed implementation performed.
    unbounded = node.low is None and node.high is None
    null_ids: list[int] = []
    if unbounded and len(index) < len(table):
        null_ids = [
            rid
            for rid, row in table.iter_view_items()
            if row[node.column] is None
        ]
    if node.descending:
        ranged = index.descending_range_ids(
            node.low, node.high, node.low_inclusive, node.high_inclusive
        )
        return null_ids + list(ranged)
    ranged = index.range_ids(
        node.low, node.high, node.low_inclusive, node.high_inclusive
    )
    return list(ranged) + null_ids


def _index_range(database: "Database", node: IndexRange) -> Iterator[Row]:
    table = database.table(node.table)
    for rid in _index_range_ids(database, node):
        yield table.row_view(rid)


def _top_n(
    rows: Iterable[Row], n: int, column: str, descending: bool
) -> Iterator[Row]:
    if n == 0:
        return iter(())
    if descending:
        picked = heapq.nlargest(
            n,
            enumerate(rows),
            key=lambda item: (ordering_key(item[1][column]), _Rev(item[0])),
        )
    else:
        picked = heapq.nsmallest(
            n,
            enumerate(rows),
            key=lambda item: (ordering_key(item[1][column]), item[0]),
        )
    return iter([row for __, row in picked])


class _Rev:
    """Inverts comparisons so ``nlargest`` tie-breaks on arrival order."""

    __slots__ = ("value",)

    def __init__(self, value: int) -> None:
        self.value = value

    def __lt__(self, other: "_Rev") -> bool:
        return self.value > other.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Rev) and self.value == other.value


# ---------------------------------------------------------------------------
# Joins
# ---------------------------------------------------------------------------

def _hash_join(
    database: "Database", node: HashJoin, outer_rows: Iterable[Row]
) -> Iterator[Row]:
    inner = database.table(node.table)
    dtype = inner.schema.column(node.target_column).dtype
    probe = build_probe_map(inner, node.target_column)
    prefix = node.table
    for row in outer_rows:
        key = row.get(node.column)
        if key is None:
            continue
        needle = coerce(key, dtype)
        if needle is None:
            continue
        for rid in probe.get(needle, ()):
            match = inner.row_view(rid)
            widened = dict(row)
            for other_col, value in match.items():
                widened[f"{prefix}.{other_col}"] = value
            yield widened


def _index_join(
    database: "Database", node: IndexNestedLoopJoin, outer_rows: Iterable[Row]
) -> Iterator[Row]:
    inner = database.table(node.table)
    prefix = node.table
    for row in outer_rows:
        key = row.get(node.column)
        if key is None:
            continue
        for rid in inner.lookup(node.target_column, key):
            match = inner.row_view(rid)
            widened = dict(row)
            for other_col, value in match.items():
                widened[f"{prefix}.{other_col}"] = value
            yield widened


# ---------------------------------------------------------------------------
# Probe unions (IN-list, OR of equalities)
# ---------------------------------------------------------------------------

def _in_list_ids(database: "Database", node: IndexInList) -> set[int]:
    """Deduplicated row ids matched by any of the IN-list probes."""
    table = database.table(node.table)
    ids: set[int] = set()
    for value in node.values:
        ids.update(table.lookup(node.column, value))
    return ids


def _or_union_ids(database: "Database", node: IndexOrUnion) -> set[int]:
    """Deduplicated row ids matched by any of the OR's equality probes."""
    table = database.table(node.table)
    ids: set[int] = set()
    for column, value in node.probes:
        ids.update(table.lookup(column, value))
    return ids


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------
#
# The aggregation operators must reproduce repro.db.aggregation.aggregate()
# exactly: groups in first-appearance order, NULL values skipped by
# column aggregates (COUNT(*) keeps them), sum() folding left-to-right
# from 0, min/max keeping the first extremal value, empty global group
# producing one row.  When the child is a batchable scan the reductions
# run straight over the column banks (the default); otherwise the
# single-key single-aggregate shapes get tight one-pass accumulator
# loops over the row stream and everything else banks row views per
# group — no row is ever copied on any path.

def _group_key_error(exc: KeyError) -> QueryError:
    return QueryError(f"unknown group-by column {exc.args[0]!r}")


def _hash_aggregate(database: "Database", node: HashAggregate) -> list[Row]:
    batch = _batch_node(database, node.child)
    if batch is not None:
        return _banked_aggregate(
            batch.table, batch.slots, node.group_by, node.aggregates
        )
    rows, __ = _iterate(database, node.child)
    exprs = node.aggregates
    keys = node.group_by
    if not keys:
        return _global_aggregate(rows, exprs)
    if len(keys) == 1 and len(exprs) == 1:
        result = _single_key_single_agg(rows, keys[0], exprs[0])
        if result is not None:
            return result
    return _generic_aggregate(rows, keys, exprs)


# --- banked (columnar) aggregation ----------------------------------------

def _select(bank: list, slots: Sequence[int]) -> Sequence[Any]:
    """The bank values at ``slots`` (the bank itself for a full range)."""
    if type(slots) is range:
        # A snapshot's range is a prefix: concurrent appends may have
        # grown the bank past it, so only alias the bank when whole.
        if len(bank) == slots.stop:
            return bank
        return bank[: slots.stop]
    return [bank[s] for s in slots]


def _banked_aggregate(
    table: Table,
    slots: Sequence[int],
    keys: tuple[str, ...],
    exprs: tuple[AggExpr, ...],
) -> list[Row]:
    banks = table.bank_map()
    if not keys:
        out: Row = {}
        for expr in exprs:
            out[expr.name] = _reduce_bank(expr, banks, slots)
        return [out]
    key_banks = []
    for key in keys:
        bank = banks.get(key)
        if bank is None:
            if not len(slots):
                return []
            raise _group_key_error(KeyError(key))
        key_banks.append(bank)
    if len(keys) == 1 and len(exprs) == 1:
        result = _banked_single_key_single_agg(
            key_banks[0], banks, slots, keys[0], exprs[0]
        )
        if result is not None:
            return result
    # Generic: bank slot lists per group, reduce each column list.
    groups: dict[Any, list[int]]
    if len(keys) == 1:
        key_bank = key_banks[0]
        groups = {}
        lookup = groups.get
        for s in slots:
            k = key_bank[s]
            bucket = lookup(k)
            if bucket is None:
                groups[k] = bucket = []
            bucket.append(s)
        key_col = keys[0]
        result = []
        for k, bucket in groups.items():
            out = {key_col: k}
            for expr in exprs:
                out[expr.name] = _reduce_bank(expr, banks, bucket)
            result.append(out)
        return result
    groups = {}
    lookup = groups.get
    for s in slots:
        k = tuple(bank[s] for bank in key_banks)
        bucket = lookup(k)
        if bucket is None:
            groups[k] = bucket = []
        bucket.append(s)
    result = []
    for k, bucket in groups.items():
        out = dict(zip(keys, k))
        for expr in exprs:
            out[expr.name] = _reduce_bank(expr, banks, bucket)
        result.append(out)
    return result


def _banked_single_key_single_agg(
    key_bank: list,
    banks: dict[str, list],
    slots: Sequence[int],
    key_col: str,
    expr: AggExpr,
) -> list[Row] | None:
    """One-pass zipped-bank loops for the hot aggregate shapes."""
    kind = expr.kind
    name = expr.name
    keys_seq = _select(key_bank, slots)
    if kind == "count":
        counts = Counter(keys_seq)
        return [{key_col: k, name: n} for k, n in counts.items()]
    value_bank = banks.get(expr.column)
    if value_bank is None:
        # ``row.get(column)`` yields None for every row: groups still
        # enumerate in first-appearance order with their empty-group
        # defaults.
        default = 0 if kind in ("sum", "count_distinct") else None
        return [
            {key_col: k, name: default} for k in dict.fromkeys(keys_seq)
        ]
    return _single_key_pairs_agg(
        zip(keys_seq, _select(value_bank, slots)), kind, key_col, name
    )


def _single_key_pairs_agg(
    pairs: Iterable[tuple[Any, Any]], kind: str, key_col: str, name: str
) -> list[Row] | None:
    """The single-key accumulator loops, shared by the banked and the
    row-stream paths — both feed ``(group key, value)`` pairs; NULL
    handling and first-appearance group order live here, once."""
    if kind == "sum":
        totals: dict[Any, Any] = {}
        lookup = totals.get
        for k, v in pairs:
            t = lookup(k)
            if t is None:  # totals never store None
                t = 0
            totals[k] = t if v is None else t + v
        return [{key_col: k, name: t} for k, t in totals.items()]
    if kind in ("min", "max"):
        keep_smaller = kind == "min"
        best: dict[Any, Any] = {}
        for k, v in pairs:
            if k not in best:
                best[k] = v
            elif v is not None:
                b = best[k]
                if b is None or (v < b if keep_smaller else v > b):
                    best[k] = v
        return [{key_col: k, name: b} for k, b in best.items()]
    if kind == "avg":
        totals = {}
        counts_by_key: dict[Any, int] = {}
        for k, v in pairs:
            if k not in totals:
                totals[k] = 0
                counts_by_key[k] = 0
            if v is not None:
                totals[k] = totals[k] + v
                counts_by_key[k] += 1
        return [
            {key_col: k, name: (t / counts_by_key[k]
                                if counts_by_key[k] else None)}
            for k, t in totals.items()
        ]
    if kind == "count_distinct":
        seen: dict[Any, set] = {}
        for k, v in pairs:
            if k not in seen:
                seen[k] = set()
            if v is not None:
                seen[k].add(v)
        return [{key_col: k, name: len(s)} for k, s in seen.items()]
    return None  # pragma: no cover - all known kinds are specialised


def _reduce_bank(
    expr: AggExpr, banks: dict[str, list], slots: Sequence[int]
) -> Any:
    """Reduce one slot group from the banks, like ``Aggregate.apply``."""
    kind = expr.kind
    if kind == "count":
        return len(slots)
    bank = banks.get(expr.column)
    if bank is None:
        values: list = []
    else:
        values = [v for s in slots if (v := bank[s]) is not None]
    return _reduce_values(kind, values)


def _reduce_values(kind: str, values: list) -> Any:
    if kind == "sum":
        return sum(values) if values else 0
    if kind == "avg":
        return sum(values) / len(values) if values else None
    if kind == "min":
        return min(values) if values else None
    if kind == "max":
        return max(values) if values else None
    if kind == "count_distinct":
        return len(set(values))
    raise QueryError(  # pragma: no cover - planner only emits known kinds
        f"unknown aggregate kind {kind!r}"
    )


# --- row-stream aggregation (fallback) ------------------------------------

def _single_key_single_agg(
    rows: Iterable[Row], key_col: str, expr: AggExpr
) -> list[Row] | None:
    """Specialised one-pass loops for the hot aggregate shapes."""
    kind = expr.kind
    name = expr.name
    col = expr.column
    try:
        if kind == "count":
            counts = Counter(row[key_col] for row in rows)
            return [{key_col: k, name: n} for k, n in counts.items()]
        pairs = ((row[key_col], row.get(col)) for row in rows)
        return _single_key_pairs_agg(pairs, kind, key_col, name)
    except KeyError as exc:
        raise _group_key_error(exc) from None


def _global_aggregate(rows: Iterable[Row], exprs: tuple[AggExpr, ...]) -> list[Row]:
    """The single implicit group: one output row, even for empty input."""
    banked = rows if isinstance(rows, list) else list(rows)
    out: Row = {}
    for expr in exprs:
        out[expr.name] = _reduce_group(expr, banked)
    return [out]


def _generic_aggregate(
    rows: Iterable[Row], keys: tuple[str, ...], exprs: tuple[AggExpr, ...]
) -> list[Row]:
    """Group-hash with banked row *views* and vectorised reductions.

    One pass banks each row's view (no copy) under its group key, then
    every aggregate reduces its group with C-level builtins — the same
    reductions the baseline performs, minus the per-row dict copies and
    per-row accumulator dispatch that would dominate multi-aggregate
    grouping.
    """
    result: list[Row] = []
    lookup: Any
    try:
        if len(keys) == 1:
            key_col = keys[0]
            scalar_groups: dict[Any, list[Row]] = {}
            lookup = scalar_groups.get
            for row in rows:
                k = row[key_col]
                bank = lookup(k)
                if bank is None:
                    scalar_groups[k] = bank = []
                bank.append(row)
            for k, bank in scalar_groups.items():
                out: Row = {key_col: k}
                for expr in exprs:
                    out[expr.name] = _reduce_group(expr, bank)
                result.append(out)
            return result
        groups: dict[tuple, list[Row]] = {}
        lookup = groups.get
        for row in rows:
            key = tuple(row[k] for k in keys)
            bank = lookup(key)
            if bank is None:
                groups[key] = bank = []
            bank.append(row)
    except KeyError as exc:
        raise _group_key_error(exc) from None
    for key, bank in groups.items():
        out = dict(zip(keys, key))
        for expr in exprs:
            out[expr.name] = _reduce_group(expr, bank)
        result.append(out)
    return result


def _reduce_group(expr: AggExpr, rows: list[Row]) -> Any:
    """Reduce one group exactly like ``Aggregate.apply`` does."""
    kind = expr.kind
    if kind == "count":
        return len(rows)
    column = expr.column
    values = [
        row[column] for row in rows if row.get(column) is not None
    ]
    return _reduce_values(kind, values)


def _index_agg_scan(database: "Database", node: IndexAggScan) -> list[Row]:
    """Aggregates answered from index structures without visiting rows."""
    table = database.table(node.table)
    out: Row = {}
    for agg in node.aggregates:
        if agg.kind == "count":
            out[agg.name] = len(table)
        elif agg.kind == "count_distinct":
            out[agg.name] = table.distinct_count(agg.column)
        else:  # min/max via the ordered index
            index = table.ordered_index(agg.column)
            rid = index.first_id() if agg.kind == "min" else index.last_id()
            out[agg.name] = (
                None if rid is None else table.row_view(rid)[agg.column]
            )
    return [out]


def _index_grouped_agg_scan(
    database: "Database", node: IndexGroupedAggScan
) -> list[Row]:
    """Whole-table group-by answered from the hash index's buckets.

    The index already partitions the table by group key, so grouping
    costs nothing: the buckets flatten (once per table generation, see
    ``Table.grouped_layout``) into a slot list clustered by group, and
    exact reductions — counts, integer sums and averages — collapse to
    segment arithmetic over one C-level prefix sum instead of a
    scattered accumulator-dict pass.  Counts never visit a row at all.
    Order-sensitive or non-segmentable reductions (floats, min/max,
    distinct counts) and NULL group keys fall back to the banked
    scan.  In row mode the node streams the table like
    ``HashAggregate`` would, keeping the two modes' work (and the
    benchmark baseline) honest.
    """
    table = database.table(node.table)
    key = node.key
    exprs = node.aggregates
    if not _BATCH_MODE:
        rows = table.iter_views()
        if len(exprs) == 1:
            result = _single_key_single_agg(rows, key, exprs[0])
            if result is not None:
                return result
            rows = table.iter_views()
        return _generic_aggregate(rows, (key,), exprs)
    if all(_segmentable(table, e) for e in exprs):
        # Sealed tables answer from the two-part grouped reduce: the
        # sealed per-group state is epoch-memoised, so a commit between
        # turns costs O(groups + delta) here instead of re-flattening
        # the layout and re-running the prefix sums over the table.
        reduce = table.grouped_reduce(key)
        if reduce is not None:
            return _reduced_grouped_agg(key, exprs, reduce)
        layout = table.grouped_layout(key)
        if layout is not None:
            return _segmented_grouped_agg(table, key, exprs, layout)
    return _banked_aggregate(table, table.scan_slots(), (key,), exprs)


def _reduced_grouped_agg(
    key: str, exprs: tuple[AggExpr, ...], reduce: GroupedReduce
) -> list[Row]:
    """Emit grouped-aggregate rows straight off a two-part reduce.

    Group keys and counts are already merged; sums and averages read
    the per-group ``(sum, non-NULL count)`` pairs, where averaging by
    the non-NULL count matches both of the segmented path's branches
    (with no NULLs in a group, that count equals the group size).
    """
    keys = reduce.keys
    columns: list[Iterable] = []
    for expr in exprs:
        if expr.kind == "count":
            columns.append(reduce.sizes)
            continue
        sums, nn = reduce.sums(expr.column)
        if expr.kind == "sum":
            columns.append(sums)
        else:
            columns.append(
                t / c if c else None for t, c in zip(sums, nn)
            )
    if len(exprs) == 1:
        name = exprs[0].name
        return [{key: k, name: v} for k, v in zip(keys, columns[0])]
    names = (key, *(e.name for e in exprs))
    return [dict(zip(names, row)) for row in zip(keys, *columns)]


def _segmentable(table: Table, expr: AggExpr) -> bool:
    """Reductions a grouped layout can answer with segment arithmetic.

    Counts read group sizes straight off the layout; sums and averages
    difference a prefix sum, which is only exact — and only matches the
    row path's left-to-right fold — for integer (and boolean) values.
    """
    if expr.kind == "count":
        return True
    if expr.kind not in ("sum", "avg"):
        return False
    schema = table.schema
    return (
        expr.column is not None
        and schema.has_column(expr.column)
        and schema.column(expr.column).dtype
        in (DataType.INTEGER, DataType.BOOLEAN)
    )


def _segmented_grouped_agg(
    table: Table,
    key: str,
    exprs: tuple[AggExpr, ...],
    layout: tuple[list, list[int], list[int]],
) -> list[Row]:
    """Reduce each layout segment with C-level primitives.

    ``bounds`` frames group ``i`` as ``flat[bounds[i]:bounds[i + 1]]``,
    and the memoised prefix sums over the clustered values
    (:meth:`Table.grouped_tallies`) turn every group sum into one
    subtraction — the whole reduction is ``map`` machinery plus the
    output-row construction, with no per-row Python frame.
    """
    keys, flat, bounds = layout
    starts = bounds[:-1]
    ends = bounds[1:]
    sub = operator.sub
    if len(exprs) == 1:
        expr = exprs[0]
        name = expr.name
        if expr.kind == "count":
            return [
                {key: k, name: n}
                for k, n in zip(keys, map(sub, ends, starts))
            ]
        tg = table.grouped_tallies(key, expr.column)[0].__getitem__
        if expr.kind == "sum":
            return [
                {key: k, name: hi - lo}
                for k, hi, lo in zip(keys, map(tg, ends), map(tg, starts))
            ]
    columns: list[Iterable] = []
    for expr in exprs:
        if expr.kind == "count":
            columns.append(map(sub, ends, starts))
            continue
        tallies, counts = table.grouped_tallies(key, expr.column)
        sums = map(
            sub, map(tallies.__getitem__, ends),
            map(tallies.__getitem__, starts),
        )
        if expr.kind == "sum":
            columns.append(sums)
        elif counts is None:
            # Average over NOT NULL values: count == group size.
            columns.append(
                t / c for t, c in zip(sums, map(sub, ends, starts))
            )
        else:
            nn = map(
                sub, map(counts.__getitem__, ends),
                map(counts.__getitem__, starts),
            )
            columns.append(
                t / c if c else None for t, c in zip(sums, nn)
            )
    if len(exprs) == 1:
        name = exprs[0].name
        return [{key: k, name: v} for k, v in zip(keys, columns[0])]
    names = (key, *(e.name for e in exprs))
    return [dict(zip(names, row)) for row in zip(keys, *columns)]


def _group_semi_join(
    database: "Database", node: GroupSemiJoin, rows: Iterable[Row]
) -> list[Row]:
    """Keep aggregate-output rows whose group key matches ``table``.

    The residue of a join pushed below the aggregate: the join's only
    observable effect on the grouped output was dropping groups without
    a partner (the target is unique, so fanout never exceeds one), and
    one index probe per *group* reproduces that.  Probing is eager —
    the join this replaces ran before anything above it, so a probe
    error (a group key that does not coerce to the target's type) must
    surface before a HAVING filter evaluates a single group.
    """
    inner = database.table(node.table)
    column = node.column
    target = node.target_column
    out: list[Row] = []
    for row in rows:
        key = row.get(column)
        if key is None:
            continue
        if inner.lookup(target, key):
            out.append(row)
    return out


# ---------------------------------------------------------------------------
# Plan-mode introspection (EXPLAIN annotations)
# ---------------------------------------------------------------------------

def _subtree_batchable(node: PlanNode) -> bool:
    """Would ``_batch_node`` attempt ``node`` columnwise (ignoring the
    data-dependent skew/pair-cap fallbacks it can only see at run
    time)?"""
    if isinstance(node, _BATCH_LEAVES):
        return True
    if isinstance(node, (Filter, Sort, HashJoin, IndexNestedLoopJoin)):
        return _subtree_batchable(node.child)
    if isinstance(node, TopN):
        if node.n > 0 and node.column is None and _contains_join(node.child):
            return False
        return _subtree_batchable(node.child)
    return False


def plan_mode(node: PlanNode) -> str:
    """``"batch"`` or ``"row"``: how the executor would run ``node``."""
    if not _BATCH_MODE and not isinstance(node, IndexAggScan):
        return "row"
    if isinstance(node, (IndexAggScan, IndexGroupedAggScan)):
        return "batch"
    if isinstance(node, GroupSemiJoin):
        return "row"
    if isinstance(node, (HashAggregate, Project)):
        return "batch" if _subtree_batchable(node.child) else "row"
    if isinstance(node, CountOnly):
        child = node.child
        if isinstance(child, SeqScan):
            return "batch"
        if node.limit is not None and _contains_join(child):
            return "row"
        return "batch" if _subtree_batchable(child) else "row"
    return "batch" if _subtree_batchable(node) else "row"
