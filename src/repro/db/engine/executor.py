"""Physical plan execution.

Operators are generators over row dicts.  Scans yield the table's
*internal* row dicts (views) to avoid one copy per visited row — the
output boundary copies any view that survives to the result, so callers
always receive fresh dicts (exactly as the seed ``Query.run()`` did).
Joins and projections build fresh dicts, so nothing downstream of them
needs copying.

Ordering contracts (these keep results byte-for-byte identical to the
seed scan-everything implementation):

* access paths emit rows in ascending row-id order — an
  :class:`IndexRange` used purely as a filter re-sorts its matches by
  row id; one used to satisfy ORDER BY walks the index in value order,
  which equals the stable sort of a row-id scan because index entries
  tie-break on row id;
* joins preserve outer order and emit inner matches in row-id order;
* Sort is a stable sort; TopN tie-breaks on arrival order in both
  directions, matching ``sorted(...)[:n]`` / ``sorted(..., reverse=True)[:n]``.
"""

from __future__ import annotations

import heapq
from itertools import islice
from typing import TYPE_CHECKING, Any, Iterable, Iterator

from collections import Counter

from repro.db.engine.plan import (
    AggExpr,
    CountOnly,
    Filter,
    HashAggregate,
    HashJoin,
    IndexAggScan,
    IndexEq,
    IndexInList,
    IndexNestedLoopJoin,
    IndexRange,
    PlanNode,
    Project,
    SeqScan,
    Sort,
    TopN,
)
from repro.db.ordering import ordering_key
from repro.db.table import Row
from repro.db.types import coerce
from repro.errors import QueryError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.db.database import Database

__all__ = [
    "execute_plan",
    "execute_rows",
    "execute_count",
    "execute_row_ids",
    "build_probe_map",
]


def execute_plan(database: "Database", plan: PlanNode) -> list[Row] | int:
    """Run ``plan``; a CountOnly root returns an int, otherwise rows."""
    if isinstance(plan, CountOnly):
        return execute_count(database, plan)
    return execute_rows(database, plan)


def execute_rows(database: "Database", plan: PlanNode) -> list[Row]:
    """Materialise ``plan``'s output as fresh row dicts."""
    rows, fresh = _iterate(database, plan)
    if fresh:
        return list(rows)
    return [dict(row) for row in rows]


def execute_count(database: "Database", plan: CountOnly) -> int:
    """Count matching rows without materialising or projecting them."""
    child = plan.child
    if isinstance(child, SeqScan):
        # No predicate, no joins: the table knows its cardinality.
        count = len(database.table(child.table))
    else:
        rows, __ = _iterate(database, child)
        count = 0
        for __row in rows:
            count += 1
            if plan.limit is not None and count >= plan.limit:
                break
    if plan.limit is not None:
        count = min(count, plan.limit)
    return count


def execute_row_ids(database: "Database", plan: PlanNode) -> list[int]:
    """Root-table row ids for an access-path/filter-only plan.

    Used by the candidate tracker, which keys its snapshots on internal
    row ids rather than materialised rows.  Joins, sorts and projections
    do not preserve root ids, so such plans are rejected.
    """
    if isinstance(plan, Filter):
        ids = execute_row_ids(database, plan.child)
        table = database.table(_leaf_table(plan))
        predicate = plan.predicate
        return [
            rid for rid in ids if predicate.matches(table.row_view(rid))
        ]
    if isinstance(plan, SeqScan):
        return database.table(plan.table).row_ids()
    if isinstance(plan, IndexEq):
        return database.table(plan.table).lookup(plan.column, plan.value)
    if isinstance(plan, IndexInList):
        return sorted(_in_list_ids(database, plan))
    if isinstance(plan, IndexRange):
        index = database.table(plan.table).ordered_index(plan.column)
        return sorted(
            index.range_ids(
                plan.low, plan.high, plan.low_inclusive, plan.high_inclusive
            )
        )
    raise QueryError(
        f"plan node {type(plan).__name__} does not preserve root row ids"
    )


def _leaf_table(plan: PlanNode) -> str:
    node = plan
    while True:
        children = node.children()
        if not children:
            break
        node = children[0]
    table = getattr(node, "table", None)
    if table is None:  # pragma: no cover - all leaves carry a table
        raise QueryError(f"leaf node {type(node).__name__} has no table")
    return table


def build_probe_map(table, column: str) -> dict[Any, list[int]]:
    """``value -> row ids`` (ascending) for one column — the build side
    of a hash join.  Values are the stored, canonical column values;
    NULLs are excluded.  Shared with the dataaware join-path walker.
    """
    probe: dict[Any, list[int]] = {}
    for rid, row in table.iter_view_items():
        value = row[column]
        if value is None:
            continue
        probe.setdefault(value, []).append(rid)
    return probe


# ---------------------------------------------------------------------------
# Operator dispatch
# ---------------------------------------------------------------------------

def _iterate(
    database: "Database", node: PlanNode
) -> tuple[Iterable[Row], bool]:
    """Return ``(row iterable, rows_are_fresh_dicts)`` for ``node``."""
    if isinstance(node, SeqScan):
        return database.table(node.table).iter_views(), False
    if isinstance(node, IndexEq):
        table = database.table(node.table)
        ids = table.lookup(node.column, node.value)
        return (table.row_view(rid) for rid in ids), False
    if isinstance(node, IndexInList):
        table = database.table(node.table)
        ids = sorted(_in_list_ids(database, node))
        return (table.row_view(rid) for rid in ids), False
    if isinstance(node, IndexRange):
        return _index_range(database, node), False
    if isinstance(node, HashAggregate):
        return _hash_aggregate(database, node), True
    if isinstance(node, IndexAggScan):
        return _index_agg_scan(database, node), True
    if isinstance(node, Filter):
        rows, fresh = _iterate(database, node.child)
        predicate = node.predicate
        return (row for row in rows if predicate.matches(row)), fresh
    if isinstance(node, HashJoin):
        rows, __ = _iterate(database, node.child)
        return _hash_join(database, node, rows), True
    if isinstance(node, IndexNestedLoopJoin):
        rows, __ = _iterate(database, node.child)
        return _index_join(database, node, rows), True
    if isinstance(node, Sort):
        rows, fresh = _iterate(database, node.child)
        materialised = list(rows)
        materialised.sort(
            key=lambda row: ordering_key(row[node.column]),
            reverse=node.descending,
        )
        return materialised, fresh
    if isinstance(node, TopN):
        rows, fresh = _iterate(database, node.child)
        if node.column is None:
            return islice(rows, node.n), fresh
        return _top_n(rows, node.n, node.column, node.descending), fresh
    if isinstance(node, Project):
        rows, __ = _iterate(database, node.child)
        columns = node.columns
        return ({c: row[c] for c in columns} for row in rows), True
    raise QueryError(f"unknown plan node {type(node).__name__}")


# ---------------------------------------------------------------------------
# Access paths
# ---------------------------------------------------------------------------

def _index_range(database: "Database", node: IndexRange) -> Iterator[Row]:
    table = database.table(node.table)
    index = table.ordered_index(node.column)
    if not node.sorted_output:
        # Pure filter access: re-establish row-id order so downstream
        # results are identical to a sequential scan.
        ids = sorted(
            index.range_ids(
                node.low, node.high, node.low_inclusive, node.high_inclusive
            )
        )
        for rid in ids:
            yield table.row_view(rid)
        return
    # Value-ordered scan (satisfies ORDER BY).  Index entries exclude
    # NULLs; for an unbounded scan the NULL rows must still appear —
    # last for ascending, first for descending, in row-id order either
    # way, mirroring the stable sort the seed implementation performed.
    unbounded = node.low is None and node.high is None
    null_ids: list[int] = []
    if unbounded and len(index) < len(table):
        null_ids = [
            rid
            for rid, row in table.iter_view_items()
            if row[node.column] is None
        ]
    if node.descending:
        for rid in null_ids:
            yield table.row_view(rid)
        for rid in index.descending_range_ids(
            node.low, node.high, node.low_inclusive, node.high_inclusive
        ):
            yield table.row_view(rid)
    else:
        for rid in index.range_ids(
            node.low, node.high, node.low_inclusive, node.high_inclusive
        ):
            yield table.row_view(rid)
        for rid in null_ids:
            yield table.row_view(rid)


def _top_n(
    rows: Iterable[Row], n: int, column: str, descending: bool
) -> Iterator[Row]:
    if n == 0:
        return iter(())
    if descending:
        picked = heapq.nlargest(
            n,
            enumerate(rows),
            key=lambda item: (ordering_key(item[1][column]), _Rev(item[0])),
        )
    else:
        picked = heapq.nsmallest(
            n,
            enumerate(rows),
            key=lambda item: (ordering_key(item[1][column]), item[0]),
        )
    return iter([row for __, row in picked])


class _Rev:
    """Inverts comparisons so ``nlargest`` tie-breaks on arrival order."""

    __slots__ = ("value",)

    def __init__(self, value: int) -> None:
        self.value = value

    def __lt__(self, other: "_Rev") -> bool:
        return self.value > other.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Rev) and self.value == other.value


# ---------------------------------------------------------------------------
# Joins
# ---------------------------------------------------------------------------

def _hash_join(
    database: "Database", node: HashJoin, outer_rows: Iterable[Row]
) -> Iterator[Row]:
    inner = database.table(node.table)
    dtype = inner.schema.column(node.target_column).dtype
    probe = build_probe_map(inner, node.target_column)
    prefix = node.table
    for row in outer_rows:
        key = row.get(node.column)
        if key is None:
            continue
        needle = coerce(key, dtype)
        if needle is None:
            continue
        for rid in probe.get(needle, ()):
            match = inner.row_view(rid)
            widened = dict(row)
            for other_col, value in match.items():
                widened[f"{prefix}.{other_col}"] = value
            yield widened


def _index_join(
    database: "Database", node: IndexNestedLoopJoin, outer_rows: Iterable[Row]
) -> Iterator[Row]:
    inner = database.table(node.table)
    prefix = node.table
    for row in outer_rows:
        key = row.get(node.column)
        if key is None:
            continue
        for rid in inner.lookup(node.target_column, key):
            match = inner.row_view(rid)
            widened = dict(row)
            for other_col, value in match.items():
                widened[f"{prefix}.{other_col}"] = value
            yield widened


# ---------------------------------------------------------------------------
# IN-list probe union
# ---------------------------------------------------------------------------

def _in_list_ids(database: "Database", node: IndexInList) -> set[int]:
    """Deduplicated row ids matched by any of the IN-list probes."""
    table = database.table(node.table)
    ids: set[int] = set()
    for value in node.values:
        ids.update(table.lookup(node.column, value))
    return ids


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------
#
# The aggregation operators must reproduce repro.db.aggregation.aggregate()
# exactly: groups in first-appearance order, NULL values skipped by
# column aggregates (COUNT(*) keeps them), sum() folding left-to-right
# from 0, min/max keeping the first extremal value, empty global group
# producing one row.  The single-key single-aggregate shapes that
# dominate the serving workload get tight one-pass accumulator loops;
# everything else banks row views per group in one pass and reduces
# each group with C-level builtins — either way no row is ever copied.

def _group_key_error(exc: KeyError) -> QueryError:
    return QueryError(f"unknown group-by column {exc.args[0]!r}")


def _hash_aggregate(database: "Database", node: HashAggregate) -> list[Row]:
    rows, __ = _iterate(database, node.child)
    exprs = node.aggregates
    keys = node.group_by
    if not keys:
        return _global_aggregate(rows, exprs)
    if len(keys) == 1 and len(exprs) == 1:
        result = _single_key_single_agg(rows, keys[0], exprs[0])
        if result is not None:
            return result
    return _generic_aggregate(rows, keys, exprs)


def _single_key_single_agg(
    rows: Iterable[Row], key_col: str, expr: AggExpr
) -> list[Row] | None:
    """Specialised one-pass loops for the hot aggregate shapes."""
    kind = expr.kind
    name = expr.name
    col = expr.column
    try:
        if kind == "count":
            counts = Counter(row[key_col] for row in rows)
            return [{key_col: k, name: n} for k, n in counts.items()]
        if kind == "sum":
            totals: dict[Any, Any] = {}
            lookup = totals.get
            for row in rows:
                k = row[key_col]
                v = row.get(col)
                t = lookup(k)
                if t is None:  # totals never store None
                    t = 0
                totals[k] = t if v is None else t + v
            return [{key_col: k, name: t} for k, t in totals.items()]
        if kind in ("min", "max"):
            keep_smaller = kind == "min"
            best: dict[Any, Any] = {}
            for row in rows:
                k = row[key_col]
                v = row.get(col)
                if k not in best:
                    best[k] = v
                elif v is not None:
                    b = best[k]
                    if b is None or (v < b if keep_smaller else v > b):
                        best[k] = v
            return [{key_col: k, name: b} for k, b in best.items()]
        if kind == "avg":
            totals = {}
            counts_by_key: dict[Any, int] = {}
            for row in rows:
                k = row[key_col]
                v = row.get(col)
                if k not in totals:
                    totals[k] = 0
                    counts_by_key[k] = 0
                if v is not None:
                    totals[k] = totals[k] + v
                    counts_by_key[k] += 1
            return [
                {key_col: k, name: (t / counts_by_key[k]
                                    if counts_by_key[k] else None)}
                for k, t in totals.items()
            ]
        if kind == "count_distinct":
            seen: dict[Any, set] = {}
            for row in rows:
                k = row[key_col]
                v = row.get(col)
                if k not in seen:
                    seen[k] = set()
                if v is not None:
                    seen[k].add(v)
            return [{key_col: k, name: len(s)} for k, s in seen.items()]
    except KeyError as exc:
        raise _group_key_error(exc) from None
    return None  # pragma: no cover - all known kinds are specialised


def _global_aggregate(rows: Iterable[Row], exprs: tuple[AggExpr, ...]) -> list[Row]:
    """The single implicit group: one output row, even for empty input."""
    banked = rows if isinstance(rows, list) else list(rows)
    out: Row = {}
    for expr in exprs:
        out[expr.name] = _reduce_group(expr, banked)
    return [out]


def _generic_aggregate(
    rows: Iterable[Row], keys: tuple[str, ...], exprs: tuple[AggExpr, ...]
) -> list[Row]:
    """Group-hash with banked row *views* and vectorised reductions.

    One pass banks each row's view (no copy) under its group key, then
    every aggregate reduces its group with C-level builtins — the same
    reductions the baseline performs, minus the per-row dict copies and
    per-row accumulator dispatch that would dominate multi-aggregate
    grouping.
    """
    result: list[Row] = []
    lookup: Any
    try:
        if len(keys) == 1:
            key_col = keys[0]
            scalar_groups: dict[Any, list[Row]] = {}
            lookup = scalar_groups.get
            for row in rows:
                k = row[key_col]
                bank = lookup(k)
                if bank is None:
                    scalar_groups[k] = bank = []
                bank.append(row)
            for k, bank in scalar_groups.items():
                out: Row = {key_col: k}
                for expr in exprs:
                    out[expr.name] = _reduce_group(expr, bank)
                result.append(out)
            return result
        groups: dict[tuple, list[Row]] = {}
        lookup = groups.get
        for row in rows:
            key = tuple(row[k] for k in keys)
            bank = lookup(key)
            if bank is None:
                groups[key] = bank = []
            bank.append(row)
    except KeyError as exc:
        raise _group_key_error(exc) from None
    for key, bank in groups.items():
        out = dict(zip(keys, key))
        for expr in exprs:
            out[expr.name] = _reduce_group(expr, bank)
        result.append(out)
    return result


def _reduce_group(expr: AggExpr, rows: list[Row]) -> Any:
    """Reduce one group exactly like ``Aggregate.apply`` does."""
    kind = expr.kind
    if kind == "count":
        return len(rows)
    column = expr.column
    values = [
        row[column] for row in rows if row.get(column) is not None
    ]
    if kind == "sum":
        return sum(values) if values else 0
    if kind == "avg":
        return sum(values) / len(values) if values else None
    if kind == "min":
        return min(values) if values else None
    if kind == "max":
        return max(values) if values else None
    if kind == "count_distinct":
        return len(set(values))
    raise QueryError(  # pragma: no cover - planner only emits known kinds
        f"unknown aggregate kind {kind!r}"
    )


def _index_agg_scan(database: "Database", node: IndexAggScan) -> list[Row]:
    """Aggregates answered from index structures without visiting rows."""
    table = database.table(node.table)
    out: Row = {}
    for agg in node.aggregates:
        if agg.kind == "count":
            out[agg.name] = len(table)
        elif agg.kind == "count_distinct":
            out[agg.name] = table.distinct_count(agg.column)
        else:  # min/max via the ordered index
            index = table.ordered_index(agg.column)
            rid = index.first_id() if agg.kind == "min" else index.last_id()
            out[agg.name] = (
                None if rid is None else table.row_view(rid)[agg.column]
            )
    return [out]
