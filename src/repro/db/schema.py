"""Schema objects: columns, foreign keys, table schemas and database schemas.

A :class:`TableSchema` declares the columns of one relation together with
its primary key, uniqueness constraints and outgoing foreign keys.  A
:class:`DatabaseSchema` is the collection of table schemas and validates
cross-table references (foreign keys must point at existing primary keys).

Schemas are deliberately plain, declarative objects: the live data lives in
:mod:`repro.db.table`, statistics in :mod:`repro.db.statistics`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.db.types import DataType
from repro.errors import SchemaError, UnknownColumnError, UnknownTableError

__all__ = ["Column", "ForeignKey", "TableSchema", "DatabaseSchema"]

_NAME_RE = re.compile(r"^[a-z_][a-z0-9_]*$")


def _check_name(name: str, kind: str) -> str:
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise SchemaError(
            f"invalid {kind} name {name!r}: must match [a-z_][a-z0-9_]*"
        )
    return name


@dataclass(frozen=True)
class Column:
    """One column of a table.

    Parameters
    ----------
    name:
        Lower-case identifier.
    dtype:
        Declared :class:`~repro.db.types.DataType`.
    nullable:
        Whether NULL values are allowed (primary-key columns never are).
    unique:
        Whether values must be unique across the table.
    """

    name: str
    dtype: DataType
    nullable: bool = True
    unique: bool = False

    def __post_init__(self) -> None:
        _check_name(self.name, "column")
        if not isinstance(self.dtype, DataType):
            raise SchemaError(f"column {self.name!r}: dtype must be a DataType")


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key edge ``source_table.column -> target_table.target_column``."""

    column: str
    target_table: str
    target_column: str

    def __post_init__(self) -> None:
        _check_name(self.column, "column")
        _check_name(self.target_table, "table")
        _check_name(self.target_column, "column")


class TableSchema:
    """Declarative schema of one relation."""

    def __init__(
        self,
        name: str,
        columns: list[Column],
        primary_key: str | None = None,
        foreign_keys: list[ForeignKey] | None = None,
    ) -> None:
        self.name = _check_name(name, "table")
        if not columns:
            raise SchemaError(f"table {name!r} must have at least one column")
        seen: set[str] = set()
        for column in columns:
            if column.name in seen:
                raise SchemaError(f"table {name!r}: duplicate column {column.name!r}")
            seen.add(column.name)
        self.columns: tuple[Column, ...] = tuple(columns)
        self._by_name: dict[str, Column] = {c.name: c for c in columns}

        if primary_key is not None and primary_key not in self._by_name:
            raise SchemaError(
                f"table {name!r}: primary key {primary_key!r} is not a column"
            )
        self.primary_key = primary_key

        self.foreign_keys: tuple[ForeignKey, ...] = tuple(foreign_keys or ())
        fk_columns: set[str] = set()
        for fk in self.foreign_keys:
            if fk.column not in self._by_name:
                raise SchemaError(
                    f"table {name!r}: foreign key on unknown column {fk.column!r}"
                )
            if fk.column in fk_columns:
                raise SchemaError(
                    f"table {name!r}: duplicate foreign key on column {fk.column!r}"
                )
            fk_columns.add(fk.column)

    # ------------------------------------------------------------------
    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    def has_column(self, name: str) -> bool:
        return name in self._by_name

    def column(self, name: str) -> Column:
        try:
            return self._by_name[name]
        except KeyError:
            raise UnknownColumnError(
                f"table {self.name!r} has no column {name!r}"
            ) from None

    def foreign_key_for(self, column: str) -> ForeignKey | None:
        """The outgoing foreign key on ``column``, or ``None``."""
        for fk in self.foreign_keys:
            if fk.column == column:
                return fk
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        cols = ", ".join(f"{c.name}:{c.dtype}" for c in self.columns)
        return f"TableSchema({self.name!r}, [{cols}])"


class DatabaseSchema:
    """The set of table schemas making up one database, with FK validation."""

    def __init__(self, tables: list[TableSchema] | None = None) -> None:
        self._tables: dict[str, TableSchema] = {}
        for table in tables or ():
            self.add_table(table)
        if tables:
            self.validate()

    # ------------------------------------------------------------------
    def add_table(self, table: TableSchema) -> None:
        if table.name in self._tables:
            raise SchemaError(f"duplicate table {table.name!r}")
        self._tables[table.name] = table

    @property
    def table_names(self) -> tuple[str, ...]:
        return tuple(self._tables)

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __iter__(self):
        return iter(self._tables.values())

    def table(self, name: str) -> TableSchema:
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(f"no table named {name!r}") from None

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check all foreign keys point at existing unique/PK columns."""
        for table in self:
            for fk in table.foreign_keys:
                if fk.target_table not in self._tables:
                    raise SchemaError(
                        f"table {table.name!r}: foreign key {fk.column!r} "
                        f"references unknown table {fk.target_table!r}"
                    )
                target = self._tables[fk.target_table]
                if not target.has_column(fk.target_column):
                    raise SchemaError(
                        f"table {table.name!r}: foreign key {fk.column!r} "
                        f"references unknown column "
                        f"{fk.target_table}.{fk.target_column}"
                    )
                target_col = target.column(fk.target_column)
                is_key = (
                    target.primary_key == fk.target_column or target_col.unique
                )
                if not is_key:
                    raise SchemaError(
                        f"table {table.name!r}: foreign key {fk.column!r} must "
                        f"reference a primary-key or unique column, but "
                        f"{fk.target_table}.{fk.target_column} is neither"
                    )
                source_col = table.column(fk.column)
                if source_col.dtype is not target_col.dtype:
                    raise SchemaError(
                        f"foreign key {table.name}.{fk.column} "
                        f"({source_col.dtype}) does not match type of "
                        f"{fk.target_table}.{fk.target_column} ({target_col.dtype})"
                    )

    def referencing_tables(self, target: str) -> list[tuple[str, ForeignKey]]:
        """All ``(table_name, fk)`` pairs whose foreign key points at ``target``."""
        result: list[tuple[str, ForeignKey]] = []
        for table in self:
            for fk in table.foreign_keys:
                if fk.target_table == target:
                    result.append((table.name, fk))
        return result

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DatabaseSchema({sorted(self._tables)})"
