"""The unified execution API: ``Connection`` → ``PreparedStatement`` → ``Result``.

Everything the database can execute — scalar queries, aggregates with
HAVING, counts and stored-procedure calls — goes through one calling
convention, the classic prepare/execute split of DB client interfaces::

    conn = database.connect()
    stmt = conn.prepare(
        select("screening").where(eq("movie_id", Param("m"))).limit(5)
    )
    for row in stmt.execute(m=3):          # a streaming Result cursor
        ...

Why prepare/execute: the serving runtime issues the same handful of
statement *shapes* on every turn, differing only in their constants.
The implicit path (``Query.run``) re-fingerprints the whole query tree
on every call to find its cached plan template; ``prepare`` fingerprints
ONCE and every ``execute`` binds the call's constants straight into the
cached template — one stable compiled artifact, many cheap
parameterised executions (the trade-off hybrid-join and HTAP designs
lean on).  ``benchmarks/bench_statement_api.py`` gates the difference.

The three objects:

* :class:`Connection` — a lightweight handle from ``database.connect()``
  owning per-connection statistics, read-lock scoping (``reading()``),
  transaction scoping (``with conn.transaction(): ...``), a
  prepared-statement pool (:meth:`Connection.prepare_cached`) and the
  per-connection index advisor (:meth:`Connection.advisor`).
* :class:`PreparedStatement` — one compiled statement with named
  :class:`Param` placeholders; immutable after ``prepare`` and safe to
  share across threads (every ``execute`` builds its own bound plan, so
  bindings never bleed between concurrent callers).
* :class:`Result` — a streaming cursor (``__iter__``, ``fetchone``,
  ``fetchmany``, ``all``, ``scalar``, ``.plan``/``explain()``) that
  defers materialisation to the consumer instead of always returning
  ``list[Row]``.  Consume it within the read scope it was produced in.

Statements come from three builders: :func:`select` (rows and counts),
:func:`aggregate` (grouped aggregates + HAVING) and :func:`call`
(stored procedures).  Plain :class:`~repro.db.query.Query` objects are
also accepted by ``prepare``/``execute`` for easy migration.

Cached plan *templates* are shared with the implicit ``Query.run`` path
through the database's :class:`~repro.db.engine.cache.PlanCache`, so
both surfaces warm each other and invalidate together on data-version
bumps (committed mutations, index DDL).
"""

from __future__ import annotations

import itertools
import threading
import time
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Callable, Hashable, Iterator, Mapping

from repro.db.aggregation import Aggregate, _engine_exprs
from repro.db.aggregation import aggregate as _reduce_rows
from repro.db.engine import (
    Filter,
    HashJoin,
    IndexEq,
    IndexGroupedAggScan,
    IndexInList,
    IndexNestedLoopJoin,
    IndexOrUnion,
    IndexRange,
    PlanNode,
    QuerySpec,
    SeqScan,
    execute_count,
    execute_iter,
    execute_row_ids,
    execute_rows,
    render_plan,
)

# The advisor's notion of an "advisable predicate" must stay in
# lockstep with how the planner decomposes conjunctions.
from repro.db.engine.planner import _and_parts
from repro.db.query import (
    And,
    Comparison,
    Not,
    Or,
    Predicate,
    Query,
)
from repro.db.table import Row
from repro.errors import ProcedureError, QueryError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.db.database import Database
    from repro.db.procedures import ProcedureResult

__all__ = [
    "Param",
    "Statement",
    "SelectStatement",
    "CallStatement",
    "select",
    "aggregate",
    "call",
    "Connection",
    "ConnectionStats",
    "PreparedStatement",
    "Result",
    "IndexAdvisor",
    "IndexSuggestion",
]


# ---------------------------------------------------------------------------
# Named parameters
# ---------------------------------------------------------------------------

class Param:
    """A named placeholder for one statement constant.

    Appears wherever a predicate constant, HAVING constant or procedure
    argument would: ``eq("movie_id", Param("m"))``.  ``execute(m=3)``
    binds it.  Distinct from the engine's positional
    :class:`~repro.db.engine.plan.Param` slots, which the plan cache
    derives internally.
    """

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        if not isinstance(name, str) or not name.isidentifier():
            raise QueryError(
                f"parameter name must be an identifier, got {name!r}"
            )
        self.name = name

    def __repr__(self) -> str:
        return f":{self.name}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Param) and other.name == self.name

    def __hash__(self) -> int:
        return hash((Param, self.name))


def _resolve_value(value: Any, binds: Mapping[str, Any]) -> Any:
    """``value`` with any :class:`Param` (or Params inside an IN-list
    tuple) replaced by its binding."""
    if type(value) is Param:
        return binds[value.name]
    if isinstance(value, tuple) and any(type(e) is Param for e in value):
        return tuple(
            binds[e.name] if type(e) is Param else e for e in value
        )
    return value


def _value_param_names(value: Any, names: set[str]) -> None:
    if type(value) is Param:
        names.add(value.name)
    elif isinstance(value, tuple):
        names.update(e.name for e in value if type(e) is Param)


def _predicate_param_names(predicate: Predicate, names: set[str]) -> None:
    if isinstance(predicate, Comparison):
        _value_param_names(predicate.value, names)
    elif isinstance(predicate, (And, Or)):
        for part in predicate.parts:
            _predicate_param_names(part, names)
    elif isinstance(predicate, Not):
        _predicate_param_names(predicate.part, names)


def _bind_predicate(
    predicate: Predicate, binds: Mapping[str, Any]
) -> Predicate:
    """``predicate`` with named Params substituted (shared, not copied,
    when nothing inside changes)."""
    if isinstance(predicate, Comparison):
        value = _resolve_value(predicate.value, binds)
        if value is predicate.value:
            return predicate
        return Comparison(predicate.column, predicate.op, value)
    if isinstance(predicate, And):
        parts = tuple(_bind_predicate(p, binds) for p in predicate.parts)
        if all(a is b for a, b in zip(parts, predicate.parts)):
            return predicate
        return And(parts)
    if isinstance(predicate, Or):
        parts = tuple(_bind_predicate(p, binds) for p in predicate.parts)
        if all(a is b for a, b in zip(parts, predicate.parts)):
            return predicate
        return Or(parts)
    if isinstance(predicate, Not):
        part = _bind_predicate(predicate.part, binds)
        return predicate if part is predicate.part else Not(part)
    return predicate


def _bind_spec(spec: QuerySpec, binds: Mapping[str, Any]) -> QuerySpec:
    predicate = _bind_predicate(spec.predicate, binds)
    having = (
        None if spec.having is None else _bind_predicate(spec.having, binds)
    )
    if predicate is spec.predicate and having is spec.having:
        return spec
    return replace(spec, predicate=predicate, having=having)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

class Statement:
    """Base class of everything :meth:`Connection.prepare` accepts."""


class SelectStatement(Statement, Query):
    """A fluent query/aggregate/count statement with named parameters.

    Extends the fluent :class:`~repro.db.query.Query` builder (``where``
    / ``join`` / ``order_by`` / ``limit`` / projection) with ``count()``,
    grouped aggregation (``group_by`` / ``having``) and named
    :class:`Param` placeholders anywhere a constant goes.
    """

    def __init__(self, table: str) -> None:
        Query.__init__(self, table)
        self._count_only = False
        self._aggregates: dict[str, Aggregate] | None = None
        self._group_by: tuple[str, ...] = ()
        self._having: Predicate | None = None

    # Builder extensions ---------------------------------------------------
    def project(self, *columns: str) -> "SelectStatement":
        """Restrict output columns (alias of ``Query.select``)."""
        self.select(*columns)
        return self

    def count(self) -> "SelectStatement":
        """Turn the statement into a COUNT(*): ``execute().scalar()``."""
        self._count_only = True
        return self

    def group_by(self, *columns: str) -> "SelectStatement":
        self._group_by = tuple(columns)
        return self

    def having(self, predicate: Predicate) -> "SelectStatement":
        """Post-aggregate filter over group keys + aggregate names."""
        self._having = predicate
        return self

    # Legacy-surface overrides ---------------------------------------------
    # Query.run/plan/explain compile only the row query and would
    # silently drop count()/aggregates/group_by/having; statements
    # route through the prepared path instead (parameterised
    # statements require prepare + execute(**binds)).
    def run(self, database: "Database") -> list[Row]:
        """Execute through the database's shared connection.

        Honours ``count()`` (returns ``[{"count": n}]``) and
        aggregates, unlike ``Query.run``.
        """
        return database.default_connection.execute(self).all()

    def plan(self, database: "Database", count_only: bool = False):
        if count_only and not self._count_only:
            raise QueryError(
                "pass count_only via select(...).count(), not plan()"
            )
        prepared = database.default_connection.prepare(self)
        prepared._check_binds({})
        node, __, __profile = prepared._plan_for({})
        return node

    def explain(self, database: "Database", count_only: bool = False) -> str:
        if count_only and not self._count_only:
            raise QueryError(
                "pass count_only via select(...).count(), not explain()"
            )
        return database.default_connection.prepare(self).explain()


class CallStatement(Statement):
    """A stored-procedure call with (possibly parameterised) arguments."""

    def __init__(self, procedure: str, arguments: dict[str, Any]) -> None:
        self.procedure = procedure
        self.arguments = dict(arguments)


def select(table: str) -> SelectStatement:
    """Start a row-returning (or, with ``.count()``, counting) statement."""
    return SelectStatement(table)


def aggregate(
    table: str,
    aggregates: Mapping[str, Aggregate] | None = None,
    **named: Aggregate,
) -> SelectStatement:
    """Start an aggregate statement: ``aggregate("reservation",
    booked=sum_("no_tickets")).group_by("screening_id")``.

    Built-in aggregates push down into the engine; custom reducers fall
    back to materialise-then-reduce, byte-identically.
    """
    statement = SelectStatement(table)
    merged: dict[str, Aggregate] = dict(aggregates or {})
    merged.update(named)
    statement._aggregates = merged
    return statement


def call(procedure: str, **arguments: Any) -> CallStatement:
    """Start a stored-procedure call statement."""
    return CallStatement(procedure, arguments)


# ---------------------------------------------------------------------------
# Index advisor
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class IndexSuggestion:
    """One ranked ``CREATE INDEX`` recommendation."""

    table: str
    column: str
    kind: str            # "hash" (equality/IN probes) or "ordered" (ranges)
    misses: int          # executions that scanned instead of probing
    rows_scanned: int    # total rows those scans visited

    @property
    def statement(self) -> str:
        using = " USING ordered" if self.kind == "ordered" else ""
        return f"CREATE INDEX ON {self.table} ({self.column}){using}"

    def apply(self, database: "Database") -> bool:
        """Create the suggested index on ``database`` (DDL); idempotent.

        Takes the commit latch for the existence check *and* the build,
        so a concurrent ``apply`` of the same suggestion (two autotune
        ticks, an operator racing the policy) cannot double-build: the
        loser observes the winner's index and no-ops with a warning.
        Returns ``True`` when the index was created, ``False`` on the
        already-exists no-op.
        """
        with database.write_locked():
            table = database.table(self.table)
            exists = (
                table.has_ordered_index(self.column)
                if self.kind == "ordered"
                else table.has_index(self.column)
            )
            if exists:
                warnings.warn(
                    f"{self.statement}: equivalent index already exists; "
                    "skipping",
                    stacklevel=2,
                )
                return False
            if self.kind == "ordered":
                database.create_ordered_index(self.table, self.column)
            else:
                database.create_index(self.table, self.column)
            return True


class IndexAdvisor:
    """Tallies SeqScan+Filter executions an index would have served.

    The planner settles for a sequential scan whenever an
    equality/range predicate names a column without a hash/ordered
    index; every such execution records a *miss* here, weighted by the
    rows the scan visited, so :meth:`suggestions` ranks the indexes by
    the work they would have saved.

    With ``half_life`` set (seconds), tallies decay exponentially: a
    miss recorded one half-life ago counts half as much as one recorded
    now, so a workload phase that ended stops dominating the ranking —
    the property the autotune policy relies on to follow shifting
    workloads.  Decay is applied lazily on access; entries that decay
    below half a miss are pruned.  ``half_life=None`` (the default)
    keeps the original accumulate-forever behaviour.
    """

    def __init__(
        self,
        half_life: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._lock = threading.Lock()
        # (table, column, kind) -> [misses, rows_scanned] (floats under
        # decay; exact ints while half_life is None)
        self._misses: dict[tuple[str, str, str], list[float]] = {}
        self._half_life = half_life
        self._clock = clock
        self._decayed_at = clock()

    @property
    def half_life(self) -> float | None:
        return self._half_life

    @half_life.setter
    def half_life(self, value: float | None) -> None:
        with self._lock:
            self._decay_locked()
            self._half_life = value

    def _decay_locked(self) -> None:
        """Bring every tally forward to now (caller holds the lock)."""
        now = self._clock()
        half_life = self._half_life
        if half_life is None or half_life <= 0:
            self._decayed_at = now
            return
        elapsed = now - self._decayed_at
        if elapsed <= 0:
            return
        factor = 0.5 ** (elapsed / half_life)
        self._decayed_at = now
        dead = []
        for key, entry in self._misses.items():
            entry[0] *= factor
            entry[1] *= factor
            if entry[0] < 0.5:
                dead.append(key)
        for key in dead:
            del self._misses[key]

    def record(self, table: str, column: str, kind: str, rows: int) -> None:
        with self._lock:
            self._decay_locked()
            entry = self._misses.setdefault((table, column, kind), [0, 0])
            entry[0] += 1
            entry[1] += rows

    def record_all(
        self, misses: list[tuple[str, str, str, int]]
    ) -> None:
        for table, column, kind, rows in misses:
            self.record(table, column, kind, rows)

    def forget(self, table: str, column: str, kind: str) -> None:
        """Drop the tally for one candidate (the autotune policy clears
        history when it retires an index so the stale miss record cannot
        immediately re-suggest what it just dropped)."""
        with self._lock:
            self._misses.pop((table, column, kind), None)

    @property
    def total_misses(self) -> int:
        with self._lock:
            self._decay_locked()
            return round(sum(entry[0] for entry in self._misses.values()))

    def suggestions(
        self, database: "Database | None" = None
    ) -> list[IndexSuggestion]:
        """Ranked recommendations, most rows-saved first.

        With ``database``, columns that have since gained the suggested
        index (``suggestion.apply``, manual DDL) are filtered out — the
        tallies record history, the suggestions describe what is still
        missing.
        """
        with self._lock:
            self._decay_locked()
            items = [
                IndexSuggestion(
                    table, column, kind, round(entry[0]), round(entry[1])
                )
                for (table, column, kind), entry in self._misses.items()
            ]
        if database is not None:
            items = [
                s for s in items
                if s.table in database and not (
                    database.table(s.table).has_ordered_index(s.column)
                    if s.kind == "ordered"
                    else database.table(s.table).has_index(s.column)
                )
            ]
        items.sort(key=lambda s: (-s.rows_scanned, -s.misses, s.table, s.column))
        return items


def _index_misses(
    database: "Database", plan: PlanNode
) -> list[tuple[str, str, str, int]]:
    """``(table, column, kind, rows_scanned)`` per advisable predicate
    in ``plan``'s SeqScan+Filter subtrees and per unindexed join key."""
    out: list[tuple[str, str, str, int]] = []
    stack = [plan]
    while stack:
        node = stack.pop()
        if isinstance(node, HashJoin):
            # The planner builds a transient hash table per execution;
            # a hash index on the inner key would unlock the
            # index-nested-loop (and the vectorized bucket-probe) path.
            inner = database.table(node.table)
            if not inner.has_index(node.target_column):
                out.append(
                    (node.table, node.target_column, "hash", len(inner))
                )
        if isinstance(node, Filter) and isinstance(node.child, SeqScan):
            table = database.table(node.child.table)
            names = table.schema.column_names  # tuple; few entries
            for part in _and_parts(node.predicate):
                if not isinstance(part, Comparison) or part.column not in names:
                    continue
                if part.op in ("==", "in"):
                    if not table.has_index(part.column):
                        out.append((table.name, part.column, "hash", len(table)))
                elif part.op in ("<", "<=", ">", ">="):
                    if not table.has_ordered_index(part.column):
                        out.append(
                            (table.name, part.column, "ordered", len(table))
                        )
        stack.extend(node.children())
    return out


def _index_hits(
    database: "Database", plan: PlanNode
) -> list[tuple[str, str, str]]:
    """``(table, column, kind)`` per index probe ``plan`` will execute.

    The mirror of :func:`_index_misses`: executions of this plan count
    as *hits* against the named indexes, which is how the autotune
    policy learns that an index is earning its maintenance cost.
    Attributed at the plan level (once per execution), not per probe —
    the executor's inner loops stay untouched.
    """
    out: list[tuple[str, str, str]] = []
    stack = [plan]
    while stack:
        node = stack.pop()
        if isinstance(node, IndexEq):
            out.append((node.table, node.column, "hash"))
        elif isinstance(node, IndexInList):
            out.append((node.table, node.column, "hash"))
        elif isinstance(node, IndexOrUnion):
            for column, __ in node.probes:
                out.append((node.table, column, "hash"))
        elif isinstance(node, IndexRange):
            out.append((node.table, node.column, "ordered"))
        elif isinstance(node, IndexNestedLoopJoin):
            out.append((node.table, node.target_column, "hash"))
        elif isinstance(node, IndexGroupedAggScan):
            out.append((node.table, node.key, "hash"))
        elif isinstance(node, HashJoin):
            # The vectorized bucket-probe path serves the build side
            # from the inner key's hash index when one exists.
            if database.table(node.table).has_index(node.target_column):
                out.append((node.table, node.target_column, "hash"))
        stack.extend(node.children())
    return out


# ---------------------------------------------------------------------------
# Result
# ---------------------------------------------------------------------------

class Result:
    """A streaming cursor over one execution's output.

    Rows materialise as the consumer pulls them — ``__iter__`` and
    ``fetchmany`` stream, ``all()`` drains what remains, ``scalar()``
    reads the first value of the next row.  ``.plan`` / ``explain()``
    expose the executed physical plan.  Procedure results carry their
    outcome in ``.value`` and render rows via the
    :class:`~repro.db.procedures.ProcedureResult` row view, so query
    and procedure results are interchangeable to a consumer that
    iterates.

    Consume a streaming result inside the read scope it was produced
    in (e.g. ``with conn.reading(): ...``): the cursor reads table
    storage as it advances.
    """

    def __init__(
        self,
        connection: "Connection",
        *,
        plan: PlanNode | None = None,
        stream: bool = False,
        rows: list[Row] | None = None,
        procedure_result: "ProcedureResult | None" = None,
    ) -> None:
        self._connection = connection
        self._plan = plan
        self._procedure_result = procedure_result
        # While the consumer has not started streaming, ``all()`` can
        # take the bulk executor path (columnwise materialisation, no
        # per-row generator frame); the first fetch/iteration switches
        # to the lazy cursor.
        self._pending = stream and plan is not None
        if rows is not None:
            self._source: Iterator[Row] = iter(rows)
        elif procedure_result is not None:
            self._source = iter(procedure_result.rows())
        else:
            self._source = iter(())

    def _start_stream(self) -> Iterator[Row]:
        if self._pending:
            self._pending = False
            self._source = execute_iter(self._connection.database, self._plan)
        return self._source

    # ------------------------------------------------------------------
    @property
    def plan(self) -> PlanNode | None:
        """The executed physical plan (``None`` for procedure calls)."""
        return self._plan

    def explain(self) -> str:
        """EXPLAIN output of the executed plan."""
        if self._plan is None:
            raise QueryError("procedure results have no query plan")
        return render_plan(self._plan)

    @property
    def procedure_result(self) -> "ProcedureResult | None":
        return self._procedure_result

    @property
    def value(self) -> Any:
        """A procedure call's raw outcome value."""
        if self._procedure_result is None:
            raise QueryError("not a procedure result")
        return self._procedure_result.value

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Row]:
        source = self._start_stream()
        fetched = 0
        try:
            for row in source:
                fetched += 1
                yield row
        finally:
            if fetched:
                self._connection._note_rows(fetched)

    def fetchone(self) -> Row | None:
        """The next row, or ``None`` when the cursor is exhausted."""
        row = next(self._start_stream(), None)
        if row is not None:
            self._connection._note_rows(1)
        return row

    def fetchmany(self, n: int) -> list[Row]:
        """Up to ``n`` more rows (fewer at the end, ``[]`` when done)."""
        if n < 0:
            raise QueryError("fetchmany size must be non-negative")
        rows = list(itertools.islice(self._start_stream(), n))
        if rows:
            self._connection._note_rows(len(rows))
        return rows

    def all(self) -> list[Row]:
        """Every remaining row, materialised.

        An unstarted cursor drains through the bulk executor path
        (columnwise materialisation); a started one finishes streaming.
        """
        if self._pending:
            self._pending = False
            rows = execute_rows(self._connection.database, self._plan)
        else:
            rows = list(self._source)
        if rows:
            self._connection._note_rows(len(rows))
        return rows

    def scalar(self) -> Any:
        """First value of the next row (``None`` when exhausted/empty).

        The natural reader for counts and ungrouped aggregates:
        ``conn.execute(select("movie").count()).scalar()``.
        """
        row = self.fetchone()
        if row is None:
            return None
        return next(iter(row.values()), None)

    def row_ids(self) -> list[int]:
        """Root-table row ids of an access-path/filter-only plan.

        Independent of the cursor (re-runs the plan id-wise); used by
        candidate tracking, which keys snapshots on internal row ids.
        """
        if self._plan is None:
            raise QueryError("procedure results have no row ids")
        return execute_row_ids(self._connection.database, self._plan)


# ---------------------------------------------------------------------------
# PreparedStatement
# ---------------------------------------------------------------------------

class PreparedStatement:
    """One statement, compiled and fingerprinted once.

    ``execute(**binds)`` substitutes named parameters straight into the
    cached plan template — no per-call fingerprinting — and returns a
    :class:`Result`.  Instances are immutable after ``prepare`` and
    safe to share across threads: every execution builds its own bound
    plan, so concurrent ``execute`` calls never see each other's
    bindings.
    """

    def __init__(self, connection: "Connection", statement: Statement | Query) -> None:
        self._connection = connection
        self._database = connection.database
        self.statement = statement
        if isinstance(statement, CallStatement):
            self._init_call(statement)
        elif isinstance(statement, Query):
            self._init_query(statement)
        else:
            raise QueryError(
                f"cannot prepare {type(statement).__name__!r} "
                "(expected a select/aggregate/call statement or a Query)"
            )

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def _init_call(self, statement: CallStatement) -> None:
        registry = self._database.procedures
        procedure = registry.get(statement.procedure)  # validates the name
        known = set(procedure.parameter_names)
        unknown = set(statement.arguments) - known
        if unknown:
            raise ProcedureError(
                f"procedure {statement.procedure!r}: "
                f"unknown arguments {sorted(unknown)}"
            )
        self._kind = "call"
        self._procedure = statement.procedure
        self._arguments = dict(statement.arguments)
        names: set[str] = set()
        for value in self._arguments.values():
            _value_param_names(value, names)
        self._param_names = frozenset(names)
        self._spec = None
        self._aggregates: dict[str, Aggregate] | None = None
        self._having: Predicate | None = None
        self._group_by: tuple[str, ...] = ()

    def _init_query(self, statement: Query) -> None:
        aggregates = getattr(statement, "_aggregates", None)
        count_only = getattr(statement, "_count_only", False)
        having = getattr(statement, "_having", None)
        group_by = getattr(statement, "_group_by", ())
        self._procedure = None
        self._arguments = {}
        self._aggregates = None
        self._having = None
        self._group_by = ()
        self._count_name = "count"
        if aggregates is not None:
            if count_only:
                raise QueryError(
                    "count() cannot be combined with aggregates "
                    "(use a count() aggregate instead)"
                )
            self._compile_aggregate(statement, aggregates, group_by, having)
        elif group_by or having is not None:
            raise QueryError("group_by/having require aggregates")
        elif count_only:
            self._kind = "count"
            self._fingerprint_spec(statement.compile(count_only=True))
        else:
            self._kind = "rows"
            self._fingerprint_spec(statement.compile())

    def _compile_aggregate(
        self,
        statement: Query,
        aggregates: dict[str, Aggregate],
        group_by: tuple[str, ...],
        having: Predicate | None,
    ) -> None:
        if not aggregates:
            raise QueryError("at least one aggregate is required")
        exprs = _engine_exprs(aggregates)
        if exprs is None:
            # Custom reducers: plan the row query, reduce in Python —
            # exactly the aggregate_query fallback.
            self._kind = "aggregate_python"
            self._aggregates = dict(aggregates)
            self._group_by = tuple(group_by)
            self._having = having
            self._fingerprint_spec(statement.compile())
            if having is not None:
                names = set(self._param_names)
                _predicate_param_names(having, names)
                self._param_names = frozenset(names)
            return
        if having is None and not group_by and len(aggregates) == 1:
            (name, agg), = aggregates.items()
            if agg.builtin and agg.column is None and agg.name == "count":
                # Bare COUNT(*): a CountOnly plan, no materialisation.
                self._kind = "aggregate_count"
                self._count_name = name
                self._fingerprint_spec(statement.compile(count_only=True))
                return
        self._kind = "rows"
        self._fingerprint_spec(
            replace(
                statement.compile(),
                aggregates=exprs,
                group_by=tuple(group_by),
                having=having,
            )
        )

    def _fingerprint_spec(self, spec: QuerySpec) -> None:
        """The one-time shape analysis every ``execute`` amortises.

        Parameterising the spec into the compile shape and compiling
        the bind program are deferred further still — to the first
        template miss (the shape) and to the connection's shared
        per-template profile cache (the binder), so one-shot
        ``Connection.execute`` calls of a warm shape pay neither.
        """
        from repro.db.engine import fingerprint_spec

        self._spec = spec
        fingerprint, slots = fingerprint_spec(spec)
        if fingerprint is None:
            # Value-dependent shape: planned per execution, uncached.
            self._fingerprint = None
            self._slots: tuple = ()
            names: set[str] = set()
            _predicate_param_names(spec.predicate, names)
            if spec.having is not None:
                _predicate_param_names(spec.having, names)
        else:
            self._fingerprint = fingerprint
            self._slots = slots
            names = set()
            for value in slots:
                _value_param_names(value, names)
        self._param_names = frozenset(names)

    # ------------------------------------------------------------------
    @property
    def param_names(self) -> frozenset[str]:
        """Names ``execute`` requires as keyword bindings."""
        return self._param_names

    def _check_binds(self, binds: Mapping[str, Any]) -> None:
        if binds.keys() == self._param_names:
            return
        missing = self._param_names - binds.keys()
        if missing:
            raise QueryError(
                f"missing parameter bindings: {sorted(missing)}"
            )
        unknown = binds.keys() - self._param_names
        raise QueryError(f"unknown parameter bindings: {sorted(unknown)}")

    def _plan_for(
        self, binds: Mapping[str, Any]
    ) -> tuple[PlanNode, bool | None, tuple | None]:
        """``(bound plan, template hit, profile)`` for one execution.

        The hot path.  ``hit`` and ``profile`` are ``None`` on the
        uncacheable-shape path (planned per execution through
        :meth:`PlanCache.plan`, which attributes its own bypass/hit
        accounting).  The profile is returned, never stored on the
        statement: instances are shared across threads, and a stashed
        profile could be overwritten by a concurrent execution that
        observed a newer template.
        """
        cache = self._database.plan_cache
        if self._fingerprint is None:
            return cache.plan(_bind_spec(self._spec, binds)), None, None
        params = tuple(_resolve_value(v, binds) for v in self._slots)
        template, hit = cache.template_for(
            self._fingerprint, self._spec, params
        )
        respec = cache.respecialized(
            self._fingerprint, template, params,
            lambda: _bind_spec(self._spec, binds),
        )
        if respec is not None:
            # A divergent binding: the plan is already bound (replanned
            # or served by a bucket-specialised fork), so the compiled
            # binder is skipped and accounting walks the actual plan.
            return respec, hit, None
        profile = self._connection._profile_for(self._fingerprint, template)
        plan = cache.bind_or_replan(
            profile[1], params, lambda: _bind_spec(self._spec, binds)
        )
        return plan, hit, profile

    # ------------------------------------------------------------------
    def execute(self, **binds: Any) -> Result:
        """Bind ``binds`` and execute; returns a :class:`Result` cursor."""
        self._check_binds(binds)
        connection = self._connection
        if self._kind == "call":
            arguments = {
                name: _resolve_value(value, binds)
                for name, value in self._arguments.items()
            }
            outcome = connection._call_procedure(self._procedure, arguments)
            return Result(connection, procedure_result=outcome)
        database = self._database
        plan, hit, profile = self._plan_for(binds)
        if profile is None:
            # Uncacheable shape (hit is None) or a re-specialised
            # execution: attribute against the actual bound plan.
            connection._note_execution(
                plan, int(hit is True), int(hit is False)
            )
        else:
            connection._note_prepared(hit, profile[2], profile[3])
        if self._kind == "count":
            n = execute_count(database, plan)
            return Result(connection, plan=plan, rows=[{"count": n}])
        if self._kind == "aggregate_count":
            n = execute_count(database, plan)
            return Result(connection, plan=plan, rows=[{self._count_name: n}])
        if self._kind == "aggregate_python":
            rows = execute_rows(database, plan)
            having = (
                None if self._having is None
                else _bind_predicate(self._having, binds)
            )
            reduced = _reduce_rows(
                rows, self._aggregates, list(self._group_by) or None, having
            )
            return Result(connection, plan=plan, rows=reduced)
        return Result(connection, plan=plan, stream=True)

    def explain(self, **binds: Any) -> str:
        """EXPLAIN output for the plan ``execute(**binds)`` would run."""
        if self._kind == "call":
            raise QueryError("procedure calls have no query plan")
        self._check_binds(binds)
        plan, __, __profile = self._plan_for(binds)
        return render_plan(plan)


# ---------------------------------------------------------------------------
# Connection
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ConnectionStats:
    """Snapshot of one connection's counters."""

    name: str
    statements_prepared: int
    executions: int
    rows_returned: int
    procedure_calls: int
    transactions_committed: int
    transactions_aborted: int
    plan_cache_hits: int
    plan_cache_misses: int
    index_misses: int

    @property
    def plan_cache_hit_rate(self) -> float:
        total = self.plan_cache_hits + self.plan_cache_misses
        return self.plan_cache_hits / total if total else 0.0


_connection_counter = itertools.count(1)


class Connection:
    """A lightweight execution handle over one database.

    Cheap to create (``database.connect()``), safe to share across
    threads; owns per-connection statistics, a prepared-statement pool
    and an index advisor.  The serving runtime gives every session its
    own connection, so per-session stats come for free.
    """

    def __init__(self, database: "Database", name: str | None = None) -> None:
        self._database = database
        self.name = name or f"conn-{next(_connection_counter)}"
        self._lock = threading.Lock()
        self._statements: dict[Hashable, PreparedStatement] = {}
        # fingerprint -> (template, compiled binder, advisor misses):
        # shared across every statement of a shape on this connection,
        # so repeated one-shot executes compile the bind program once.
        self._profiles: dict[tuple, tuple] = {}
        self._advisor = IndexAdvisor()
        self._statements_prepared = 0
        self._executions = 0
        self._rows_returned = 0
        self._procedure_calls = 0
        self._transactions_committed = 0
        self._transactions_aborted = 0
        self._plan_cache_hits = 0
        self._plan_cache_misses = 0

    @property
    def database(self) -> "Database":
        return self._database

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Connection({self.name!r})"

    # ------------------------------------------------------------------
    # Prepare / execute
    # ------------------------------------------------------------------
    def prepare(self, statement: Statement | Query) -> PreparedStatement:
        """Compile + fingerprint ``statement`` once for many executes."""
        prepared = PreparedStatement(self, statement)
        with self._lock:
            self._statements_prepared += 1
        return prepared

    def prepare_cached(
        self, key: Hashable, factory: Callable[[], Statement | Query]
    ) -> PreparedStatement:
        """The pooled prepared statement under ``key`` (built on first use).

        The pool is the amortisation point for long-lived components
        that issue one shape per call site (candidate refinement, the
        entity linker's pools, stored-procedure bodies).
        """
        with self._lock:
            prepared = self._statements.get(key)
        if prepared is None:
            prepared = self.prepare(factory())
            with self._lock:
                if len(self._statements) >= self._MAX_PROFILES:
                    # Call sites key on constants, so a real pool stays
                    # tiny; the cap guards data-derived key churn, like
                    # the profile cache's.
                    self._statements.clear()
                prepared = self._statements.setdefault(key, prepared)
        return prepared

    def execute(self, statement: Statement | Query, **binds: Any) -> Result:
        """One-shot prepare + execute (prefer ``prepare`` for hot shapes).

        When the database has an attached replica manager, analytic
        one-shots (aggregates, grouped queries, whole-table counts)
        route to a bounded-staleness replica; everything else — and
        every statement issued inside a transaction, a snapshot pin or
        under the commit latch — runs here.  Prepared statements never
        route: a :class:`PreparedStatement` is compiled against one
        database's plan cache.
        """
        target = self._route_for(statement)
        return target.prepare(statement).execute(**binds)

    def analytic(self, max_staleness: float | None = None) -> "Connection":
        """A connection for analytic reads: a replica within
        ``max_staleness`` seconds (the manager's default bound when
        None), or this connection when no replica qualifies or none is
        attached — graceful degradation, never an error."""
        manager = self._database.replica_manager
        if manager is None or not self._routing_safe():
            return self
        return manager.read(max_staleness=max_staleness)

    def _routing_safe(self) -> bool:
        """Whether handing a read to another database is sound here:
        no open transaction, no held commit latch, no pinned snapshot
        (each would break read-your-writes or scope consistency)."""
        database = self._database
        return (
            not database.transactions.in_transaction()
            and not database.commit_latch.held_by_current_thread
            and database.snapshots.pin_depth() == 0
        )

    def _route_for(self, statement: Statement | Query) -> "Connection":
        if self._database.replica_manager is None:
            return self
        if not self._routing_safe():
            return self
        from repro.replication.routing import is_analytic_statement

        if not is_analytic_statement(statement):
            return self
        return self._database.replica_manager.read()

    def call(self, procedure: str, **arguments: Any) -> Result:
        """Run a stored procedure atomically; returns its Result."""
        outcome = self._call_procedure(procedure, arguments)
        return Result(self, procedure_result=outcome)

    # ------------------------------------------------------------------
    # Lock / transaction scoping
    # ------------------------------------------------------------------
    def reading(self):
        """Pinned snapshot scope: every read inside observes one
        consistent generation (consume streaming results inside it).
        Writers commit freely alongside — the scope never blocks them."""
        return self._database.read_locked()

    @contextmanager
    def transaction(self):
        """An atomic multi-statement scope under the commit latch.

        Commits on normal exit, rolls back (undoing every mutation) on
        exception.  Nests inside an enclosing transaction without
        committing it.  Concurrent readers keep scanning their pinned
        snapshots throughout; they observe the whole transaction or
        none of it.
        """
        database = self._database
        with database.write_locked():
            manager = database.transactions
            owns = not manager.in_transaction()
            if owns:
                manager.begin()
            try:
                yield self
            except BaseException:
                if owns:
                    manager.rollback()
                    with self._lock:
                        self._transactions_aborted += 1
                raise
            else:
                if owns:
                    manager.commit()
                    with self._lock:
                        self._transactions_committed += 1

    # ------------------------------------------------------------------
    # Shim surface (Query.run / aggregate_query delegate here)
    # ------------------------------------------------------------------
    def run_query(self, query: Query) -> list[Row]:
        """Materialised rows of ``query`` (the ``Query.run`` shim path)."""
        plan = self._plan_spec(query.compile())
        rows = execute_rows(self._database, plan)
        self._note_rows(len(rows))
        return rows

    def count_query(self, query: Query) -> int:
        """Matching-row count of ``query`` (the ``Query.count`` shim path)."""
        plan = self._plan_spec(query.compile(count_only=True))
        return execute_count(self._database, plan)

    def run_aggregate(
        self,
        query: Query,
        aggregates: Mapping[str, Aggregate],
        group_by: list[str] | None = None,
        having: Predicate | None = None,
    ) -> list[Row]:
        """Aggregate ``query`` in the engine (the ``aggregate_query`` shim).

        Delegates to the prepared path: the statement adopts the
        query's builder state, so the shim and
        :class:`PreparedStatement` aggregates cannot diverge.
        """
        statement = SelectStatement(query.table)
        statement.__dict__.update(query.__dict__)
        statement._count_only = False
        statement._aggregates = dict(aggregates)
        statement._group_by = tuple(group_by or ())
        statement._having = having
        return self.prepare(statement).execute().all()

    # ------------------------------------------------------------------
    # Stats / advisor
    # ------------------------------------------------------------------
    def stats(self) -> ConnectionStats:
        with self._lock:
            return ConnectionStats(
                name=self.name,
                statements_prepared=self._statements_prepared,
                executions=self._executions,
                rows_returned=self._rows_returned,
                procedure_calls=self._procedure_calls,
                transactions_committed=self._transactions_committed,
                transactions_aborted=self._transactions_aborted,
                plan_cache_hits=self._plan_cache_hits,
                plan_cache_misses=self._plan_cache_misses,
                index_misses=self._advisor.total_misses,
            )

    def advisor(self) -> list[IndexSuggestion]:
        """Ranked CREATE INDEX suggestions from this connection's misses
        (suggestions already satisfied by an existing index are elided)."""
        return self._advisor.suggestions(self._database)

    def autotune(self) -> dict[str, Any]:
        """The database's self-driving policy status (see
        :meth:`repro.db.autotune.Autotuner.status`): applied/retired
        index actions, per-index usage counters, respecialisation
        counters and the active policy knobs."""
        return self._database.autotuner.status()

    def note_plan_cache(self, hits: int, misses: int) -> None:
        """Attribute externally-measured plan-cache traffic (the serving
        runtime charges a turn's thread-local delta to the session's
        connection)."""
        with self._lock:
            self._plan_cache_hits += hits
            self._plan_cache_misses += misses

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _plan_spec(self, spec: QuerySpec) -> PlanNode:
        cache = self._database.plan_cache
        hits0, misses0 = cache.local_counters()
        plan = cache.plan(spec)
        hits1, misses1 = cache.local_counters()
        self._note_execution(plan, hits1 - hits0, misses1 - misses0)
        return plan

    def _note_execution(
        self, plan: PlanNode, cache_hits: int, cache_misses: int
    ) -> None:
        with self._lock:
            self._executions += 1
            self._plan_cache_hits += cache_hits
            self._plan_cache_misses += cache_misses
        database = self._database
        misses = _index_misses(database, plan)
        if misses:
            self._advisor.record_all(misses)
            database.index_advisor.record_all(misses)
        tuner = database.autotuner
        if tuner.active:
            hits = _index_hits(database, plan)
            if hits:
                tuner.record_hits(hits)

    def _note_prepared(
        self,
        hit: bool,
        misses: tuple[tuple[str, str, str], ...],
        hits: tuple[tuple[str, str, str], ...] = (),
    ) -> None:
        """Per-execute accounting on the prepared hot path: the template
        lookup already established hit/miss, and the advisor misses and
        index hits were precomputed per template — (table, column,
        kind), misses weighted by the table's live cardinality at
        record time."""
        with self._lock:
            self._executions += 1
            if hit:
                self._plan_cache_hits += 1
            else:
                self._plan_cache_misses += 1
        database = self._database
        if misses:
            shared = database.index_advisor
            for table, column, kind in misses:
                rows = len(database.table(table))
                self._advisor.record(table, column, kind, rows)
                shared.record(table, column, kind, rows)
        if hits:
            database.autotuner.record_hits(hits)

    def _note_rows(self, n: int) -> None:
        with self._lock:
            self._rows_returned += n

    #: Cap on cached per-shape execution profiles; the shape space of a
    #: real workload is tiny, the cap only guards adversarial churn.
    _MAX_PROFILES = 1024

    def _profile_for(self, fingerprint: tuple, template: PlanNode) -> tuple:
        """``(template, binder, advisor misses, index hits)`` per shape.

        Revalidated by template identity: a data-version bump or LRU
        eviction hands back a new template instance, which recompiles
        the bind program and re-derives the advisor misses and index
        hits.
        """
        entry = self._profiles.get(fingerprint)
        if entry is None or entry[0] is not template:
            from repro.db.engine.cache import compile_binder

            entry = (
                template,
                compile_binder(self._database, template),
                tuple(
                    (table, column, kind)
                    for table, column, kind, __ in
                    _index_misses(self._database, template)
                ),
                tuple(_index_hits(self._database, template)),
            )
            with self._lock:
                if len(self._profiles) >= self._MAX_PROFILES:
                    self._profiles.clear()
                self._profiles[fingerprint] = entry
        return entry

    def _call_procedure(
        self, procedure: str, arguments: dict[str, Any]
    ) -> "ProcedureResult":
        with self._lock:
            self._procedure_calls += 1
        return self._database.procedures.call(procedure, **arguments)
