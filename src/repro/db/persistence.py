"""Database snapshots: dump/load the schema, contents and index DDL as JSON.

Format version 3 serialises table contents *column-oriented*, mirroring
the columnar bank storage: one value list per column, parallel by row
(in row-id order).  That keeps the snapshot a straight dump of the
banks — no per-row dict is built on the way out — and typically smaller
(column names appear once per table instead of once per row).  Versions
1 and 2 stored row dicts; both still load.

Secondary-index DDL (hash and ordered indexes) is part of the snapshot
(since version 2), so a loaded database presents the query planner with
exactly the access paths the dumped one had and plans identically.
Version-1 snapshots simply carry no index section beyond the
primary-key/unique indexes the schema implies.

Stored procedures are Python callables and cannot be serialised; a
loaded database starts with an empty procedure registry and the caller
re-registers its workload (exactly like restoring a SQL dump and
re-applying the function definitions).
"""

from __future__ import annotations

import datetime as _dt
import json
from typing import Any

from repro.db.database import Database
from repro.db.schema import Column, DatabaseSchema, ForeignKey, TableSchema
from repro.db.types import DataType
from repro.errors import DatabaseError

__all__ = ["dump_database", "load_database", "dumps_database", "loads_database"]

_FORMAT_VERSION = 3
_READABLE_VERSIONS = (1, 2, 3)


def _encode_value(value: Any) -> Any:
    if isinstance(value, _dt.datetime):  # pragma: no cover - not a col type
        return {"$type": "datetime", "value": value.isoformat()}
    if isinstance(value, _dt.date):
        return {"$type": "date", "value": value.isoformat()}
    if isinstance(value, _dt.time):
        return {"$type": "time", "value": value.isoformat()}
    return value


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict) and "$type" in value:
        kind = value["$type"]
        if kind == "date":
            return _dt.date.fromisoformat(value["value"])
        if kind == "time":
            return _dt.time.fromisoformat(value["value"])
        if kind == "datetime":  # pragma: no cover - not a col type
            return _dt.datetime.fromisoformat(value["value"])
        raise DatabaseError(f"unknown encoded type {kind!r}")
    return value


def _schema_payload(schema: DatabaseSchema) -> list[dict[str, Any]]:
    tables = []
    for table in schema:
        tables.append(
            {
                "name": table.name,
                "primary_key": table.primary_key,
                "columns": [
                    {
                        "name": column.name,
                        "dtype": column.dtype.value,
                        "nullable": column.nullable,
                        "unique": column.unique,
                    }
                    for column in table.columns
                ],
                "foreign_keys": [
                    {
                        "column": fk.column,
                        "target_table": fk.target_table,
                        "target_column": fk.target_column,
                    }
                    for fk in table.foreign_keys
                ],
            }
        )
    return tables


def _schema_from_payload(payload: list[dict[str, Any]]) -> DatabaseSchema:
    tables = []
    for body in payload:
        tables.append(
            TableSchema(
                body["name"],
                [
                    Column(
                        column["name"],
                        DataType(column["dtype"]),
                        nullable=column["nullable"],
                        unique=column["unique"],
                    )
                    for column in body["columns"]
                ],
                primary_key=body.get("primary_key"),
                foreign_keys=[
                    ForeignKey(fk["column"], fk["target_table"],
                               fk["target_column"])
                    for fk in body.get("foreign_keys", ())
                ],
            )
        )
    return DatabaseSchema(tables)


def _index_payload(database: Database) -> dict[str, dict[str, list[str]]]:
    """Secondary-index DDL per table.

    Hash indexes implied by the schema (primary key, unique columns)
    are rebuilt by table construction and excluded here; everything
    else — FK probe indexes, ordered range/ORDER BY indexes — must be
    recorded or a loaded database silently plans worse.
    """
    payload: dict[str, dict[str, list[str]]] = {}
    for name in database.table_names:
        table = database.table(name)
        implied = {c.name for c in table.schema.columns if c.unique}
        if table.schema.primary_key:
            implied.add(table.schema.primary_key)
        hash_columns = [
            c for c in table.hash_index_columns() if c not in implied
        ]
        ordered_columns = table.ordered_index_columns()
        if hash_columns or ordered_columns:
            payload[name] = {
                "hash": hash_columns,
                "ordered": ordered_columns,
            }
    return payload


def _column_payload(database: Database) -> dict[str, dict[str, list]]:
    """Per-table column banks (v3): ``column -> values`` in row-id order.

    Each bank is read straight off the table's columnar storage; all
    banks of one table have equal length (the row count).
    """
    payload: dict[str, dict[str, list]] = {}
    for name in database.table_names:
        table = database.table(name)
        payload[name] = {
            column: [_encode_value(value) for value in values]
            for column, values in table.column_arrays().items()
        }
    return payload


def dumps_database(database: Database) -> str:
    """Serialise schema + column banks + secondary-index DDL to JSON."""
    payload = {
        "format_version": _FORMAT_VERSION,
        "schema": _schema_payload(database.schema),
        "columns": _column_payload(database),
        "indexes": _index_payload(database),
    }
    return json.dumps(payload, indent=2)


def _content_section(body: dict[str, Any], key: str) -> dict[str, Any]:
    """The mandatory content section, failing loudly when absent.

    A snapshot whose version mandates a section but lacks it (truncated
    write, hand-edited file) must not load as an empty database.
    """
    try:
        return body[key]
    except KeyError:
        raise DatabaseError(
            f"snapshot (version {body.get('format_version')!r}) is missing "
            f"its {key!r} section"
        ) from None


def _rows_from_v3(body: dict[str, Any]) -> dict[str, list[dict[str, Any]]]:
    """Decode a v3 ``columns`` section into per-table row dicts."""
    out: dict[str, list[dict[str, Any]]] = {}
    for name, banks in _content_section(body, "columns").items():
        columns = list(banks)
        decoded = [
            [_decode_value(value) for value in banks[column]]
            for column in columns
        ]
        lengths = {len(bank) for bank in decoded}
        if len(lengths) > 1:
            raise DatabaseError(
                f"snapshot table {name!r}: ragged column banks "
                f"(lengths {sorted(lengths)})"
            )
        out[name] = [
            dict(zip(columns, values)) for values in zip(*decoded)
        ]
    return out


def _rows_from_legacy(body: dict[str, Any]) -> dict[str, list[dict[str, Any]]]:
    """Decode a v1/v2 ``rows`` section (one dict per row)."""
    return {
        name: [
            {key: _decode_value(value) for key, value in row.items()}
            for row in rows
        ]
        for name, rows in _content_section(body, "rows").items()
    }


def loads_database(payload: str) -> Database:
    """Rebuild a database from :func:`dumps_database` output."""
    body = json.loads(payload)
    version = body.get("format_version")
    if version not in _READABLE_VERSIONS:
        raise DatabaseError(f"unsupported snapshot version {version!r}")
    database = Database(_schema_from_payload(body["schema"]))
    # Insert tables in FK-dependency order: repeatedly insert whatever
    # whose referenced tables are already loaded.
    if version >= 3:
        remaining = _rows_from_v3(body)
    else:
        remaining = _rows_from_legacy(body)
    loaded: set[str] = set()
    while remaining:
        progressed = False
        for name in list(remaining):
            schema = database.schema.table(name)
            depends = {fk.target_table for fk in schema.foreign_keys} - {name}
            if depends <= loaded:
                for row in remaining.pop(name):
                    database.insert(name, row)
                loaded.add(name)
                progressed = True
        if not progressed:
            raise DatabaseError(
                f"circular foreign-key dependency among {sorted(remaining)}"
            )
    for name, indexes in body.get("indexes", {}).items():
        if name not in database:
            raise DatabaseError(
                f"snapshot indexes reference unknown table {name!r}"
            )
        for column in indexes.get("hash", ()):
            database.create_index(name, column)
        for column in indexes.get("ordered", ()):
            database.create_ordered_index(name, column)
    return database


def dump_database(database: Database, path: str) -> None:
    """Write a JSON snapshot to ``path``."""
    with open(path, "w") as handle:
        handle.write(dumps_database(database))


def load_database(path: str) -> Database:
    """Load a JSON snapshot from ``path``."""
    with open(path) as handle:
        return loads_database(handle.read())
