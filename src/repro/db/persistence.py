"""Database snapshots: dump/load the schema, contents and index DDL as JSON.

Format version 3 serialises table contents *column-oriented*, mirroring
the columnar bank storage: one value list per column, parallel by row
(in row-id order).  That keeps the snapshot a straight dump of the
banks — no per-row dict is built on the way out — and typically smaller
(column names appear once per table instead of once per row).  Versions
1 and 2 stored row dicts; both still load.

Secondary-index DDL (hash and ordered indexes) is part of the snapshot
(since version 2), so a loaded database presents the query planner with
exactly the access paths the dumped one had and plans identically.
Version-1 snapshots simply carry no index section beyond the
primary-key/unique indexes the schema implies.

Stored procedures are Python callables and cannot be serialised; a
loaded database starts with an empty procedure registry and the caller
re-registers its workload (exactly like restoring a SQL dump and
re-applying the function definitions).
"""

from __future__ import annotations

import datetime as _dt
import json
import os
from typing import Any

from repro.db.database import Database
from repro.db.schema import Column, DatabaseSchema, ForeignKey, TableSchema
from repro.db.segments import DeltaLog, read_delta_records
from repro.db.types import DataType
from repro.errors import DatabaseError

__all__ = [
    "apply_log_ops",
    "dump_database",
    "load_database",
    "dumps_database",
    "loads_database",
    "dump_incremental",
    "load_incremental",
    "BASE_SNAPSHOT_NAME",
    "DELTA_LOG_NAME",
]

_FORMAT_VERSION = 3
_READABLE_VERSIONS = (1, 2, 3, 4)

#: File names inside an incremental snapshot directory.
BASE_SNAPSHOT_NAME = "base.json"
DELTA_LOG_NAME = "delta.log"


def _encode_value(value: Any) -> Any:
    if isinstance(value, _dt.datetime):  # pragma: no cover - not a col type
        return {"$type": "datetime", "value": value.isoformat()}
    if isinstance(value, _dt.date):
        return {"$type": "date", "value": value.isoformat()}
    if isinstance(value, _dt.time):
        return {"$type": "time", "value": value.isoformat()}
    return value


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict) and "$type" in value:
        kind = value["$type"]
        if kind == "date":
            return _dt.date.fromisoformat(value["value"])
        if kind == "time":
            return _dt.time.fromisoformat(value["value"])
        if kind == "datetime":  # pragma: no cover - not a col type
            return _dt.datetime.fromisoformat(value["value"])
        raise DatabaseError(f"unknown encoded type {kind!r}")
    return value


def _schema_payload(schema: DatabaseSchema) -> list[dict[str, Any]]:
    tables = []
    for table in schema:
        tables.append(
            {
                "name": table.name,
                "primary_key": table.primary_key,
                "columns": [
                    {
                        "name": column.name,
                        "dtype": column.dtype.value,
                        "nullable": column.nullable,
                        "unique": column.unique,
                    }
                    for column in table.columns
                ],
                "foreign_keys": [
                    {
                        "column": fk.column,
                        "target_table": fk.target_table,
                        "target_column": fk.target_column,
                    }
                    for fk in table.foreign_keys
                ],
            }
        )
    return tables


def _schema_from_payload(payload: list[dict[str, Any]]) -> DatabaseSchema:
    tables = []
    for body in payload:
        tables.append(
            TableSchema(
                body["name"],
                [
                    Column(
                        column["name"],
                        DataType(column["dtype"]),
                        nullable=column["nullable"],
                        unique=column["unique"],
                    )
                    for column in body["columns"]
                ],
                primary_key=body.get("primary_key"),
                foreign_keys=[
                    ForeignKey(fk["column"], fk["target_table"],
                               fk["target_column"])
                    for fk in body.get("foreign_keys", ())
                ],
            )
        )
    return DatabaseSchema(tables)


def _index_payload(database: Database) -> dict[str, dict[str, list[str]]]:
    """Secondary-index DDL per table.

    Hash indexes implied by the schema (primary key, unique columns)
    are rebuilt by table construction and excluded here; everything
    else — FK probe indexes, ordered range/ORDER BY indexes — must be
    recorded or a loaded database silently plans worse.
    """
    payload: dict[str, dict[str, list[str]]] = {}
    for name in database.table_names:
        table = database.table(name)
        implied = {c.name for c in table.schema.columns if c.unique}
        if table.schema.primary_key:
            implied.add(table.schema.primary_key)
        hash_columns = [
            c for c in table.hash_index_columns() if c not in implied
        ]
        ordered_columns = table.ordered_index_columns()
        if hash_columns or ordered_columns:
            payload[name] = {
                "hash": hash_columns,
                "ordered": ordered_columns,
            }
    return payload


def _column_payload(database: Database) -> dict[str, dict[str, list]]:
    """Per-table column banks (v3): ``column -> values`` in row-id order.

    Each bank is read straight off the table's columnar storage; all
    banks of one table have equal length (the row count).
    """
    payload: dict[str, dict[str, list]] = {}
    for name in database.table_names:
        table = database.table(name)
        payload[name] = {
            column: [_encode_value(value) for value in values]
            for column, values in table.column_arrays().items()
        }
    return payload


def dumps_database(database: Database, version: int = _FORMAT_VERSION) -> str:
    """Serialise schema + column banks + secondary-index DDL to JSON.

    ``version=4`` additionally records each table's row ids (parallel
    to the banks) and id counter, so a load restores rows under their
    *original* ids — the property a delta-log replay depends on (its
    ops address rows by id).  Version 3 stays the default standalone
    format; v4 is the base image of an incremental snapshot.
    """
    if version not in (3, 4):
        raise DatabaseError(f"cannot write snapshot version {version!r}")
    payload: dict[str, Any] = {
        "format_version": version,
        "schema": _schema_payload(database.schema),
        "columns": _column_payload(database),
        "indexes": _index_payload(database),
    }
    if version >= 4:
        payload["generation"] = database.data_version
        payload["row_ids"] = {
            name: database.table(name).row_ids()
            for name in database.table_names
        }
        payload["next_row_id"] = {
            name: database.table(name).next_row_id
            for name in database.table_names
        }
    return json.dumps(payload, indent=2)


def _content_section(body: dict[str, Any], key: str) -> dict[str, Any]:
    """The mandatory content section, failing loudly when absent.

    A snapshot whose version mandates a section but lacks it (truncated
    write, hand-edited file) must not load as an empty database.
    """
    try:
        return body[key]
    except KeyError:
        raise DatabaseError(
            f"snapshot (version {body.get('format_version')!r}) is missing "
            f"its {key!r} section"
        ) from None


def _rows_from_v3(body: dict[str, Any]) -> dict[str, list[dict[str, Any]]]:
    """Decode a v3 ``columns`` section into per-table row dicts."""
    out: dict[str, list[dict[str, Any]]] = {}
    for name, banks in _content_section(body, "columns").items():
        columns = list(banks)
        decoded = [
            [_decode_value(value) for value in banks[column]]
            for column in columns
        ]
        lengths = {len(bank) for bank in decoded}
        if len(lengths) > 1:
            raise DatabaseError(
                f"snapshot table {name!r}: ragged column banks "
                f"(lengths {sorted(lengths)})"
            )
        out[name] = [
            dict(zip(columns, values)) for values in zip(*decoded)
        ]
    return out


def _rows_from_legacy(body: dict[str, Any]) -> dict[str, list[dict[str, Any]]]:
    """Decode a v1/v2 ``rows`` section (one dict per row)."""
    return {
        name: [
            {key: _decode_value(value) for key, value in row.items()}
            for row in rows
        ]
        for name, rows in _content_section(body, "rows").items()
    }


def _load_v4_rows(database: Database, body: dict[str, Any]) -> None:
    """Restore a v4 snapshot's rows under their original row ids.

    Rows re-enter through ``Table.restore`` (values were coerced and
    FK-checked before the dump), so any table order works and the id
    counters advance to exactly the dumped state — replaying a delta
    log's inserts then re-takes the ids it recorded.  One commit point
    at the end publishes everything.
    """
    row_ids = _content_section(body, "row_ids")
    next_ids = body.get("next_row_id", {})
    for name, rows in _rows_from_v3(body).items():
        table = database.table(name)
        ids = row_ids.get(name, [])
        if len(ids) != len(rows):
            raise DatabaseError(
                f"snapshot table {name!r}: {len(ids)} row ids for "
                f"{len(rows)} rows"
            )
        for rid, row in zip(ids, rows):
            table.restore(rid, row)
        counter = next_ids.get(name)
        if counter is not None:
            table.advance_row_counter(counter)
    database.notify_data_changed()


def loads_database(payload: str) -> Database:
    """Rebuild a database from :func:`dumps_database` output."""
    body = json.loads(payload)
    version = body.get("format_version")
    if version not in _READABLE_VERSIONS:
        raise DatabaseError(f"unsupported snapshot version {version!r}")
    database = Database(_schema_from_payload(body["schema"]))
    if version >= 4:
        _load_v4_rows(database, body)
        for name, indexes in body.get("indexes", {}).items():
            if name not in database:
                raise DatabaseError(
                    f"snapshot indexes reference unknown table {name!r}"
                )
            for column in indexes.get("hash", ()):
                database.create_index(name, column)
            for column in indexes.get("ordered", ()):
                database.create_ordered_index(name, column)
        return database
    # Insert tables in FK-dependency order: repeatedly insert whatever
    # whose referenced tables are already loaded.
    if version >= 3:
        remaining = _rows_from_v3(body)
    else:
        remaining = _rows_from_legacy(body)
    loaded: set[str] = set()
    while remaining:
        progressed = False
        for name in list(remaining):
            schema = database.schema.table(name)
            depends = {fk.target_table for fk in schema.foreign_keys} - {name}
            if depends <= loaded:
                for row in remaining.pop(name):
                    database.insert(name, row)
                loaded.add(name)
                progressed = True
        if not progressed:
            raise DatabaseError(
                f"circular foreign-key dependency among {sorted(remaining)}"
            )
    for name, indexes in body.get("indexes", {}).items():
        if name not in database:
            raise DatabaseError(
                f"snapshot indexes reference unknown table {name!r}"
            )
        for column in indexes.get("hash", ()):
            database.create_index(name, column)
        for column in indexes.get("ordered", ()):
            database.create_ordered_index(name, column)
    return database


def dump_database(database: Database, path: str) -> None:
    """Write a JSON snapshot to ``path``."""
    with open(path, "w") as handle:
        handle.write(dumps_database(database))


def load_database(path: str) -> Database:
    """Load a JSON snapshot from ``path``."""
    with open(path) as handle:
        return loads_database(handle.read())


# ---------------------------------------------------------------------------
# Incremental snapshots (format v4 base image + delta log)
# ---------------------------------------------------------------------------

def dump_incremental(database: Database, directory: str) -> str:
    """Write a v4 base image to ``directory`` and start its delta log.

    After this returns, every committed mutation appends to
    ``delta.log`` (one CRC-protected JSON line per commit, flushed at
    the commit point), so ``directory`` is a continuously-current
    snapshot: :func:`load_incremental` restores base + replay at any
    moment, including after a crash mid-append.  Taking the commit
    latch for the base write guarantees no commit falls between the
    image and the first logged record.
    """
    os.makedirs(directory, exist_ok=True)
    base_path = os.path.join(directory, BASE_SNAPSHOT_NAME)
    log_path = os.path.join(directory, DELTA_LOG_NAME)
    with database.write_locked():
        with open(base_path, "w") as handle:
            handle.write(dumps_database(database, version=4))
        log = database.delta_log
        if log is None:
            log = DeltaLog()
        log.attach(
            log_path,
            encoder=_encode_value,
            truncate=True,
            decoder=_decode_value,
        )
        database.delta_log = log
    return directory


def load_incremental(directory: str) -> Database:
    """Restore a database from an incremental snapshot directory.

    Loads the v4 base image, then replays every fully committed
    delta-log record (the tolerant reader cuts a torn or corrupt tail,
    recovering to the last complete commit), and finally compacts so
    the restored database starts sealed — restart lands directly in
    the cache-retentive storage mode.
    """
    base_path = os.path.join(directory, BASE_SNAPSHOT_NAME)
    if not os.path.exists(base_path):
        raise DatabaseError(
            f"no incremental snapshot at {directory!r}: "
            f"missing {BASE_SNAPSHOT_NAME}"
        )
    database = load_database(base_path)
    log_path = os.path.join(directory, DELTA_LOG_NAME)
    if os.path.exists(log_path):
        records, __ = read_delta_records(log_path, decoder=_decode_value)
        _replay_records(database, records)
    database.compact()
    return database


def _replay_records(database: Database, records: list[dict[str, Any]]) -> None:
    """Re-apply committed delta-log records in order.

    Ops go through the normal ``Database`` mutation surface (same FK
    checks, same commit points), so a replayed database is
    indistinguishable from one that executed the workload live.  The
    id counters restored by the v4 base make each replayed insert
    re-take the id the log recorded; a mismatch means the log does not
    belong to this base image.
    """
    for record in records:
        apply_log_ops(database, record["ops"])


def apply_log_ops(database: Database, ops: list) -> None:
    """Apply one delta-log record's ops to ``database``.

    The shared core of snapshot replay and replica catch-up (the
    replication tier's :class:`~repro.replication.ReplicaApplier` calls
    it per batched record).  Inserts must re-take the id the log
    recorded — the v4 base restores id counters exactly, so a mismatch
    means the log and the database diverged.
    """
    for op in ops:
        kind, table_name, row_id, payload = op
        if kind == "insert":
            assigned = database.insert(table_name, dict(payload))
            if assigned != row_id:
                raise DatabaseError(
                    f"delta-log replay: insert into {table_name!r} "
                    f"took id {assigned}, log recorded {row_id} — "
                    "log does not match this base snapshot"
                )
        elif kind == "update":
            database.update(table_name, row_id, dict(payload))
        elif kind == "delete":
            database.delete(table_name, row_id)
        else:
            raise DatabaseError(
                f"delta-log replay: unknown op kind {kind!r}"
            )
