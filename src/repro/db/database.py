"""The :class:`Database` facade: tables + transactions + procedures + stats.

This is the OLTP substrate the paper assumes (it uses PostgreSQL; see
DESIGN.md for the substitution argument).  The facade layers three things
over raw :class:`~repro.db.table.Table` storage:

* foreign-key enforcement across tables on insert/update/delete,
* undo-logged atomic mutations via the transaction manager, and
* change notification so cached statistics can invalidate themselves —
  the mechanism behind the paper's "no retraining is required in case
  data changes".
"""

from __future__ import annotations

import threading
from typing import Any, Callable, ContextManager

from repro.db.locks import RWLock
from repro.db.procedures import ProcedureRegistry
from repro.db.schema import DatabaseSchema, TableSchema
from repro.db.table import Row, Table
from repro.db.transactions import TransactionManager
from repro.errors import ConstraintViolation, UnknownTableError

__all__ = ["Database"]


class Database:
    """An in-memory relational database with transactions and procedures."""

    def __init__(self, schema: DatabaseSchema) -> None:
        schema.validate()
        self.schema = schema
        self._tables: dict[str, Table] = {
            table.name: Table(table) for table in schema
        }
        self.transactions = TransactionManager(self)
        self.procedures = ProcedureRegistry(self)
        self.rw_lock = RWLock()
        self._data_version = 0
        self._listener_lock = threading.Lock()
        self._change_listeners: list[Callable[[], None]] = []
        self._statistics_lock = threading.Lock()
        self._statistics = None
        self._plan_cache = None
        self._default_connection = None
        self._index_advisor = None

    # ------------------------------------------------------------------
    # Table access
    # ------------------------------------------------------------------
    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(f"no table named {name!r}") from None

    @property
    def table_names(self) -> tuple[str, ...]:
        return tuple(self._tables)

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def add_table(self, schema: TableSchema) -> Table:
        """Add a new table to an existing database (DDL)."""
        self.schema.add_table(schema)
        self.schema.validate()
        table = Table(schema)
        self._tables[schema.name] = table
        return table

    def create_index(self, table_name: str, column: str) -> None:
        """Build a hash index on ``table.column`` (DDL).

        Bumps the data version: cached plan templates were priced
        without this access path and must recompile to use it.
        """
        with self.write_locked():
            self.table(table_name).create_index(column)
            self.notify_data_changed()

    def create_ordered_index(self, table_name: str, column: str) -> None:
        """Build an ordered secondary index on ``table.column`` (DDL).

        Ordered indexes let the query planner push range predicates and
        ``ORDER BY`` down instead of scanning and sorting.  Bumps the
        data version so cached plan templates pick the new path up.
        """
        with self.write_locked():
            self.table(table_name).create_ordered_index(column)
            self.notify_data_changed()

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def statistics(self):
        """The shared :class:`~repro.db.statistics.StatisticsCatalog`.

        Created lazily; version-stamped internally, so it stays
        consistent across mutations without explicit invalidation.  The
        query planner prices candidate plans against it.
        """
        catalog = self._statistics
        if catalog is None:
            from repro.db.statistics import StatisticsCatalog

            with self._statistics_lock:
                if self._statistics is None:
                    self._statistics = StatisticsCatalog(self)
                catalog = self._statistics
        return catalog

    @property
    def plan_cache(self):
        """The shared :class:`~repro.db.engine.cache.PlanCache`.

        Created lazily; version-stamped like the statistics catalog, so
        committed mutations invalidate cached plan templates without
        explicit coordination.  ``Query.run``/``count`` and
        ``aggregate_query`` read through it.
        """
        cache = self._plan_cache
        if cache is None:
            from repro.db.engine.cache import PlanCache

            with self._statistics_lock:
                if self._plan_cache is None:
                    self._plan_cache = PlanCache(self)
                cache = self._plan_cache
        return cache

    # ------------------------------------------------------------------
    # Connections (the unified execution API)
    # ------------------------------------------------------------------
    def connect(self, name: str | None = None):
        """A fresh :class:`~repro.db.api.Connection` handle.

        Connections are lightweight: per-connection statistics, a
        prepared-statement pool and an index advisor over the shared
        database.  The serving runtime opens one per session.
        """
        from repro.db.api import Connection

        return Connection(self, name=name)

    @property
    def default_connection(self):
        """The shared connection behind the legacy ``Query.run`` /
        ``aggregate_query`` shims and long-lived internal components.

        Its prepared-statement pool amortises compilation across every
        session the way the plan cache amortises planning.
        """
        connection = self._default_connection
        if connection is None:
            from repro.db.api import Connection

            with self._statistics_lock:
                if self._default_connection is None:
                    self._default_connection = Connection(self, name="default")
                connection = self._default_connection
        return connection

    @property
    def index_advisor(self):
        """Database-wide :class:`~repro.db.api.IndexAdvisor`.

        Every connection records its SeqScan+Filter misses here as well
        as locally, so ``database.index_advisor.suggestions()`` ranks
        CREATE INDEX candidates across the whole workload.
        """
        advisor = self._index_advisor
        if advisor is None:
            from repro.db.api import IndexAdvisor

            with self._statistics_lock:
                if self._index_advisor is None:
                    self._index_advisor = IndexAdvisor()
                advisor = self._index_advisor
        return advisor

    # ------------------------------------------------------------------
    # Concurrency
    # ------------------------------------------------------------------
    def read_locked(self) -> ContextManager[None]:
        """Shared lock: many readers, excluded while a transaction runs."""
        return self.rw_lock.read_lock()

    def write_locked(self) -> ContextManager[None]:
        """Exclusive lock held around every transactional mutation."""
        return self.rw_lock.write_lock()

    # ------------------------------------------------------------------
    # Change tracking
    # ------------------------------------------------------------------
    @property
    def data_version(self) -> int:
        """Monotonic counter bumped on every committed (or auto) mutation."""
        return self._data_version

    def on_change(self, listener: Callable[[], None]) -> None:
        """Register a callback fired whenever data changes."""
        with self._listener_lock:
            self._change_listeners.append(listener)

    def notify_data_changed(self) -> None:
        with self._listener_lock:
            self._data_version += 1
            listeners = tuple(self._change_listeners)
        for listener in listeners:
            listener()

    # ------------------------------------------------------------------
    # Mutation (FK-checked, undo-logged)
    # ------------------------------------------------------------------
    def insert(self, table_name: str, values: dict[str, Any]) -> int:
        """Insert a row; returns the internal row id."""
        with self.write_locked():
            table = self.table(table_name)
            row = dict(values)
            self._check_outgoing_fks(table.schema, row)
            row_id = table.insert(row)
            self.transactions.log_insert(table_name, row_id)
            if not self.transactions.in_transaction():
                self.notify_data_changed()
            return row_id

    def update(self, table_name: str, row_id: int, changes: dict[str, Any]) -> None:
        with self.write_locked():
            table = self.table(table_name)
            merged = table.get(row_id)
            merged.update(changes)
            self._check_outgoing_fks(table.schema, merged)
            self._check_incoming_fks_on_key_change(table, row_id, changes)
            old = table.update(row_id, changes)
            self.transactions.log_update(table_name, row_id, old)
            if not self.transactions.in_transaction():
                self.notify_data_changed()

    def delete(self, table_name: str, row_id: int) -> None:
        with self.write_locked():
            table = self.table(table_name)
            row = table.get(row_id)
            self._check_no_referencing_rows(table, row)
            old = table.delete(row_id)
            self.transactions.log_delete(table_name, row_id, old)
            if not self.transactions.in_transaction():
                self.notify_data_changed()

    def insert_many(self, table_name: str, rows: list[dict[str, Any]]) -> list[int]:
        """Bulk insert (used by the dataset generators)."""
        return [self.insert(table_name, row) for row in rows]

    # ------------------------------------------------------------------
    # Convenience reads
    # ------------------------------------------------------------------
    def rows(self, table_name: str) -> list[Row]:
        return list(self.table(table_name))

    def find(self, table_name: str, column: str, value: Any) -> list[Row]:
        """All rows of ``table_name`` where ``column == value``."""
        table = self.table(table_name)
        return [table.get(rid) for rid in table.lookup(column, value)]

    def find_one(self, table_name: str, column: str, value: Any) -> Row | None:
        matches = self.find(table_name, column, value)
        return matches[0] if matches else None

    def count(self, table_name: str) -> int:
        return len(self.table(table_name))

    # ------------------------------------------------------------------
    # Foreign-key enforcement
    # ------------------------------------------------------------------
    def _check_outgoing_fks(self, schema: TableSchema, row: dict[str, Any]) -> None:
        for fk in schema.foreign_keys:
            value = row.get(fk.column)
            if value is None:
                continue
            target = self.table(fk.target_table)
            if not target.lookup(fk.target_column, value):
                raise ConstraintViolation(
                    f"table {schema.name!r}: value {value!r} for {fk.column!r} "
                    f"has no match in {fk.target_table}.{fk.target_column}"
                )

    def _check_incoming_fks_on_key_change(
        self, table: Table, row_id: int, changes: dict[str, Any]
    ) -> None:
        for column in changes:
            old_value = table.get(row_id).get(column)
            if old_value == changes[column]:
                continue
            for source_name, fk in self.schema.referencing_tables(table.name):
                if fk.target_column != column:
                    continue
                source = self.table(source_name)
                if source.lookup(fk.column, old_value):
                    raise ConstraintViolation(
                        f"cannot change {table.name}.{column} from "
                        f"{old_value!r}: referenced by {source_name}.{fk.column}"
                    )

    def _check_no_referencing_rows(self, table: Table, row: Row) -> None:
        for source_name, fk in self.schema.referencing_tables(table.name):
            value = row.get(fk.target_column)
            if value is None:
                continue
            source = self.table(source_name)
            if source.lookup(fk.column, value):
                raise ConstraintViolation(
                    f"cannot delete from {table.name!r}: row is referenced "
                    f"by {source_name}.{fk.column}"
                )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        counts = {name: len(t) for name, t in self._tables.items()}
        return f"Database({counts})"
