"""The :class:`Database` facade: tables + transactions + procedures + stats.

This is the OLTP substrate the paper assumes (it uses PostgreSQL; see
DESIGN.md for the substitution argument).  The facade layers three things
over raw :class:`~repro.db.table.Table` storage:

* foreign-key enforcement across tables on insert/update/delete,
* undo-logged atomic mutations via the transaction manager, and
* change notification so cached statistics can invalidate themselves —
  the mechanism behind the paper's "no retraining is required in case
  data changes".

Concurrency model (MVCC): readers enter :meth:`Database.read_locked`,
which pins a snapshot generation for the scope instead of taking a
shared lock — writers never block them.  Writers enter
:meth:`Database.write_locked`, a narrow reentrant commit latch that
serialises transactions against each other only.  Commit points advance
the generation clock, making a whole transaction visible to new
snapshots atomically, and trigger a vacuum pass bounded by the oldest
still-pinned generation.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Callable, ContextManager, Iterator

from repro.db.locks import CommitLatch, LockUpgradeError
from repro.db.procedures import ProcedureRegistry
from repro.db.schema import DatabaseSchema, TableSchema
from repro.db.snapshots import GenerationClock, SnapshotManager
from repro.db.table import Row, Table
from repro.db.transactions import TransactionManager
from repro.errors import ConstraintViolation, UnknownTableError

__all__ = ["Database"]


class Database:
    """An in-memory relational database with transactions and procedures."""

    def __init__(self, schema: DatabaseSchema, *, autotune: bool = True) -> None:
        schema.validate()
        self.schema = schema
        self._tables: dict[str, Table] = {
            table.name: Table(table) for table in schema
        }
        self.transactions = TransactionManager(self)
        self.procedures = ProcedureRegistry(self)
        self.clock = GenerationClock()
        self.commit_latch = CommitLatch()
        self.snapshots = SnapshotManager(
            self.clock, latch=self.commit_latch, on_idle=self._on_idle
        )
        # Incremental persistence: when a DeltaLog is assigned (see
        # ``repro.db.persistence.dump_incremental``) every committed
        # logical mutation is recorded and flushed at the commit point.
        self.delta_log = None
        # HTAP replication: when a ReplicaManager adopts this database
        # as its primary (see ``repro.replication``) it registers here,
        # and the Connection API routes analytic one-shots through
        # ``replica_manager.read()``.  None means no replicas — every
        # statement runs locally.
        self.replica_manager = None
        # Plan-template stamp: pre-sealed it ticks with every commit
        # (plans were priced against statistics that just changed);
        # once compaction has sealed the tables, committed writes leave
        # it alone — templates stay structurally valid, statistics
        # merge the delta — and only DDL or a re-seal bumps it.
        self._plan_ticks = 0
        self._sealed_mode = False
        self.autocompact_delta = 512
        for table in self._tables.values():
            table.bind_versioning(
                self.clock, self.snapshots, self.transactions.in_transaction
            )
        self._listener_lock = threading.Lock()
        self._change_listeners: list[Callable[[], None]] = []
        self._statistics_lock = threading.Lock()
        self._statistics = None
        self._plan_cache = None
        self._default_connection = None
        self._index_advisor = None
        # Self-driving policy: consumes the advisor's miss stream and the
        # per-index usage counters it accretes below; ticks off _on_idle.
        from repro.db.autotune import Autotuner

        self.autotuner = Autotuner(self, enabled=autotune)

    # ------------------------------------------------------------------
    # Table access
    # ------------------------------------------------------------------
    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(f"no table named {name!r}") from None

    @property
    def table_names(self) -> tuple[str, ...]:
        return tuple(self._tables)

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def add_table(self, schema: TableSchema) -> Table:
        """Add a new table to an existing database (DDL)."""
        self.schema.add_table(schema)
        self.schema.validate()
        table = Table(schema)
        table.bind_versioning(
            self.clock, self.snapshots, self.transactions.in_transaction
        )
        self._tables[schema.name] = table
        self._plan_ticks += 1
        return table

    def create_index(self, table_name: str, column: str) -> None:
        """Build a hash index on ``table.column`` (DDL).

        Bumps the data version: cached plan templates were priced
        without this access path and must recompile to use it.
        """
        with self.write_locked():
            self.table(table_name).create_index(column)
            self._plan_ticks += 1
            self.notify_data_changed()

    def create_ordered_index(self, table_name: str, column: str) -> None:
        """Build an ordered secondary index on ``table.column`` (DDL).

        Ordered indexes let the query planner push range predicates and
        ``ORDER BY`` down instead of scanning and sorting.  Bumps the
        data version so cached plan templates pick the new path up.
        """
        with self.write_locked():
            self.table(table_name).create_ordered_index(column)
            self._plan_ticks += 1
            self.notify_data_changed()

    def drop_index(self, table_name: str, column: str) -> None:
        """Drop the hash index on ``table.column`` (DDL).

        Bumps the data version: cached plan templates may reference the
        dropped access path and must recompile without it.  Constraint
        backing indexes (primary key, unique) refuse to drop.
        """
        with self.write_locked():
            self.table(table_name).drop_index(column)
            self._plan_ticks += 1
            self.notify_data_changed()

    def drop_ordered_index(self, table_name: str, column: str) -> None:
        """Drop the ordered secondary index on ``table.column`` (DDL)."""
        with self.write_locked():
            self.table(table_name).drop_ordered_index(column)
            self._plan_ticks += 1
            self.notify_data_changed()

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def statistics(self):
        """The shared :class:`~repro.db.statistics.StatisticsCatalog`.

        Created lazily; version-stamped internally, so it stays
        consistent across mutations without explicit invalidation.  The
        query planner prices candidate plans against it.
        """
        catalog = self._statistics
        if catalog is None:
            from repro.db.statistics import StatisticsCatalog

            with self._statistics_lock:
                if self._statistics is None:
                    self._statistics = StatisticsCatalog(self)
                catalog = self._statistics
        return catalog

    @property
    def plan_cache(self):
        """The shared :class:`~repro.db.engine.cache.PlanCache`.

        Created lazily; version-stamped like the statistics catalog, so
        committed mutations invalidate cached plan templates without
        explicit coordination.  ``Query.run``/``count`` and
        ``aggregate_query`` read through it.
        """
        cache = self._plan_cache
        if cache is None:
            from repro.db.engine.cache import PlanCache

            with self._statistics_lock:
                if self._plan_cache is None:
                    self._plan_cache = PlanCache(self)
                cache = self._plan_cache
        return cache

    # ------------------------------------------------------------------
    # Connections (the unified execution API)
    # ------------------------------------------------------------------
    def connect(self, name: str | None = None):
        """A fresh :class:`~repro.db.api.Connection` handle.

        Connections are lightweight: per-connection statistics, a
        prepared-statement pool and an index advisor over the shared
        database.  The serving runtime opens one per session.
        """
        from repro.db.api import Connection

        return Connection(self, name=name)

    @property
    def default_connection(self):
        """The shared connection behind the legacy ``Query.run`` /
        ``aggregate_query`` shims and long-lived internal components.

        Its prepared-statement pool amortises compilation across every
        session the way the plan cache amortises planning.
        """
        connection = self._default_connection
        if connection is None:
            from repro.db.api import Connection

            with self._statistics_lock:
                if self._default_connection is None:
                    self._default_connection = Connection(self, name="default")
                connection = self._default_connection
        return connection

    @property
    def index_advisor(self):
        """Database-wide :class:`~repro.db.api.IndexAdvisor`.

        Every connection records its SeqScan+Filter misses here as well
        as locally, so ``database.index_advisor.suggestions()`` ranks
        CREATE INDEX candidates across the whole workload.
        """
        advisor = self._index_advisor
        if advisor is None:
            from repro.db.api import IndexAdvisor

            with self._statistics_lock:
                if self._index_advisor is None:
                    self._index_advisor = IndexAdvisor()
                advisor = self._index_advisor
        return advisor

    # ------------------------------------------------------------------
    # Concurrency
    # ------------------------------------------------------------------
    def read_locked(self, read_only: bool = False) -> ContextManager[Any]:
        """Pin a snapshot for the scope: every read inside observes one
        consistent generation while writers commit freely alongside.

        ``read_only=True`` additionally forbids writes inside the scope
        (:meth:`write_locked` raises :class:`LockUpgradeError`) — the
        MVCC replacement for the old read→write upgrade refusal.
        """
        return self.snapshots.pinned(read_only=read_only)

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        """The narrow writer commit latch (reentrant; serialises
        transactions against each other, never against readers)."""
        if self.snapshots.writes_forbidden():
            raise LockUpgradeError(
                "cannot write inside a read-only snapshot scope"
            )
        self.commit_latch.acquire()
        try:
            yield
        finally:
            self.commit_latch.release()

    def snapshot_version(self) -> int:
        """The generation the calling thread's reads observe right now."""
        pinned = self.snapshots.active_generation()
        return self.clock.current if pinned is None else pinned

    def _vacuum_all(self) -> None:
        """Reclaim versions no pinned snapshot can still see."""
        bound = self.snapshots.min_pinned()
        for table in self._tables.values():
            table.vacuum(bound)

    def _on_idle(self) -> None:
        """Fired by the snapshot manager when the last pin drains."""
        self._vacuum_all()
        self._maybe_compact()
        self.autotuner.on_idle()

    def _maybe_compact(self) -> None:
        """Opportunistic compaction once any sealed table's delta has
        grown past :attr:`autocompact_delta` rows.

        Runs on the pin-drain path, so it must stay out of the way:
        never mid-transaction, never when a writer holds the latch
        (the ``locked`` peek is racy, but :meth:`compact` re-checks
        pins under the mutex — a miss here just defers to the next
        idle point), and only in sealed mode, where delta growth is
        what degrades the two-part merges.
        """
        threshold = self.autocompact_delta
        if (
            not self._sealed_mode
            or threshold is None
            or self.transactions.in_transaction()
            or self.commit_latch.locked
            or self.snapshots.writes_forbidden()
        ):
            return
        if any(
            table.is_sealed and table.delta_rows >= threshold
            for table in self._tables.values()
        ):
            self.compact()

    def compact(self) -> int:
        """Fold every table's delta into a fresh sealed segment.

        Takes the commit latch and blocks new snapshot pins for the
        duration; returns the number of tables resealed (0 when a
        pinned reader made compaction unsafe — callers just retry at
        the next idle point).  First use switches the database into
        sealed mode: analytic memos become epoch-stable and committed
        writes stop churning the plan-template stamp.
        """
        from repro.errors import TransactionError

        if self.transactions.in_transaction():
            raise TransactionError(
                "cannot compact inside an open transaction"
            )
        with self.write_locked():
            with self.snapshots.pins_blocked() as quiesced:
                if not quiesced:
                    return 0
                compacted = 0
                for table in self._tables.values():
                    if table.compact():
                        compacted += 1
                if compacted:
                    self._sealed_mode = True
                    self._plan_ticks += 1
                return compacted

    def storage_stats(self) -> dict[str, Any]:
        """Per-table sealed/delta/compaction figures (``:stats``)."""
        return {
            name: table.storage_stats()
            for name, table in self._tables.items()
        }

    # ------------------------------------------------------------------
    # Change tracking
    # ------------------------------------------------------------------
    @property
    def data_version(self) -> int:
        """Monotonic counter bumped on every committed (or auto)
        mutation — the MVCC generation clock's committed generation."""
        return self.clock.current

    def on_change(self, listener: Callable[[], None]) -> None:
        """Register a callback fired whenever data changes."""
        with self._listener_lock:
            self._change_listeners.append(listener)

    @property
    def plan_stamp(self) -> int:
        """The plan cache's version stamp (see ``_plan_ticks``)."""
        return self._plan_ticks

    def notify_data_changed(self) -> None:
        """Commit point: publish pending stamps and fan out to listeners."""
        with self._listener_lock:
            self.clock.advance()
            if not self._sealed_mode:
                self._plan_ticks += 1
            log = self.delta_log
            if log is not None:
                log.commit(self.clock.current)
            listeners = tuple(self._change_listeners)
        # The committing thread's own enclosing pins (a turn that just
        # booked something) must observe what it published.
        self.snapshots.refresh_current_thread()
        self._vacuum_all()
        for listener in listeners:
            listener()

    # ------------------------------------------------------------------
    # Mutation (FK-checked, undo-logged)
    # ------------------------------------------------------------------
    def insert(self, table_name: str, values: dict[str, Any]) -> int:
        """Insert a row; returns the internal row id."""
        with self.write_locked():
            table = self.table(table_name)
            row = dict(values)
            self._check_outgoing_fks(table.schema, row)
            row_id = table.insert(row)
            self.autotuner.charge_dml(table_name, None)
            self.transactions.log_insert(table_name, row_id)
            if self.delta_log is not None:
                self.delta_log.record(
                    "insert", table_name, row_id, table.get(row_id)
                )
            if not self.transactions.in_transaction():
                self.notify_data_changed()
            return row_id

    def update(self, table_name: str, row_id: int, changes: dict[str, Any]) -> None:
        with self.write_locked():
            table = self.table(table_name)
            merged = table.get(row_id)
            merged.update(changes)
            self._check_outgoing_fks(table.schema, merged)
            self._check_incoming_fks_on_key_change(table, row_id, changes)
            old = table.update(row_id, changes)
            self.autotuner.charge_dml(table_name, changes)
            self.transactions.log_update(table_name, row_id, old)
            if self.delta_log is not None:
                # Log the coerced post-update values, not the caller's
                # raw ones — replay must not re-run coercion decisions.
                row = table.get(row_id)
                self.delta_log.record(
                    "update", table_name, row_id,
                    {column: row[column] for column in changes},
                )
            if not self.transactions.in_transaction():
                self.notify_data_changed()

    def delete(self, table_name: str, row_id: int) -> None:
        with self.write_locked():
            table = self.table(table_name)
            row = table.get(row_id)
            self._check_no_referencing_rows(table, row)
            old = table.delete(row_id)
            self.autotuner.charge_dml(table_name, None)
            self.transactions.log_delete(table_name, row_id, old)
            if self.delta_log is not None:
                self.delta_log.record("delete", table_name, row_id)
            if not self.transactions.in_transaction():
                self.notify_data_changed()

    def insert_many(self, table_name: str, rows: list[dict[str, Any]]) -> list[int]:
        """Bulk insert (used by the dataset generators)."""
        return [self.insert(table_name, row) for row in rows]

    # ------------------------------------------------------------------
    # Convenience reads
    # ------------------------------------------------------------------
    def rows(self, table_name: str) -> list[Row]:
        return list(self.table(table_name))

    def find(self, table_name: str, column: str, value: Any) -> list[Row]:
        """All rows of ``table_name`` where ``column == value``."""
        table = self.table(table_name)
        return [table.get(rid) for rid in table.lookup(column, value)]

    def find_one(self, table_name: str, column: str, value: Any) -> Row | None:
        matches = self.find(table_name, column, value)
        return matches[0] if matches else None

    def count(self, table_name: str) -> int:
        return len(self.table(table_name))

    # ------------------------------------------------------------------
    # Foreign-key enforcement
    # ------------------------------------------------------------------
    def _check_outgoing_fks(self, schema: TableSchema, row: dict[str, Any]) -> None:
        for fk in schema.foreign_keys:
            value = row.get(fk.column)
            if value is None:
                continue
            target = self.table(fk.target_table)
            if not target.lookup(fk.target_column, value):
                raise ConstraintViolation(
                    f"table {schema.name!r}: value {value!r} for {fk.column!r} "
                    f"has no match in {fk.target_table}.{fk.target_column}"
                )

    def _check_incoming_fks_on_key_change(
        self, table: Table, row_id: int, changes: dict[str, Any]
    ) -> None:
        for column in changes:
            old_value = table.get(row_id).get(column)
            if old_value == changes[column]:
                continue
            for source_name, fk in self.schema.referencing_tables(table.name):
                if fk.target_column != column:
                    continue
                source = self.table(source_name)
                if source.lookup(fk.column, old_value):
                    raise ConstraintViolation(
                        f"cannot change {table.name}.{column} from "
                        f"{old_value!r}: referenced by {source_name}.{fk.column}"
                    )

    def _check_no_referencing_rows(self, table: Table, row: Row) -> None:
        for source_name, fk in self.schema.referencing_tables(table.name):
            value = row.get(fk.target_column)
            if value is None:
                continue
            source = self.table(source_name)
            if source.lookup(fk.column, value):
                raise ConstraintViolation(
                    f"cannot delete from {table.name!r}: row is referenced "
                    f"by {source_name}.{fk.column}"
                )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        counts = {name: len(t) for name, t in self._tables.items()}
        return f"Database({counts})"
