"""Predicate and query layer over :class:`repro.db.table.Table`.

This is not a SQL parser; it is a small relational-algebra API sufficient
for the agent runtime: typed comparison predicates with boolean
combinators, single-table selection that exploits hash indexes for
equality, equi-joins along foreign keys, projection, ordering, limits and
simple aggregation.

Example
-------
>>> from repro.db.query import eq, and_, Query
>>> query = Query("screening").where(and_(eq("movie_id", 3), eq("date", "2022-03-26")))
>>> rows = query.run(database)        # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.db.table import Row
from repro.errors import QueryError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.db.database import Database

__all__ = [
    "Predicate",
    "Comparison",
    "And",
    "Or",
    "Not",
    "TruePredicate",
    "eq",
    "ne",
    "lt",
    "le",
    "gt",
    "ge",
    "contains",
    "in_",
    "and_",
    "or_",
    "not_",
    "Query",
]


# ---------------------------------------------------------------------------
# Predicates
# ---------------------------------------------------------------------------

class Predicate:
    """Base class of the predicate expression tree."""

    def matches(self, row: Row) -> bool:
        raise NotImplementedError

    def columns(self) -> set[str]:
        """All column names mentioned by this predicate."""
        raise NotImplementedError

    def equality_bindings(self) -> dict[str, Any]:
        """``column -> value`` for top-level AND-ed equality comparisons.

        Used by the executor to pick hash indexes.
        """
        return {}


_OPERATORS: dict[str, Callable[[Any, Any], bool]] = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "contains": lambda a, b: isinstance(a, str)
    and isinstance(b, str)
    and b.lower() in a.lower(),
    "in": lambda a, b: a in b,
}


@dataclass(frozen=True)
class Comparison(Predicate):
    """``column <op> value`` with NULL-rejecting semantics (like SQL)."""

    column: str
    op: str
    value: Any

    def __post_init__(self) -> None:
        if self.op not in _OPERATORS:
            raise QueryError(f"unknown comparison operator {self.op!r}")

    def matches(self, row: Row) -> bool:
        if self.column not in row:
            raise QueryError(f"row has no column {self.column!r}")
        actual = row[self.column]
        if actual is None:
            return False
        try:
            return _OPERATORS[self.op](actual, self.value)
        except TypeError:
            return False

    def columns(self) -> set[str]:
        return {self.column}

    def equality_bindings(self) -> dict[str, Any]:
        if self.op == "==":
            return {self.column: self.value}
        return {}


@dataclass(frozen=True)
class And(Predicate):
    parts: tuple[Predicate, ...]

    def matches(self, row: Row) -> bool:
        return all(part.matches(row) for part in self.parts)

    def columns(self) -> set[str]:
        out: set[str] = set()
        for part in self.parts:
            out |= part.columns()
        return out

    def equality_bindings(self) -> dict[str, Any]:
        out: dict[str, Any] = {}
        for part in self.parts:
            out.update(part.equality_bindings())
        return out


@dataclass(frozen=True)
class Or(Predicate):
    parts: tuple[Predicate, ...]

    def matches(self, row: Row) -> bool:
        return any(part.matches(row) for part in self.parts)

    def columns(self) -> set[str]:
        out: set[str] = set()
        for part in self.parts:
            out |= part.columns()
        return out


@dataclass(frozen=True)
class Not(Predicate):
    part: Predicate

    def matches(self, row: Row) -> bool:
        return not self.part.matches(row)

    def columns(self) -> set[str]:
        return self.part.columns()


class TruePredicate(Predicate):
    """Matches every row; the identity element for AND."""

    def matches(self, row: Row) -> bool:
        return True

    def columns(self) -> set[str]:
        return set()


# Convenience constructors -------------------------------------------------

def eq(column: str, value: Any) -> Comparison:
    return Comparison(column, "==", value)


def ne(column: str, value: Any) -> Comparison:
    return Comparison(column, "!=", value)


def lt(column: str, value: Any) -> Comparison:
    return Comparison(column, "<", value)


def le(column: str, value: Any) -> Comparison:
    return Comparison(column, "<=", value)


def gt(column: str, value: Any) -> Comparison:
    return Comparison(column, ">", value)


def ge(column: str, value: Any) -> Comparison:
    return Comparison(column, ">=", value)


def contains(column: str, needle: str) -> Comparison:
    """Case-insensitive substring match on a text column."""
    return Comparison(column, "contains", needle)


def in_(column: str, values: Iterable[Any]) -> Comparison:
    return Comparison(column, "in", tuple(values))


def and_(*parts: Predicate) -> Predicate:
    flat = [p for p in parts if not isinstance(p, TruePredicate)]
    if not flat:
        return TruePredicate()
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def or_(*parts: Predicate) -> Predicate:
    if not parts:
        raise QueryError("or_() needs at least one predicate")
    if len(parts) == 1:
        return parts[0]
    return Or(tuple(parts))


def not_(part: Predicate) -> Not:
    return Not(part)


# ---------------------------------------------------------------------------
# Query
# ---------------------------------------------------------------------------

class Query:
    """A fluent single-root query with optional foreign-key joins.

    Joined columns appear in the result rows under ``table.column`` keys,
    while the root table's columns keep their bare names (mirroring how the
    paper's candidate tracking widens entity rows with joined attributes).
    """

    def __init__(self, table: str) -> None:
        self.table = table
        self._predicate: Predicate = TruePredicate()
        self._joins: list[tuple[str, str, str]] = []  # (column, table, target)
        self._projection: list[str] | None = None
        self._order_by: str | None = None
        self._descending = False
        self._limit: int | None = None

    # Builder API ----------------------------------------------------------
    def where(self, predicate: Predicate) -> "Query":
        self._predicate = and_(self._predicate, predicate)
        return self

    def join(self, column: str, table: str, target_column: str) -> "Query":
        """Equi-join ``root.column == table.target_column``."""
        self._joins.append((column, table, target_column))
        return self

    def select(self, *columns: str) -> "Query":
        self._projection = list(columns)
        return self

    def order_by(self, column: str, descending: bool = False) -> "Query":
        self._order_by = column
        self._descending = descending
        return self

    def limit(self, n: int) -> "Query":
        if n < 0:
            raise QueryError("limit must be non-negative")
        self._limit = n
        return self

    # Execution --------------------------------------------------------------
    def run(self, database: "Database") -> list[Row]:
        """Execute against ``database`` and return materialised rows."""
        table = database.table(self.table)
        row_ids = self._candidate_row_ids(table)
        rows = [table.get(rid) for rid in row_ids]
        rows = self._apply_joins(database, rows)
        rows = [row for row in rows if self._predicate.matches(row)]
        if self._order_by is not None:
            rows.sort(
                key=lambda r: (r[self._order_by] is None, r[self._order_by]),
                reverse=self._descending,
            )
        if self._limit is not None:
            rows = rows[: self._limit]
        if self._projection is not None:
            rows = [{c: row[c] for c in self._projection} for row in rows]
        return rows

    def count(self, database: "Database") -> int:
        return len(self.run(database))

    # Internals --------------------------------------------------------------
    def _candidate_row_ids(self, table) -> list[int]:
        """Use a hash index for the most selective root-table equality."""
        bindings = self._predicate.equality_bindings()
        best: list[int] | None = None
        for column, value in bindings.items():
            if not table.schema.has_column(column) or not table.has_index(column):
                continue
            try:
                ids = table.lookup(column, value)
            except Exception:
                continue
            if best is None or len(ids) < len(best):
                best = ids
        return best if best is not None else table.row_ids()

    def _apply_joins(self, database: "Database", rows: list[Row]) -> list[Row]:
        for column, table_name, target_column in self._joins:
            other = database.table(table_name)
            joined: list[Row] = []
            for row in rows:
                key = row.get(column)
                if key is None:
                    continue
                for rid in other.lookup(target_column, key):
                    match = other.get(rid)
                    widened = dict(row)
                    for other_col, value in match.items():
                        widened[f"{table_name}.{other_col}"] = value
                    joined.append(widened)
            rows = joined
        return rows
