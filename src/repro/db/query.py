"""Predicate and query layer over :class:`repro.db.table.Table`.

This is not a SQL parser; it is a small relational-algebra API sufficient
for the agent runtime: typed comparison predicates with boolean
combinators, single-root selection with equi-joins along foreign keys,
projection, ordering and limits.  Execution is delegated to the
cost-based engine in :mod:`repro.db.engine` — ``run()`` compiles the
query, plans it against the statistics catalog (hash-index equality,
ordered-index ranges and ORDER BY, costed join strategies) and executes
the plan; ``explain()`` shows the chosen plan.

Example
-------
>>> from repro.db.query import eq, and_, Query
>>> query = Query("screening").where(and_(eq("movie_id", 3), eq("date", "2022-03-26")))
>>> rows = query.run(database)        # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.db.table import Row
from repro.errors import QueryError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.db.database import Database

__all__ = [
    "Predicate",
    "Comparison",
    "And",
    "Or",
    "Not",
    "TruePredicate",
    "eq",
    "ne",
    "lt",
    "le",
    "gt",
    "ge",
    "contains",
    "in_",
    "and_",
    "or_",
    "not_",
    "Query",
]


# ---------------------------------------------------------------------------
# Predicates
# ---------------------------------------------------------------------------

class Predicate:
    """Base class of the predicate expression tree."""

    def matches(self, row: Row) -> bool:
        raise NotImplementedError

    def columns(self) -> set[str]:
        """All column names mentioned by this predicate."""
        raise NotImplementedError

    def equality_bindings(self) -> dict[str, Any]:
        """``column -> value`` for top-level AND-ed equality comparisons.

        Used by the executor to pick hash indexes.
        """
        return {}


_OPERATORS: dict[str, Callable[[Any, Any], bool]] = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "contains": lambda a, b: isinstance(a, str)
    and isinstance(b, str)
    and b.lower() in a.lower(),
    "in": lambda a, b: a in b,
}


@dataclass(frozen=True)
class Comparison(Predicate):
    """``column <op> value`` with NULL-rejecting semantics (like SQL)."""

    column: str
    op: str
    value: Any

    def __post_init__(self) -> None:
        if self.op not in _OPERATORS:
            raise QueryError(f"unknown comparison operator {self.op!r}")

    def matches(self, row: Row) -> bool:
        if self.column not in row:
            raise QueryError(f"row has no column {self.column!r}")
        actual = row[self.column]
        if actual is None:
            return False
        try:
            return _OPERATORS[self.op](actual, self.value)
        except TypeError:
            return False

    def columns(self) -> set[str]:
        return {self.column}

    def equality_bindings(self) -> dict[str, Any]:
        if self.op == "==":
            return {self.column: self.value}
        return {}


@dataclass(frozen=True)
class And(Predicate):
    parts: tuple[Predicate, ...]

    def matches(self, row: Row) -> bool:
        return all(part.matches(row) for part in self.parts)

    def columns(self) -> set[str]:
        out: set[str] = set()
        for part in self.parts:
            out |= part.columns()
        return out

    def equality_bindings(self) -> dict[str, Any]:
        out: dict[str, Any] = {}
        for part in self.parts:
            out.update(part.equality_bindings())
        return out


@dataclass(frozen=True)
class Or(Predicate):
    parts: tuple[Predicate, ...]

    def matches(self, row: Row) -> bool:
        return any(part.matches(row) for part in self.parts)

    def columns(self) -> set[str]:
        out: set[str] = set()
        for part in self.parts:
            out |= part.columns()
        return out


@dataclass(frozen=True)
class Not(Predicate):
    part: Predicate

    def matches(self, row: Row) -> bool:
        return not self.part.matches(row)

    def columns(self) -> set[str]:
        return self.part.columns()


class TruePredicate(Predicate):
    """Matches every row; the identity element for AND.

    All instances are interchangeable, and compare (and hash) equal so
    that query shapes containing one work as plan-cache keys.
    """

    def matches(self, row: Row) -> bool:
        return True

    def columns(self) -> set[str]:
        return set()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TruePredicate)

    def __hash__(self) -> int:
        return hash(TruePredicate)


# Convenience constructors -------------------------------------------------

def eq(column: str, value: Any) -> Comparison:
    return Comparison(column, "==", value)


def ne(column: str, value: Any) -> Comparison:
    return Comparison(column, "!=", value)


def lt(column: str, value: Any) -> Comparison:
    return Comparison(column, "<", value)


def le(column: str, value: Any) -> Comparison:
    return Comparison(column, "<=", value)


def gt(column: str, value: Any) -> Comparison:
    return Comparison(column, ">", value)


def ge(column: str, value: Any) -> Comparison:
    return Comparison(column, ">=", value)


def contains(column: str, needle: str) -> Comparison:
    """Case-insensitive substring match on a text column."""
    return Comparison(column, "contains", needle)


def in_(column: str, values: Iterable[Any]) -> Comparison:
    from repro.db.api import Param

    if isinstance(values, Param):
        # A named placeholder for the whole list: the prepared-statement
        # API binds the tuple at execute time.
        return Comparison(column, "in", values)
    return Comparison(column, "in", tuple(values))


def and_(*parts: Predicate) -> Predicate:
    flat = [p for p in parts if not isinstance(p, TruePredicate)]
    if not flat:
        return TruePredicate()
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def or_(*parts: Predicate) -> Predicate:
    if not parts:
        raise QueryError("or_() needs at least one predicate")
    if len(parts) == 1:
        return parts[0]
    return Or(tuple(parts))


def not_(part: Predicate) -> Not:
    return Not(part)


# ---------------------------------------------------------------------------
# Query
# ---------------------------------------------------------------------------

class Query:
    """A fluent single-root query with optional foreign-key joins.

    Joined columns appear in the result rows under ``table.column`` keys,
    while the root table's columns keep their bare names (mirroring how the
    paper's candidate tracking widens entity rows with joined attributes).
    """

    def __init__(self, table: str) -> None:
        self.table = table
        self._predicate: Predicate = TruePredicate()
        self._joins: list[tuple[str, str, str]] = []  # (column, table, target)
        self._projection: list[str] | None = None
        self._order_by: str | None = None
        self._descending = False
        self._limit: int | None = None

    # Builder API ----------------------------------------------------------
    def where(self, predicate: Predicate) -> "Query":
        self._predicate = and_(self._predicate, predicate)
        return self

    def join(self, column: str, table: str, target_column: str) -> "Query":
        """Equi-join ``root.column == table.target_column``."""
        self._joins.append((column, table, target_column))
        return self

    def select(self, *columns: str) -> "Query":
        self._projection = list(columns)
        return self

    def order_by(self, column: str, descending: bool = False) -> "Query":
        self._order_by = column
        self._descending = descending
        return self

    def limit(self, n: int) -> "Query":
        if n < 0:
            raise QueryError("limit must be non-negative")
        self._limit = n
        return self

    # Execution --------------------------------------------------------------
    def run(self, database: "Database") -> list[Row]:
        """Execute against ``database`` and return materialised rows.

        .. deprecated::
            Thin shim over the unified execution API — new code should
            hold a connection and prepare statements instead::

                conn = database.connect()
                rows = conn.execute(select(...)).all()          # one-shot
                stmt = conn.prepare(select(...))                # hot shapes
                rows = stmt.execute(x=...).all()

            ``prepare``/``execute`` skips the per-call fingerprinting
            this path pays on every run (see :mod:`repro.db.api`).

        Results are identical to a scan-filter-sort evaluation; the
        cost-based plan just gets there faster.
        """
        return database.default_connection.run_query(self)

    def count(self, database: "Database") -> int:
        """Number of matching rows, via a CountOnly plan.

        .. deprecated::
            Thin shim over the unified execution API; prefer
            ``conn.execute(select(...).count()).scalar()`` (see
            :mod:`repro.db.api`).

        Rows are neither materialised, projected nor sorted — the
        executor counts matches directly (and short-circuits once a
        ``limit`` is reached).
        """
        return database.default_connection.count_query(self)

    # Planning ---------------------------------------------------------------
    def compile(self, count_only: bool = False):
        """The logical :class:`~repro.db.engine.plan.QuerySpec` of this query."""
        from repro.db.engine import QuerySpec

        return QuerySpec(
            table=self.table,
            predicate=self._predicate,
            joins=tuple(self._joins),
            projection=tuple(self._projection)
            if self._projection is not None
            else None,
            order_by=self._order_by,
            descending=self._descending,
            limit=self._limit,
            count_only=count_only,
        )

    def plan(self, database: "Database", count_only: bool = False):
        """The costed physical plan the engine would execute.

        Read through the database's prepared-plan cache: the first
        query of a given shape compiles a plan template, later queries
        of the same shape (same structure, any constants) bind their
        constants into the cached template instead of re-planning.
        """
        return database.plan_cache.plan(self.compile(count_only=count_only))

    def explain(self, database: "Database", count_only: bool = False) -> str:
        """EXPLAIN output: the chosen plan with row/cost estimates."""
        from repro.db.engine import render_plan

        return render_plan(self.plan(database, count_only=count_only))
