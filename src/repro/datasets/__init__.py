"""Synthetic datasets: cinema database and ATIS-like flight corpus."""

from repro.datasets.movies import (
    MovieConfig,
    annotate_movie_schema,
    build_movie_database,
    restore_movie_database,
)

__all__ = [
    "MovieConfig",
    "annotate_movie_schema",
    "build_movie_database",
    "restore_movie_database",
]

from repro.datasets.atis import (
    ATIS_INTENTS,
    AtisConfig,
    build_flight_database,
    generate_cat_corpus,
    generate_gold_corpus,
)
from repro.datasets.movie_templates import movie_templates

__all__ += [
    "ATIS_INTENTS",
    "AtisConfig",
    "build_flight_database",
    "generate_cat_corpus",
    "generate_gold_corpus",
    "movie_templates",
]
