"""Word lists used by the synthetic dataset generators.

All data is synthetic / public-domain-flavoured.  Generators combine these
seeds combinatorially (e.g. adjective + noun movie titles) so tables can
be scaled to arbitrary sizes while staying deterministic under a seed.
"""

from __future__ import annotations

FIRST_NAMES = [
    "Alice", "Ben", "Clara", "David", "Emma", "Felix", "Greta", "Henry",
    "Ida", "Jonas", "Katja", "Leon", "Mara", "Nils", "Olivia", "Paul",
    "Quinn", "Rosa", "Simon", "Tara", "Uwe", "Vera", "Walter", "Xenia",
    "Yannick", "Zoe", "Anton", "Brigitte", "Carlos", "Daniela", "Erik",
    "Fiona", "Georg", "Hannah", "Igor", "Julia", "Karl", "Lena", "Marius",
    "Nadja", "Oskar", "Petra", "Ralf", "Sophie", "Tim", "Ulrike", "Victor",
    "Wanda", "Yvonne", "Zacharias",
]

LAST_NAMES = [
    "Adler", "Bauer", "Clemens", "Dietrich", "Ebert", "Fischer", "Gruber",
    "Hoffmann", "Iversen", "Jung", "Keller", "Lang", "Meyer", "Neumann",
    "Otto", "Peters", "Quandt", "Richter", "Schmidt", "Tauber", "Ulrich",
    "Vogel", "Wagner", "Xander", "Ziegler", "Albrecht", "Brandt", "Conrad",
    "Dorn", "Engel", "Frank", "Gerber", "Hartmann", "Ilgner", "Jansen",
    "Kaiser", "Lorenz", "Maurer", "Nagel", "Oppermann", "Pohl", "Reinhardt",
    "Sauer", "Thiel", "Unger", "Vollmer", "Weber", "York", "Zimmermann",
    "Arnold",
]

CITIES = [
    "Darmstadt", "Frankfurt", "Mainz", "Wiesbaden", "Heidelberg",
    "Mannheim", "Offenbach", "Hanau", "Giessen", "Marburg", "Fulda",
    "Kassel", "Bensheim", "Worms", "Speyer", "Karlsruhe", "Stuttgart",
    "Aschaffenburg", "Bad Homburg", "Ruesselsheim", "Langen", "Dreieich",
    "Griesheim", "Weiterstadt", "Pfungstadt",
]

STREETS = [
    "Main Street", "Oak Avenue", "Station Road", "Park Lane", "Mill Road",
    "Church Street", "High Street", "Garden Way", "River Walk",
    "Castle Hill", "Market Square", "Forest Path", "Bridge Street",
    "School Lane", "Meadow Drive", "Sunset Boulevard", "Harbor View",
    "Elm Grove", "Maple Court", "Cedar Close",
]

TITLE_ADJECTIVES = [
    "Silent", "Midnight", "Golden", "Broken", "Hidden", "Electric",
    "Crimson", "Forgotten", "Eternal", "Savage", "Gentle", "Burning",
    "Frozen", "Distant", "Radiant", "Shattered", "Quiet", "Wild",
    "Lonely", "Brave", "Final", "First", "Lost", "Rising", "Falling",
]

TITLE_NOUNS = [
    "Horizon", "Echo", "Garden", "Empire", "Voyage", "Symphony",
    "Shadow", "River", "Kingdom", "Promise", "Winter", "Summer",
    "Station", "Harbor", "Letter", "Mirror", "Storm", "Island",
    "Memory", "Journey", "Secret", "Dream", "Fortune", "Crossing",
    "Tide",
]

CLASSIC_TITLES = [
    "Forrest Gump", "The Long Night", "City Lights", "North by North",
    "Roman Holiday", "The Third Man", "Rear Window", "Casablanca Days",
    "Metropolis Rising", "Sunset Drive", "The Great Escape Plan",
    "Twelve Angry Jurors", "A Space Odyssey Redux", "The Quiet American",
    "Paths of Glory Road", "On the Riverfront", "Some Like It Cold",
    "Vertigo Falls", "Psycho Analysis", "The Birds Return",
]

GENRES = [
    "drama", "comedy", "thriller", "romance", "action", "science fiction",
    "documentary", "horror", "animation", "western", "musical", "mystery",
]

ACTOR_FIRST = [
    "Grace", "James", "Audrey", "Humphrey", "Ingrid", "Cary", "Marlene",
    "Orson", "Vivien", "Gregory", "Katharine", "Spencer", "Lauren",
    "Kirk", "Rita", "Burt", "Ava", "Tony", "Sophia", "Marcello",
]

ACTOR_LAST = [
    "Kellerman", "Steward", "Hepmore", "Bogartson", "Bergmann", "Granton",
    "Dietrichs", "Wellson", "Leighton", "Peckworth", "Hepburne", "Tracey",
    "Bacallo", "Douglass", "Hayworth", "Lancast", "Gardiner", "Curtiss",
    "Lorenz", "Mastroni",
]

EMAIL_DOMAINS = [
    "example.com", "mail.example.org", "post.example.net", "inbox.example.de",
]

# ATIS-flavoured flight-domain lexicons -------------------------------------

AIRPORT_CITIES = [
    "Boston", "Denver", "Atlanta", "Dallas", "Pittsburgh", "Baltimore",
    "Philadelphia", "San Francisco", "Washington", "Oakland", "Phoenix",
    "Charlotte", "Milwaukee", "Detroit", "Houston", "Memphis", "Seattle",
    "Orlando", "Chicago", "Nashville", "Cleveland", "Columbus", "Miami",
    "Newark", "Minneapolis", "Tampa", "Montreal", "Toronto", "St. Louis",
    "Kansas City", "Las Vegas", "San Diego", "Salt Lake City", "Indianapolis",
    "Cincinnati", "Burbank", "Long Beach", "Ontario", "Westchester",
    "San Jose",
]

AIRLINES = [
    "united", "american", "delta", "continental", "northwest", "us air",
    "twa", "lufthansa", "canadian airlines", "alaska airlines", "midwest",
    "eastern",
]

WEEKDAYS = [
    "monday", "tuesday", "wednesday", "thursday", "friday", "saturday",
    "sunday",
]

PERIODS_OF_DAY = ["morning", "afternoon", "evening", "night"]

MEALS = ["breakfast", "lunch", "dinner", "snack"]

FARE_CLASSES = ["first class", "business class", "coach", "economy"]
