"""Synthetic ATIS-like flight corpus (substitute for the LDC ATIS corpus).

The paper's NLU evaluation uses the ATIS spoken-language corpus, which
is licence-gated and unavailable offline.  This module generates a
statistically similar stand-in: an intent-skewed flight-domain corpus
(~74 % ``atis_flight``, like the original) with BIO-style slot
annotations over the classic ATIS slot inventory (from/to cities,
day names, periods of day, airlines, fare classes, meals).

Two corpora come out of it, mirroring the experimental design:

* the **gold corpus** — richly varied utterance patterns standing in for
  manually collected and annotated user data (baselines train on its
  train split; everyone evaluates on its test split), and
* the **CAT corpus** — synthesized from a *small* set of developer
  templates filled with database values and augmented by paraphrasing,
  i.e. what CAT's pipeline produces without any manual dialogue data.

Both are filled from the same synthetic flight database, so the value
vocabulary matches while the phrasing distribution differs — exactly the
train/test mismatch the paper's claim is about.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.datasets import lexicons
from repro.db import Column, Database, DatabaseSchema, DataType, TableSchema
from repro.errors import SynthesisError
from repro.synthesis.corpus import NLUDataset, NLUExample, SlotSpan
from repro.synthesis.paraphrase import ParaphraseConfig, Paraphraser

__all__ = [
    "AtisConfig",
    "build_flight_database",
    "generate_gold_corpus",
    "generate_cat_corpus",
    "ATIS_INTENTS",
]

# Intent skew modelled on the published ATIS distribution.
ATIS_INTENTS: tuple[tuple[str, float], ...] = (
    ("atis_flight", 0.74),
    ("atis_airfare", 0.08),
    ("atis_ground_service", 0.05),
    ("atis_airline", 0.04),
    ("atis_abbreviation", 0.03),
    ("atis_aircraft", 0.02),
    ("atis_flight_time", 0.02),
    ("atis_quantity", 0.02),
)

_AIRCRAFT = ["boeing 737", "boeing 757", "boeing 767", "dc 10", "md 80",
             "airbus a320", "turboprop", "jet"]
_ABBREVIATIONS = ["ap/57", "fare code qx", "fare code y", "code h",
                  "ewr", "sfo", "yyz", "dfw", "fare basis code qw"]

# Gold patterns: rich phrasing as "manually collected" user utterances.
_GOLD_PATTERNS: dict[str, list[str]] = {
    "atis_flight": [
        "i want to fly from {fromloc_city} to {toloc_city}",
        "show me flights from {fromloc_city} to {toloc_city} on {day_name}",
        "are there any flights from {fromloc_city} to {toloc_city} in the {period_of_day}",
        "list all {airline_name} flights from {fromloc_city} to {toloc_city}",
        "i need a flight leaving {fromloc_city} arriving in {toloc_city}",
        "what flights go from {fromloc_city} to {toloc_city} {day_name} {period_of_day}",
        "find me the earliest flight from {fromloc_city} to {toloc_city}",
        "please give me flights between {fromloc_city} and {toloc_city}",
        "i would like to travel from {fromloc_city} to {toloc_city} on {airline_name}",
        "flights from {fromloc_city} to {toloc_city} please",
        "do you have a {day_name} flight from {fromloc_city} to {toloc_city}",
        "i want to leave {fromloc_city} in the {period_of_day} and get to {toloc_city}",
        "show {airline_name} service to {toloc_city} from {fromloc_city}",
        "what are the {period_of_day} flights from {fromloc_city} to {toloc_city}",
        "book me from {fromloc_city} to {toloc_city} next {day_name}",
    ],
    "atis_airfare": [
        "how much is a {class_type} fare from {fromloc_city} to {toloc_city}",
        "what is the cheapest fare from {fromloc_city} to {toloc_city}",
        "show me the fares from {fromloc_city} to {toloc_city} on {airline_name}",
        "what does it cost to fly {class_type} from {fromloc_city} to {toloc_city}",
        "round trip fares from {fromloc_city} to {toloc_city} please",
        "i want the price of a ticket from {fromloc_city} to {toloc_city}",
        "list airfares from {fromloc_city} to {toloc_city} {day_name}",
    ],
    "atis_ground_service": [
        "what ground transportation is available in {toloc_city}",
        "how do i get downtown from the {toloc_city} airport",
        "is there a rental car available in {toloc_city}",
        "show me ground service in {toloc_city} please",
        "what kind of ground transportation is there in {toloc_city}",
        "can i get a taxi in {toloc_city}",
    ],
    "atis_airline": [
        "which airlines fly from {fromloc_city} to {toloc_city}",
        "what airline is {airline_name}",
        "list the airlines serving {toloc_city}",
        "which airline has the most flights to {toloc_city}",
        "what airlines go from {fromloc_city} to {toloc_city}",
    ],
    "atis_abbreviation": [
        "what does {abbreviation} mean",
        "what is {abbreviation}",
        "explain {abbreviation} to me",
        "can you tell me what {abbreviation} stands for",
    ],
    "atis_aircraft": [
        "what kind of aircraft is used from {fromloc_city} to {toloc_city}",
        "what type of plane is a {aircraft_code}",
        "show me the aircraft flying to {toloc_city}",
        "which plane flies the {period_of_day} route to {toloc_city}",
    ],
    "atis_flight_time": [
        "what time does the flight from {fromloc_city} to {toloc_city} leave",
        "when does the {period_of_day} flight to {toloc_city} depart",
        "what are the departure times from {fromloc_city} to {toloc_city}",
        "show me the schedule from {fromloc_city} to {toloc_city}",
    ],
    "atis_quantity": [
        "how many flights does {airline_name} have to {toloc_city}",
        "how many {class_type} seats are there to {toloc_city}",
        "what is the number of flights from {fromloc_city} to {toloc_city}",
        "how many airlines serve {toloc_city}",
    ],
}

# CAT templates: the "few example formulations" a developer would write.
_CAT_TEMPLATES: dict[str, list[str]] = {
    "atis_flight": [
        "i want to fly from {fromloc_city} to {toloc_city}",
        "show me flights from {fromloc_city} to {toloc_city}",
        "flights from {fromloc_city} to {toloc_city} on {day_name}",
        "i need a {period_of_day} flight to {toloc_city}",
        "list {airline_name} flights to {toloc_city}",
    ],
    "atis_airfare": [
        "how much is a flight from {fromloc_city} to {toloc_city}",
        "what is the {class_type} fare to {toloc_city}",
        "show me fares from {fromloc_city} to {toloc_city}",
    ],
    "atis_ground_service": [
        "what ground transportation is available in {toloc_city}",
        "how do i get to downtown {toloc_city}",
    ],
    "atis_airline": [
        "which airlines fly to {toloc_city}",
        "what airlines go from {fromloc_city} to {toloc_city}",
    ],
    "atis_abbreviation": [
        "what does {abbreviation} mean",
        "what is {abbreviation}",
    ],
    "atis_aircraft": [
        "what kind of aircraft is a {aircraft_code}",
        "what plane flies to {toloc_city}",
    ],
    "atis_flight_time": [
        "what time does the flight to {toloc_city} leave",
        "when do flights from {fromloc_city} depart",
    ],
    "atis_quantity": [
        "how many flights go to {toloc_city}",
        "how many {airline_name} flights are there",
    ],
}


@dataclass(frozen=True)
class AtisConfig:
    """Corpus sizes and seed."""

    seed: int = 29
    n_gold: int = 1600
    cat_samples_per_template: int = 20
    use_paraphrasing: bool = True
    gold_noise: float = 0.25

    def __post_init__(self) -> None:
        if self.n_gold <= 0 or self.cat_samples_per_template <= 0:
            raise SynthesisError("corpus sizes must be positive")
        if not 0.0 <= self.gold_noise <= 1.0:
            raise SynthesisError("gold_noise must be in [0, 1]")


def build_flight_database(config: AtisConfig | None = None) -> Database:
    """Small flight database providing the slot value vocabulary."""
    config = config or AtisConfig()
    rng = random.Random(config.seed)
    schema = DatabaseSchema(
        [
            TableSchema(
                "city",
                [
                    Column("city_id", DataType.INTEGER),
                    Column("name", DataType.TEXT, nullable=False),
                ],
                primary_key="city_id",
            ),
            TableSchema(
                "airline",
                [
                    Column("airline_id", DataType.INTEGER),
                    Column("name", DataType.TEXT, nullable=False),
                ],
                primary_key="airline_id",
            ),
            TableSchema(
                "flight",
                [
                    Column("flight_id", DataType.INTEGER),
                    Column("from_city", DataType.TEXT, nullable=False),
                    Column("to_city", DataType.TEXT, nullable=False),
                    Column("airline", DataType.TEXT),
                    Column("day_name", DataType.TEXT),
                    Column("period", DataType.TEXT),
                    Column("class_type", DataType.TEXT),
                    Column("meal", DataType.TEXT),
                ],
                primary_key="flight_id",
            ),
        ]
    )
    database = Database(schema)
    for i, name in enumerate(lexicons.AIRPORT_CITIES, start=1):
        database.insert("city", {"city_id": i, "name": name.lower()})
    for i, name in enumerate(lexicons.AIRLINES, start=1):
        database.insert("airline", {"airline_id": i, "name": name})
    for flight_id in range(1, 301):
        from_city, to_city = rng.sample(lexicons.AIRPORT_CITIES, 2)
        database.insert(
            "flight",
            {
                "flight_id": flight_id,
                "from_city": from_city.lower(),
                "to_city": to_city.lower(),
                "airline": rng.choice(lexicons.AIRLINES),
                "day_name": rng.choice(lexicons.WEEKDAYS),
                "period": rng.choice(lexicons.PERIODS_OF_DAY),
                "class_type": rng.choice(lexicons.FARE_CLASSES),
                "meal": rng.choice(lexicons.MEALS),
            },
        )
    return database


def _slot_pools(database: Database) -> dict[str, list[str]]:
    cities = sorted(
        {row["name"] for row in database.rows("city")}
    )
    airlines = sorted({row["name"] for row in database.rows("airline")})
    return {
        "fromloc_city": cities,
        "toloc_city": cities,
        "airline_name": airlines,
        "day_name": list(lexicons.WEEKDAYS),
        "period_of_day": list(lexicons.PERIODS_OF_DAY),
        "class_type": list(lexicons.FARE_CLASSES),
        "meal": list(lexicons.MEALS),
        "aircraft_code": list(_AIRCRAFT),
        "abbreviation": list(_ABBREVIATIONS),
    }


def _fill_pattern(
    pattern: str, pools: dict[str, list[str]], rng: random.Random
) -> NLUExample | None:
    import re

    pieces: list[str] = []
    spans: list[SlotSpan] = []
    cursor = 0
    offset = 0
    used: dict[str, str] = {}
    for match in re.finditer(r"\{([a-z_][a-z0-9_]*)\}", pattern):
        slot = match.group(1)
        pool = pools.get(slot)
        if not pool:
            return None
        value = rng.choice(pool)
        # from/to cities must differ within one utterance, regardless of
        # which of the two appears first in the pattern.
        other = {"toloc_city": "fromloc_city",
                 "fromloc_city": "toloc_city"}.get(slot)
        if other is not None and used.get(other) == value:
            alternatives = [v for v in pool if v != value]
            if alternatives:
                value = rng.choice(alternatives)
        used[slot] = value
        pieces.append(pattern[cursor : match.start()])
        start = match.start() + offset
        pieces.append(value)
        spans.append(SlotSpan(slot, value, start, start + len(value)))
        offset += len(value) - (match.end() - match.start())
        cursor = match.end()
    pieces.append(pattern[cursor:])
    return NLUExample(text="".join(pieces), intent="", slots=tuple(spans))


def _with_intent(example: NLUExample, intent: str) -> NLUExample:
    return NLUExample(text=example.text, intent=intent, slots=example.slots)


_FILLERS = ["uh ", "um ", "well ", "okay ", "yes ", "hello ", "please "]


def _add_noise(example: NLUExample, rng: random.Random) -> NLUExample:
    """Spoken-language noise: a leading filler word or a typo.

    Mirrors the disfluencies of the real ATIS recordings; slot spans are
    shifted (filler) or left untouched (typos never hit slot values).
    """
    if rng.random() < 0.6:
        filler = rng.choice(_FILLERS)
        shift = len(filler)
        return NLUExample(
            text=filler + example.text,
            intent=example.intent,
            slots=tuple(
                SlotSpan(s.name, s.value, s.start + shift, s.end + shift)
                for s in example.slots
            ),
        )
    # Swap two adjacent characters outside every slot span.
    text = example.text
    protected = [(s.start, s.end) for s in example.slots]
    positions = [
        i
        for i in range(len(text) - 1)
        if text[i].isalpha()
        and text[i + 1].isalpha()
        and not any(start <= i + 1 and i < end for start, end in protected)
    ]
    if not positions:
        return example
    i = rng.choice(positions)
    swapped = text[:i] + text[i + 1] + text[i] + text[i + 2 :]
    return NLUExample(text=swapped, intent=example.intent, slots=example.slots)


def generate_gold_corpus(
    database: Database | None = None, config: AtisConfig | None = None
) -> NLUDataset:
    """The 'manually collected' corpus: rich patterns, ATIS intent skew."""
    config = config or AtisConfig()
    database = database or build_flight_database(config)
    rng = random.Random(config.seed + 1)
    pools = _slot_pools(database)
    intents = [name for name, __ in ATIS_INTENTS]
    weights = [weight for __, weight in ATIS_INTENTS]
    dataset = NLUDataset()
    while len(dataset) < config.n_gold:
        intent = rng.choices(intents, weights=weights, k=1)[0]
        pattern = rng.choice(_GOLD_PATTERNS[intent])
        example = _fill_pattern(pattern, pools, rng)
        if example is None:
            continue
        example = _with_intent(example, intent)
        if rng.random() < config.gold_noise:
            example = _add_noise(example, rng)
        dataset.add(example)
    return dataset


def generate_cat_corpus(
    database: Database | None = None, config: AtisConfig | None = None
) -> NLUDataset:
    """The synthesized corpus: few templates, DB filling, paraphrasing."""
    config = config or AtisConfig()
    database = database or build_flight_database(config)
    rng = random.Random(config.seed + 2)
    pools = _slot_pools(database)
    paraphraser = (
        Paraphraser(ParaphraseConfig(variants_per_template=3,
                                     seed=config.seed + 3))
        if config.use_paraphrasing
        else None
    )
    dataset = NLUDataset()
    for intent, templates in _CAT_TEMPLATES.items():
        variants: list[str] = []
        for template in templates:
            variants.append(template)
            if paraphraser is not None:
                variants.extend(paraphraser.variants(template))
        for variant in variants:
            for __ in range(config.cat_samples_per_template):
                example = _fill_pattern(variant, pools, rng)
                if example is not None:
                    dataset.add(_with_intent(example, intent))
    return dataset
