"""Synthetic cinema database: the paper's running example and demo domain.

Generates the schema of Figure 3 (movie / screening / customer /
reservation) extended with the entities Section 4 needs for join-aware
slot selection (actors via a junction table, plus configurable extra
dimension tables such as language or studio hanging off ``movie``), three
stored procedures (``ticket_reservation``, ``cancel_reservation``,
``list_screenings``) and the default schema annotations a developer would
enter in CAT's GUI.

Everything is deterministic under ``MovieConfig.seed``.  The config also
exposes the knobs the evaluation sweeps: table sizes, number of joinable
dimensions, value skew, and a near-duplicate fraction (the paper's
"systematic problems in uniquely identifying entries ... caused by data
characteristics like almost identical entries").
"""

from __future__ import annotations

import datetime as _dt
import random
from dataclasses import dataclass

from repro.annotation import SchemaAnnotations
from repro.datasets import lexicons
from repro.db import (
    Column,
    Database,
    DatabaseSchema,
    DataType,
    ForeignKey,
    Parameter,
    Procedure,
    TableSchema,
)
from repro.errors import ProcedureError

__all__ = [
    "MovieConfig",
    "build_movie_database",
    "annotate_movie_schema",
    "restore_movie_database",
]

# Dimension tables that can be attached to ``movie`` for the join sweeps.
_DIMENSIONS = [
    ("language", ["english", "german", "french", "spanish", "italian",
                  "japanese", "korean", "swedish"]),
    ("country", ["usa", "germany", "france", "uk", "italy", "japan",
                 "canada", "spain"]),
    ("studio", ["Silverlight Pictures", "Northgate Films", "Bluebird Studio",
                "Cascade Entertainment", "Ironwood Productions",
                "Lantern House", "Meridian Films", "Pinnacle Arts"]),
    ("distributor", ["CineWorld Dist", "StarReach Media", "Atlas Releasing",
                     "Horizon Distribution", "Vista Films",
                     "Summit Circulation"]),
    ("age_rating", ["G", "PG", "PG-13", "R", "NC-17"]),
    ("film_format", ["35mm", "70mm", "digital 2k", "digital 4k", "imax"]),
    ("sound_system", ["stereo", "dolby digital", "dolby atmos", "dts",
                      "auro 3d"]),
    ("franchise", ["standalone", "trilogy part", "saga entry",
                   "anthology", "reboot", "sequel"]),
]


@dataclass(frozen=True)
class MovieConfig:
    """Size and shape knobs for the synthetic cinema database."""

    seed: int = 7
    n_customers: int = 200
    n_movies: int = 40
    n_actors: int = 60
    actors_per_movie: int = 3
    n_screenings: int = 120
    n_reservations: int = 80
    n_rooms: int = 5
    n_days: int = 14
    extra_dimensions: int = 2
    # Skip the hand-picked secondary indexes (keeping only the
    # pk/unique-backed ones the schema implies) — the state the
    # self-driving policy benchmark starts from, so convergence is
    # measured from a genuinely unindexed physical design.
    secondary_indexes: bool = True
    start_date: _dt.date = _dt.date(2022, 3, 26)
    duplicate_customer_fraction: float = 0.0
    genre_skew: float = 0.0

    def __post_init__(self) -> None:
        if not 0 <= self.extra_dimensions <= len(_DIMENSIONS):
            raise ValueError(
                f"extra_dimensions must be in [0, {len(_DIMENSIONS)}]"
            )
        if not 0.0 <= self.duplicate_customer_fraction <= 1.0:
            raise ValueError("duplicate_customer_fraction must be in [0, 1]")


def _movie_schema(config: MovieConfig) -> DatabaseSchema:
    dims = _DIMENSIONS[: config.extra_dimensions]
    movie_columns = [
        Column("movie_id", DataType.INTEGER),
        Column("title", DataType.TEXT, nullable=False),
        Column("genre", DataType.TEXT),
        Column("year", DataType.INTEGER),
        Column("duration_minutes", DataType.INTEGER),
    ]
    movie_fks = []
    for dim_name, __ in dims:
        movie_columns.append(Column(f"{dim_name}_id", DataType.INTEGER))
        movie_fks.append(ForeignKey(f"{dim_name}_id", dim_name, f"{dim_name}_id"))

    tables = [
        TableSchema(
            "movie", movie_columns, primary_key="movie_id", foreign_keys=movie_fks
        ),
        TableSchema(
            "actor",
            [
                Column("actor_id", DataType.INTEGER),
                Column("name", DataType.TEXT, nullable=False),
            ],
            primary_key="actor_id",
        ),
        TableSchema(
            "movie_actor",
            [
                Column("movie_actor_id", DataType.INTEGER),
                Column("movie_id", DataType.INTEGER, nullable=False),
                Column("actor_id", DataType.INTEGER, nullable=False),
            ],
            primary_key="movie_actor_id",
            foreign_keys=[
                ForeignKey("movie_id", "movie", "movie_id"),
                ForeignKey("actor_id", "actor", "actor_id"),
            ],
        ),
        TableSchema(
            "customer",
            [
                Column("customer_id", DataType.INTEGER),
                Column("first_name", DataType.TEXT, nullable=False),
                Column("last_name", DataType.TEXT, nullable=False),
                Column("city", DataType.TEXT),
                Column("street", DataType.TEXT),
                Column("email", DataType.TEXT, unique=True),
                Column("birth_year", DataType.INTEGER),
            ],
            primary_key="customer_id",
        ),
        TableSchema(
            "screening",
            [
                Column("screening_id", DataType.INTEGER),
                Column("movie_id", DataType.INTEGER, nullable=False),
                Column("date", DataType.DATE, nullable=False),
                Column("start_time", DataType.TIME, nullable=False),
                Column("room", DataType.TEXT),
                Column("price", DataType.FLOAT),
                Column("capacity", DataType.INTEGER, nullable=False),
            ],
            primary_key="screening_id",
            foreign_keys=[ForeignKey("movie_id", "movie", "movie_id")],
        ),
        TableSchema(
            "reservation",
            [
                Column("reservation_id", DataType.INTEGER),
                Column("customer_id", DataType.INTEGER, nullable=False),
                Column("screening_id", DataType.INTEGER, nullable=False),
                Column("no_tickets", DataType.INTEGER, nullable=False),
            ],
            primary_key="reservation_id",
            foreign_keys=[
                ForeignKey("customer_id", "customer", "customer_id"),
                ForeignKey("screening_id", "screening", "screening_id"),
            ],
        ),
    ]
    for dim_name, __ in dims:
        tables.append(
            TableSchema(
                dim_name,
                [
                    Column(f"{dim_name}_id", DataType.INTEGER),
                    Column("name", DataType.TEXT, nullable=False),
                ],
                primary_key=f"{dim_name}_id",
            )
        )
    return DatabaseSchema(tables)


def _skewed_choice(rng: random.Random, items: list, skew: float):
    """Pick from ``items`` with Zipf-like skew; ``skew=0`` is uniform."""
    if skew <= 0.0:
        return rng.choice(items)
    weights = [1.0 / (rank + 1) ** skew for rank in range(len(items))]
    return rng.choices(items, weights=weights, k=1)[0]


def _populate(database: Database, config: MovieConfig) -> None:
    rng = random.Random(config.seed)
    dims = _DIMENSIONS[: config.extra_dimensions]

    for dim_name, values in dims:
        for i, value in enumerate(values, start=1):
            database.insert(dim_name, {f"{dim_name}_id": i, "name": value})

    generated = [
        f"The {adjective} {noun}"
        for adjective in lexicons.TITLE_ADJECTIVES
        for noun in lexicons.TITLE_NOUNS
    ]
    rng.shuffle(generated)
    # Classic titles first so the demo's "Forrest Gump" always exists.
    titles: list[str] = list(lexicons.CLASSIC_TITLES) + generated

    for movie_id in range(1, config.n_movies + 1):
        row = {
            "movie_id": movie_id,
            "title": titles[(movie_id - 1) % len(titles)],
            "genre": _skewed_choice(rng, lexicons.GENRES, config.genre_skew),
            "year": rng.randint(1960, 2022),
            "duration_minutes": rng.randint(80, 180),
        }
        for dim_name, values in dims:
            row[f"{dim_name}_id"] = rng.randint(1, len(values))
        database.insert("movie", row)

    actor_names = [
        f"{first} {last}"
        for first in lexicons.ACTOR_FIRST
        for last in lexicons.ACTOR_LAST
    ]
    rng.shuffle(actor_names)
    n_actors = min(config.n_actors, len(actor_names))
    for actor_id in range(1, n_actors + 1):
        database.insert(
            "actor", {"actor_id": actor_id, "name": actor_names[actor_id - 1]}
        )

    movie_actor_id = 1
    for movie_id in range(1, config.n_movies + 1):
        cast = rng.sample(range(1, n_actors + 1),
                          min(config.actors_per_movie, n_actors))
        for actor_id in cast:
            database.insert(
                "movie_actor",
                {
                    "movie_actor_id": movie_actor_id,
                    "movie_id": movie_id,
                    "actor_id": actor_id,
                },
            )
            movie_actor_id += 1

    _populate_customers(database, config, rng)

    rooms = [f"room {chr(ord('A') + i)}" for i in range(config.n_rooms)]
    times = [_dt.time(hour, minute) for hour in (14, 17, 20, 22)
             for minute in (0, 30)]
    for screening_id in range(1, config.n_screenings + 1):
        database.insert(
            "screening",
            {
                "screening_id": screening_id,
                "movie_id": rng.randint(1, config.n_movies),
                "date": config.start_date
                + _dt.timedelta(days=rng.randrange(config.n_days)),
                "start_time": rng.choice(times),
                "room": rng.choice(rooms),
                "price": round(rng.uniform(7.0, 16.0) * 2) / 2,
                "capacity": rng.choice((40, 60, 80, 120)),
            },
        )

    for reservation_id in range(1, config.n_reservations + 1):
        database.insert(
            "reservation",
            {
                "reservation_id": reservation_id,
                "customer_id": rng.randint(1, config.n_customers),
                "screening_id": rng.randint(1, config.n_screenings),
                "no_tickets": rng.randint(1, 6),
            },
        )


def _populate_customers(
    database: Database, config: MovieConfig, rng: random.Random
) -> None:
    """Customers, optionally with near-duplicate 'family' clusters.

    Near-duplicates share last name, city and street and differ only in
    first name / birth year — the hard-to-identify entries of Section 4.
    """
    n_duplicates = int(config.n_customers * config.duplicate_customer_fraction)
    customer_id = 1
    while customer_id <= config.n_customers:
        last = rng.choice(lexicons.LAST_NAMES)
        city = rng.choice(lexicons.CITIES)
        street = rng.choice(lexicons.STREETS)
        cluster = 1
        if n_duplicates > 0:
            cluster = min(rng.randint(2, 4), config.n_customers - customer_id + 1)
            n_duplicates -= cluster
        for __ in range(cluster):
            if customer_id > config.n_customers:
                break
            first = rng.choice(lexicons.FIRST_NAMES)
            database.insert(
                "customer",
                {
                    "customer_id": customer_id,
                    "first_name": first,
                    "last_name": last,
                    "city": city,
                    "street": street,
                    "email": f"{first.lower()}.{last.lower()}.{customer_id}"
                    f"@{rng.choice(lexicons.EMAIL_DOMAINS)}",
                    "birth_year": rng.randint(1950, 2004),
                },
            )
            customer_id += 1


# ---------------------------------------------------------------------------
# Stored procedures (the paper's OLTP workload)
# ---------------------------------------------------------------------------

def _ticket_reservation(
    database: Database, customer_id: int, screening_id: int, ticket_amount: int
) -> dict:
    if ticket_amount <= 0:
        raise ProcedureError("ticket_amount must be positive")
    screening = database.find_one("screening", "screening_id", screening_id)
    if screening is None:
        raise ProcedureError(f"no screening with id {screening_id}")
    # The booked-seats aggregate runs through a prepared statement
    # pooled on the shared connection: one compilation serves every
    # reservation this database ever processes.
    from repro.db import api
    from repro.db.aggregation import sum_
    from repro.db.query import eq

    statement = database.default_connection.prepare_cached(
        ("movies.booked_seats",),
        lambda: api.aggregate("reservation", booked=sum_("no_tickets"))
        .where(eq("screening_id", api.Param("screening_id"))),
    )
    booked = statement.execute(screening_id=screening_id).scalar()
    if booked + ticket_amount > screening["capacity"]:
        raise ProcedureError(
            f"screening {screening_id} has only "
            f"{screening['capacity'] - booked} seats left"
        )
    existing = database.table("reservation").column_values("reservation_id")
    reservation_id = max(existing, default=0) + 1
    database.insert(
        "reservation",
        {
            "reservation_id": reservation_id,
            "customer_id": customer_id,
            "screening_id": screening_id,
            "no_tickets": ticket_amount,
        },
    )
    return {"reservation_id": reservation_id, "no_tickets": ticket_amount}


def _cancel_reservation(database: Database, reservation_id: int) -> dict:
    table = database.table("reservation")
    matches = table.lookup("reservation_id", reservation_id)
    if not matches:
        raise ProcedureError(f"no reservation with id {reservation_id}")
    row = table.get(matches[0])
    database.delete("reservation", matches[0])
    return {"cancelled": reservation_id, "no_tickets": row["no_tickets"]}


def _list_screenings(database: Database, movie_id: int) -> list[dict]:
    from repro.db import api
    from repro.db.query import eq

    statement = database.default_connection.prepare_cached(
        ("movies.list_screenings",),
        lambda: api.select("screening").where(
            eq("movie_id", api.Param("movie_id"))
        ),
    )
    return statement.execute(movie_id=movie_id).all()


def _register_procedures(database: Database) -> None:
    database.procedures.register(
        Procedure(
            name="ticket_reservation",
            parameters=[
                Parameter("customer_id", DataType.INTEGER,
                          references=("customer", "customer_id")),
                Parameter("screening_id", DataType.INTEGER,
                          references=("screening", "screening_id")),
                Parameter("ticket_amount", DataType.INTEGER),
            ],
            body=_ticket_reservation,
            description="reserve tickets for a screening",
            reads=("screening", "reservation"),
            writes=("reservation",),
        )
    )
    database.procedures.register(
        Procedure(
            name="cancel_reservation",
            parameters=[
                Parameter("reservation_id", DataType.INTEGER,
                          references=("reservation", "reservation_id")),
            ],
            body=_cancel_reservation,
            description="cancel an existing reservation",
            reads=("reservation",),
            writes=("reservation",),
        )
    )
    database.procedures.register(
        Procedure(
            name="list_screenings",
            parameters=[
                Parameter("movie_id", DataType.INTEGER,
                          references=("movie", "movie_id")),
            ],
            body=_list_screenings,
            description="list screenings of a movie",
            reads=("screening",),
            writes=(),
        )
    )


def annotate_movie_schema(database: Database) -> SchemaAnnotations:
    """The annotations a developer would enter in CAT's GUI (Figure 4)."""
    annotations = SchemaAnnotations(database)
    annotations.annotate("movie", "title", awareness_prior=0.9,
                         display_name="movie title")
    annotations.annotate("movie", "genre", awareness_prior=0.8)
    annotations.annotate("movie", "year", awareness_prior=0.35,
                         display_name="release year")
    annotations.annotate("movie", "duration_minutes", awareness_prior=0.1,
                         display_name="duration in minutes")
    annotations.annotate("actor", "name", awareness_prior=0.6,
                         display_name="actor name")
    annotations.annotate("screening", "date", awareness_prior=0.85)
    annotations.annotate("screening", "start_time", awareness_prior=0.7,
                         display_name="start time")
    annotations.annotate("screening", "room", awareness_prior=0.15)
    annotations.annotate("screening", "price", awareness_prior=0.2,
                         display_name="ticket price")
    annotations.annotate("screening", "capacity", never_ask=True)
    annotations.annotate("customer", "first_name", awareness_prior=0.98,
                         display_name="first name")
    annotations.annotate("customer", "last_name", awareness_prior=0.98,
                         display_name="last name")
    annotations.annotate("customer", "city", awareness_prior=0.95)
    annotations.annotate("customer", "street", awareness_prior=0.9)
    annotations.annotate("customer", "email", awareness_prior=0.45,
                         display_name="email address")
    annotations.annotate("customer", "birth_year", awareness_prior=0.9,
                         display_name="year of birth")
    annotations.annotate("reservation", "no_tickets", awareness_prior=0.8,
                         display_name="number of tickets")
    # movie_actor is a pure junction table: nothing askable on it.
    annotations.annotate("movie_actor", "movie_actor_id", never_ask=True)
    for dim_name, __ in _DIMENSIONS:
        if dim_name in database.schema.table_names:
            annotations.annotate(dim_name, "name", awareness_prior=0.3,
                                 display_name=dim_name.replace("_", " "))
    return annotations


def _create_secondary_indexes(database: Database) -> None:
    """Hash indexes on the FK columns the procedures and joins probe
    (plus the low-cardinality categorical columns that serve IN-list
    probe unions and COUNT DISTINCT index reads), ordered indexes on
    the columns users constrain with ranges or that back ``ORDER BY``
    (dates, times, prices, years)."""
    for table, column in [
        ("screening", "movie_id"),
        ("reservation", "screening_id"),
        ("reservation", "customer_id"),
        ("movie_actor", "movie_id"),
        ("movie_actor", "actor_id"),
        ("movie", "genre"),
        ("screening", "room"),
    ]:
        database.create_index(table, column)
    for table, column in [
        ("screening", "date"),
        ("screening", "start_time"),
        ("screening", "price"),
        ("movie", "year"),
    ]:
        database.create_ordered_index(table, column)


def build_movie_database(
    config: MovieConfig | None = None,
) -> tuple[Database, SchemaAnnotations]:
    """Build and populate the cinema database; returns (db, annotations)."""
    config = config or MovieConfig()
    database = Database(_movie_schema(config))
    _populate(database, config)
    if config.secondary_indexes:
        _create_secondary_indexes(database)
    _register_procedures(database)
    return database, annotate_movie_schema(database)


def restore_movie_database(path: str) -> tuple[Database, SchemaAnnotations]:
    """Rebuild the cinema database from a snapshot.

    ``path`` is either a snapshot *file* (format v1–v4) or an
    incremental snapshot *directory* (v4 base image + delta log, see
    :func:`repro.db.persistence.load_incremental`) — the directory
    form restores by replaying only the commits since the base was
    written, which is how ``serve --workers N`` brings spawn-style
    workers up in seconds.  The code-level pieces a replica also needs
    — stored procedures and the schema annotations — are reattached
    here (fork-style workers inherit the parent's database instead).
    """
    import os

    from repro.db.persistence import load_database, load_incremental

    if os.path.isdir(path):
        database = load_incremental(path)
    else:
        database = load_database(path)
    _register_procedures(database)
    return database, annotate_movie_schema(database)
