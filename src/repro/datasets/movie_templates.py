"""Developer-provided NL templates for the cinema demo agent.

"The user only has to provide a few example formulations for each
intent" (Section 1).  These are those few formulations for the movie
domain; everything else (filling, paraphrasing, flows) is synthesized.

Slot names follow :func:`repro.synthesis.templates.slot_name_for`:
``movie_title`` is ``movie.title``, ``customer_last_name`` is
``customer.last_name``, ``ticket_amount`` is the plain procedure
parameter, and so on.
"""

from __future__ import annotations

__all__ = ["movie_templates"]


def movie_templates() -> dict[str, list[str]]:
    """Intent -> template texts for the cinema domain."""
    return {
        "request_ticket_reservation": [
            "i want to buy {ticket_amount} tickets",
            "i would like to reserve {ticket_amount} tickets for {movie_title}",
            "book {ticket_amount} seats for the movie {movie_title}",
            "i want to watch {movie_title} on {screening_date}",
            "reserve tickets for {movie_title} please",
            "i need tickets for a movie",
            "can i book a screening",
        ],
        "request_cancel_reservation": [
            "i want to cancel my reservation",
            "please cancel my booking for {movie_title}",
            "cancel the reservation for {screening_date}",
            "i cannot make it to the movie, cancel my tickets",
            "drop my reservation",
        ],
        "request_list_screenings": [
            "which screenings do you have for {movie_title}",
            "when is {movie_title} playing",
            "list the screenings of {movie_title}",
            "what movies are playing on {screening_date}",
            "show me the program",
        ],
        "inform": [
            "the movie title is {movie_title}",
            "it is called {movie_title}",
            "{movie_title}",
            "i want to see {movie_title}",
            "the genre is {movie_genre}",
            "a {movie_genre} movie",
            "the screening is on the {screening_date}",
            "on {screening_date}",
            "at {screening_start_time}",
            "the screening starts at {screening_start_time}",
            "i need {ticket_amount} tickets",
            "{ticket_amount} tickets please",
            "make it {ticket_amount} seats",
            "my name is {customer_first_name} {customer_last_name}",
            "my last name is {customer_last_name}",
            "i am {customer_first_name}",
            "i live in {customer_city}",
            "my city is {customer_city}",
            "my street is {customer_street}",
            "my email is {customer_email}",
            "i was born in {customer_birth_year}",
            "{actor_name} plays in it",
            "the movie stars {actor_name}",
            "it is the one with {actor_name}",
            "the movie is from {movie_year}",
            "it came out in {movie_year}",
        ],
    }
